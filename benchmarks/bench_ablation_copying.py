"""Ablation: the lazy-copy snapshot strategy (paper section 5).

The paper optimizes snapshotting by tagging the first snapshot of a
dynamic object in place and only physically copying from the second
snapshot on.  This ablation measures both strategies on a snapshot-
heavy loop (the E3 pattern re-snapshots one Sleep object hundreds of
times) and checks the expected relationship: lazy copying performs at
most one copy fewer per object but identical program behaviour.
"""

import pytest

from repro.lang.interp import InterpOptions, run_source

SNAPSHOT_LOOP = """
modes { energy_saver <= managed; managed <= full_throttle; }
class Probe@mode<?X> {
    int n;
    attributor {
        if (n > 10) { return full_throttle; }
        return energy_saver;
    }
    Probe(int n) { this.n = n; }
    mcase<int> weight = mcase{
        energy_saver: 1; managed: 2; full_throttle: 3;
    };
}
class Main {
    void main() {
        Probe probe = new Probe@mode<?>(50);
        int total = 0;
        int i = 0;
        while (i < 300) {
            Probe p = snapshot probe;
            total = total + p.weight;
            i = i + 1;
        }
        Sys.print(total);
    }
}
"""


@pytest.mark.parametrize("lazy", [True, False], ids=["lazy", "eager"])
def test_ablation_snapshot_copy_strategy(benchmark, lazy):
    def run():
        return run_source(SNAPSHOT_LOOP,
                          options=InterpOptions(lazy_copy=lazy))

    interp = benchmark(run)
    assert interp.output == ["900"]
    if lazy:
        assert interp.stats.lazy_tags == 1
        assert interp.stats.copies == 299
    else:
        assert interp.stats.lazy_tags == 0
        assert interp.stats.copies == 300


def test_ablation_copy_strategies_agree(benchmark):
    """Identical observable behaviour (the property the optimization
    must preserve), timed as a pair."""

    def both():
        lazy = run_source(SNAPSHOT_LOOP,
                          options=InterpOptions(lazy_copy=True))
        eager = run_source(SNAPSHOT_LOOP,
                           options=InterpOptions(lazy_copy=False))
        return lazy.output, eager.output

    lazy_out, eager_out = benchmark.pedantic(both, rounds=1, iterations=1)
    assert lazy_out == eager_out


def test_ablation_embedded_runtime_copying(benchmark):
    """The same ablation at the embedded-API level."""
    from repro.runtime import EntRuntime

    def episode(lazy):
        rt = EntRuntime.standard(lazy_copy=lazy)

        @rt.dynamic
        class Probe:
            weight = rt.mcase({"energy_saver": 1, "managed": 2,
                               "full_throttle": 3})

            def __init__(self):
                self.n = 50

            def attributor(self):
                return "full_throttle" if self.n > 10 else "energy_saver"

        probe = Probe()
        total = 0
        for _ in range(300):
            total += rt.snapshot(probe).weight
        return total, rt.stats.copies

    def run_both():
        return episode(True), episode(False)

    (lazy_total, lazy_copies), (eager_total, eager_copies) = \
        benchmark(run_both)
    assert lazy_total == eager_total == 900
    assert lazy_copies == eager_copies - 1
