"""Figure 11: System A temperature-casing (E3) runs.

Regenerates the temperature-vs-time traces for the five unit-of-work
benchmarks, ENT (mode-cased Sleep object) vs plain Java.  Shape
assertions: ENT plateaus near the hot threshold (sunflow near the
overheating threshold) while Java climbs continuously towards the
thermal steady state.
"""

from conftest import write_result
from repro.eval import figure11, format_figure11, run_e3_episode, \
    trace_stats
from repro.eval.e3 import HOT_THRESHOLD_C, OVERHEAT_THRESHOLD_C
from repro.workloads import get_workload


def test_fig11_traces(benchmark, results_dir):
    pairs = benchmark.pedantic(figure11, rounds=1, iterations=1)
    assert len(pairs) == 5
    by_name = {p.benchmark: p for p in pairs}
    for name, pair in by_name.items():
        ent_tail = trace_stats(pair.ent)["tail_mean_c"]
        java_tail = trace_stats(pair.java)["tail_mean_c"]
        assert java_tail > ent_tail, name
        assert pair.ent.sleeps > 0 and pair.java.sleeps == 0
    for name in ("jython", "findbugs", "pagerank", "xalan"):
        tail = trace_stats(by_name[name].ent)["tail_mean_c"]
        assert abs(tail - HOT_THRESHOLD_C) < 5.0, (name, tail)
    sunflow_tail = trace_stats(by_name["sunflow"].ent)["tail_mean_c"]
    assert abs(sunflow_tail - OVERHEAT_THRESHOLD_C) < 4.0
    write_result(results_dir, "figure11.txt", format_figure11(pairs))


def test_fig11_single_ent_run(benchmark):
    trace = benchmark.pedantic(
        run_e3_episode, args=(get_workload("xalan"), "ent"),
        kwargs={"units": 60}, rounds=1, iterations=1)
    assert trace.sleeps >= 0
    assert trace.trace
