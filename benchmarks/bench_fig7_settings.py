"""Figure 7: the benchmark-settings table (workload attribution + QoS).

A configuration table, regenerated from the single source of truth on
the workload classes; the benchmark times the attribution classifiers
that every E1 task attributor runs.
"""

from conftest import write_result
from repro.eval import figure7_rows, format_figure7
from repro.workloads import ALL_WORKLOADS, BATTERY_MODES


def test_fig7_table(benchmark, results_dir):
    rows = benchmark(figure7_rows)
    assert len(rows) == 15
    write_result(results_dir, "figure7.txt", format_figure7())


def test_fig7_attribution_classifiers(benchmark):
    """The thresholds of every task attributor, over all Fig 7 inputs."""

    def classify_all():
        out = []
        for workload in ALL_WORKLOADS:
            for mode in BATTERY_MODES:
                out.append(workload.attribute(workload.task_size(mode)))
        return out

    result = benchmark(classify_all)
    assert len(result) == 45
