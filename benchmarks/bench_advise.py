"""Advisor sweep benchmark and CI reporter.

Measures the wall-time of a full ``repro advise`` sweep (candidate
enumeration + paired-seed calibration + Monte-Carlo risk + frontier)
per example and per ``jobs`` value, and writes ``BENCH_advise.json``::

    PYTHONPATH=src python benchmarks/bench_advise.py \\
        --jobs-counts 1,4 --out BENCH_advise.json

Two properties are checked on every run:

* **Invariance** — the full JSON result (every candidate score, every
  interval, the frontier) must be byte-identical across all swept
  ``jobs`` values; a mismatch is a correctness failure and exits 1.
* **Frontier floor** — every example must report at least three
  non-dominated assignments; an advisor whose frontier collapses to a
  single point has lost the energy/risk trade-off it exists to expose.
"""

import pathlib

import pytest

from repro.advise import AdviseConfig, advise_file

ROOT = pathlib.Path(__file__).resolve().parents[1]
EXAMPLES = ("examples/ent/crawler.ent", "examples/ent/sensors.ent")

#: Sweep parameters for the pytest-benchmark entry points (kept small;
#: the standalone reporter below is what CI sizes up).
FAST = dict(runs=1, samples=32)


@pytest.mark.parametrize("example", EXAMPLES,
                         ids=lambda p: pathlib.Path(p).stem)
def test_bench_advise_sweep(benchmark, example):
    config = AdviseConfig(jobs=1, **FAST)
    result = benchmark.pedantic(
        lambda: advise_file(str(ROOT / example), config=config),
        rounds=3, iterations=1)
    assert len(result.frontier) >= 3


def test_bench_advise_jobs_agree(benchmark):
    path = str(ROOT / EXAMPLES[0])
    serial = benchmark(
        lambda: advise_file(path, config=AdviseConfig(jobs=1, **FAST)))
    parallel = advise_file(path, config=AdviseConfig(jobs=4, **FAST))
    assert serial.to_json() == parallel.to_json()


# ---------------------------------------------------------------------------
# Standalone BENCH_advise.json reporter (the advise PR's CI gate).
# ---------------------------------------------------------------------------


def _fingerprint(result) -> str:
    import hashlib

    return hashlib.sha256(
        result.to_json().encode("utf-8")).hexdigest()


def measure(jobs_counts, runs=2, samples=64, seed=0,
            archs=("sim45nm",)):
    """Run the sweep grid; returns the BENCH_advise.json payload."""
    import os
    import platform as host_platform
    import time

    entries = []
    all_identical = True
    frontier_floor_ok = True
    for example in EXAMPLES:
        path = str(ROOT / example)
        for arch in archs:
            fingerprints = set()
            for jobs in jobs_counts:
                config = AdviseConfig(arch=arch, jobs=jobs, runs=runs,
                                      samples=samples, seed=seed)
                start = time.perf_counter()
                result = advise_file(path, config=config)
                elapsed = time.perf_counter() - start
                fingerprints.add(_fingerprint(result))
                candidates = len(result.candidates)
                entries.append({
                    "example": example,
                    "arch": arch,
                    "jobs": jobs,
                    "candidates": candidates,
                    "frontier": len(result.frontier),
                    "elapsed_s": round(elapsed, 6),
                    "candidates_per_sec":
                        round(candidates / elapsed, 2) if elapsed
                        else None,
                    "result_sha256": _fingerprint(result),
                })
                if len(result.frontier) < 3:
                    frontier_floor_ok = False
            if len(fingerprints) != 1:
                all_identical = False
    return {
        "bench": "advise",
        "runs": runs,
        "samples": samples,
        "seed": seed,
        "jobs_counts": list(jobs_counts),
        "entries": entries,
        "results_identical_across_jobs": all_identical,
        "frontier_floor_ok": frontier_floor_ok,
        "cpu_count": os.cpu_count(),
        "python": host_platform.python_version(),
        "machine": host_platform.machine(),
    }


def main(argv=None):
    import argparse
    import json
    import sys

    parser = argparse.ArgumentParser(
        description="advisor sweep benchmark reporter")
    parser.add_argument("--jobs-counts", default="1,4",
                        help="comma-separated jobs values to sweep "
                             "(default 1,4)")
    parser.add_argument("--runs", type=int, default=2,
                        help="calibration runs per battery level")
    parser.add_argument("--samples", type=int, default=64,
                        help="Monte-Carlo draws per pinned class")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--archs", default="sim45nm",
                        help="comma-separated cost-model archs")
    parser.add_argument("--out", default="BENCH_advise.json",
                        help="path of the JSON report to write")
    args = parser.parse_args(argv)

    jobs_counts = [int(v) for v in args.jobs_counts.split(",")]
    payload = measure(jobs_counts, runs=args.runs,
                      samples=args.samples, seed=args.seed,
                      archs=tuple(args.archs.split(",")))
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    for entry in payload["entries"]:
        print(f"{entry['example']} arch={entry['arch']} "
              f"jobs={entry['jobs']}: {entry['candidates']} candidates "
              f"in {entry['elapsed_s']:.2f}s "
              f"({entry['candidates_per_sec']}/s), "
              f"frontier={entry['frontier']}")
    print(f"results identical across jobs: "
          f"{payload['results_identical_across_jobs']}")
    print(f"frontier floor (>=3) ok: {payload['frontier_floor_ok']}")
    print(f"wrote {args.out}")
    if not payload["results_identical_across_jobs"]:
        print("FAIL: results differ across --jobs values",
              file=sys.stderr)
        return 1
    if not payload["frontier_floor_ok"]:
        print("FAIL: an example's frontier has fewer than 3 points",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
