"""Shared helpers for the figure-regeneration benchmarks."""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: pathlib.Path, name: str, text: str) -> None:
    path = results_dir / name
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
