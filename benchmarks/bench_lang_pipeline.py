"""Compiler-pipeline microbenchmarks: lexing, parsing, typechecking and
interpretation throughput of the ENT implementation itself.

Not a paper figure — these benches track the reproduction's own
implementation quality (the compilers-PL equivalent of a perf suite),
and make pipeline regressions visible.

Besides the pytest-benchmark entry points, the module doubles as a
standalone reporter::

    PYTHONPATH=src python benchmarks/bench_lang_pipeline.py \\
        --out BENCH_lang.json

which times every pipeline stage (per-scenario min/mean/std over N
repeats) and writes the measurements in the same spirit as
``BENCH_eval.json``.  CI runs it with ``--check BENCH_lang.json
--max-regression 2.0`` to fail the build when the interpreter hot loop's
*min* regresses more than 2x against the committed baseline.
"""

import pytest

from repro.lang.lexer import tokenize
from repro.lang.parser import parse_program
from repro.lang.typechecker import check_program
from repro.lang.interp import Interpreter, InterpOptions

MODES = "modes { energy_saver <= managed; managed <= full_throttle; }\n"


def _synthesize_program(classes: int = 20) -> str:
    """A deterministic medium-sized ENT program."""
    parts = [MODES]
    for index in range(classes):
        parts.append(f"""
class Worker{index}@mode<?X> {{
    int load;
    attributor {{
        if (load > 100) {{ return full_throttle; }}
        if (load > 10) {{ return managed; }}
        return energy_saver;
    }}
    Worker{index}(int load) {{ this.load = load; }}
    mcase<int> factor = mcase{{
        energy_saver: 1; managed: 2; full_throttle: 4;
    }};
    int work(int amount) {{
        int acc = 0;
        int i = 0;
        while (i < amount) {{ acc = acc + factor; i = i + 1; }}
        return acc;
    }}
}}
""")
    body = []
    for index in range(classes):
        body.append(f"Worker{index} w{index} = "
                    f"snapshot (new Worker{index}@mode<?>({index * 9}));")
        body.append(f"total = total + w{index}.work(20);")
    parts.append("class Main { void main() { int total = 0; "
                 + " ".join(body) + " Sys.print(total); } }")
    return "".join(parts)


PROGRAM = _synthesize_program()
CHECKED = check_program(PROGRAM)


def test_bench_lexer(benchmark):
    tokens = benchmark(tokenize, PROGRAM)
    assert len(tokens) > 1000


def test_bench_parser(benchmark):
    program = benchmark(parse_program, PROGRAM)
    assert len(program.classes) == 21


def test_bench_typechecker(benchmark):
    checked = benchmark(check_program, PROGRAM)
    assert "Worker0" in checked.table


def test_bench_interpreter(benchmark):
    def run():
        interp = Interpreter(CHECKED,
                             options=InterpOptions(fuel=10_000_000))
        interp.run()
        return interp

    interp = benchmark(run)
    assert interp.output and interp.output[0].isdigit()


def test_bench_end_to_end(benchmark):
    from repro.lang import run_source

    interp = benchmark.pedantic(run_source, args=(PROGRAM,),
                                rounds=3, iterations=1)
    assert interp.stats.snapshots == 21 or interp.stats.snapshots == 20


HOT_LOOP = MODES + """
class Acc@mode<full_throttle> {
    int total;
    int bump(int k) { total = total + k; return total; }
}
class Main {
    void main() {
        Acc a = new Acc();
        int i = 0;
        while (i < 8000) { a.bump(i % 7); i = i + 1; }
        Sys.print(a.total);
    }
}
"""
HOT_CHECKED = check_program(HOT_LOOP)


def _hot_checked_elided():
    """A separately-checked copy of the hot loop with the elision plan
    applied (kept apart from ``HOT_CHECKED`` so the baseline benches
    keep executing every check)."""
    from repro.analysis import plan_elisions

    checked = check_program(HOT_LOOP)
    plan_elisions(checked)
    return checked


HOT_ELIDED = _hot_checked_elided()


@pytest.mark.parametrize("engine", ["walk", "compiled", "vm", "jit"])
def test_bench_execution_engines(benchmark, engine):
    """Tree walk vs closure compiler vs register VM vs the VM's
    trace-JIT tier on a message-heavy hot loop."""

    def run():
        interp = Interpreter(
            HOT_CHECKED,
            options=InterpOptions(fuel=10_000_000, engine=engine))
        interp.run()
        return interp

    interp = benchmark(run)
    assert interp.output == ["23997"]


@pytest.mark.parametrize("engine", ["walk", "compiled", "vm", "jit"])
def test_bench_check_elision(benchmark, engine):
    """The hot loop with repro.analysis check elision planned in."""

    def run():
        interp = Interpreter(
            HOT_ELIDED,
            options=InterpOptions(fuel=10_000_000, engine=engine))
        interp.run()
        return interp

    interp = benchmark(run)
    assert interp.output == ["23997"]
    assert interp.stats.dfall_elided == 8000
    assert interp.stats.dfall_checks == 0


HOT_RESIDUAL = MODES + """
class R@mode<?X> {
    int load;
    attributor {
        if (load > 100) { return full_throttle; }
        if (load > 10) { return managed; }
        return energy_saver;
    }
    R(int load) { this.load = load; }
    int get() { return load; }
}
class Main {
    void main() {
        R@mode<?> r = new R@mode<?>(50);
        int total = 0;
        int i = 0;
        while (i < 8000) {
            R s = snapshot r [managed, full_throttle];
            total = total + s.get();
            i = i + 1;
        }
        Sys.print(total);
    }
}
"""
RESIDUAL_CHECKED = check_program(HOT_RESIDUAL)


@pytest.mark.parametrize("engine", ["walk", "compiled", "vm", "jit"])
@pytest.mark.parametrize("checks", ["full", "transient"])
def test_bench_transient_checks(benchmark, engine, checks):
    """Full vs transient check depth on the residual-heavy loop: every
    iteration re-snapshots the same tagged object (attributor re-run +
    copy under full; one tag probe under transient) and pays a residual
    dfall.  The checks stay un-elided: the attributor's mode hull is
    wider than the snapshot bounds, so the planner cannot prove them."""

    def run():
        interp = Interpreter(
            RESIDUAL_CHECKED,
            options=InterpOptions(fuel=10_000_000, engine=engine,
                                  checks=checks))
        interp.run()
        return interp

    interp = benchmark(run)
    assert interp.output == ["400000"]
    assert interp.stats.bound_checks == 8000
    if checks == "transient":
        assert interp.stats.shallow_checks == 16_000
        assert interp.stats.copies == 0
    else:
        assert interp.stats.shallow_checks == 0


SMALLSTEP_SOURCE = MODES + """
class D@mode<?X> {
    int n;
    attributor { return managed; }
    D(int n) { this.n = n; }
    int work(int k) { return n + k; }
}
class Main {
    int main() {
        return (snapshot (new D@mode<?>(1))).work(
               (snapshot (new D@mode<?>(2))).work(
               (snapshot (new D@mode<?>(3))).work(0)));
    }
}
"""


def test_bench_smallstep_kernel(benchmark):
    from repro.lang.smallstep import run_kernel

    checked = check_program(SMALLSTEP_SOURCE)
    value, _ = benchmark(run_kernel, checked)
    assert value == 6


# ---------------------------------------------------------------------------
# Standalone BENCH_lang.json reporter (satellite of the perf PR).
# ---------------------------------------------------------------------------

#: Keys the CI smoke job guards against regression.  The interpreter hot
#: loop is the canonical "is the lang pipeline still fast?" signal.
SMOKE_KEYS = ("hot_loop_walk_s", "hot_loop_compiled_s", "hot_loop_vm_s",
              "hot_loop_jit_s", "typechecker_s")

#: Execution engines every hot-loop scenario is measured under.
ENGINES = ("walk", "compiled", "vm", "jit")


def _sample(fn, repeats):
    """Time ``fn`` ``repeats`` times; returns ``{min, mean, std}``.

    CI gates on ``min`` (the least-noisy statistic on a shared
    runner); mean/std are recorded so the committed baseline shows the
    spread the min was drawn from.
    """
    import math
    import time

    # One untimed warmup repeat: the first run pays one-off costs
    # (lazy body lowering, cache population, allocator warmup) that
    # are not the steady-state signal and inflate both mean and std.
    fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    mean = sum(samples) / len(samples)
    var = sum((s - mean) ** 2 for s in samples) / len(samples)
    return {
        "min": round(min(samples), 6),
        "mean": round(mean, 6),
        "std": round(math.sqrt(var), 6),
    }


def _run_hot_loop(engine, checked=None):
    interp = Interpreter(
        checked if checked is not None else HOT_CHECKED,
        options=InterpOptions(fuel=10_000_000, engine=engine))
    interp.run()
    if interp.output != ["23997"]:
        raise AssertionError(
            f"hot loop produced {interp.output!r}, expected ['23997']")
    return interp


def _run_residual_loop(engine, checks):
    interp = Interpreter(
        RESIDUAL_CHECKED,
        options=InterpOptions(fuel=10_000_000, engine=engine,
                              checks=checks))
    interp.run()
    if interp.output != ["400000"]:
        raise AssertionError(
            f"residual loop produced {interp.output!r}, "
            f"expected ['400000']")
    return interp


def _check_counts():
    """Dynamic-check counts of the hot loop, with and without elision.

    Counted on every engine and asserted identical — the acceptance
    criterion that the engines differ only in speed, never in which
    checks run.
    """
    per_engine = {}
    for engine in ENGINES:
        plain = _run_hot_loop(engine)
        elided = _run_hot_loop(engine, HOT_ELIDED)
        per_engine[engine] = {
            "hot_loop": {
                "executed": plain.stats.dfall_checks
                + plain.stats.bound_checks,
                "elided": plain.stats.dfall_elided
                + plain.stats.bound_checks_elided,
            },
            "hot_loop_elide": {
                "executed": elided.stats.dfall_checks
                + elided.stats.bound_checks,
                "elided": elided.stats.dfall_elided
                + elided.stats.bound_checks_elided,
            },
        }
    reference = per_engine["walk"]
    for engine, counts in per_engine.items():
        if counts != reference:
            raise AssertionError(
                f"check counts differ: walk={reference} "
                f"{engine}={counts}")
    return reference


def measure(repeats=5):
    """Time each pipeline stage (min/mean/std over ``repeats``)."""
    import platform as host_platform

    from repro.lang import run_source
    from repro.lang.smallstep import run_kernel

    small_checked = check_program(SMALLSTEP_SOURCE)

    def run_interp():
        interp = Interpreter(CHECKED,
                             options=InterpOptions(fuel=10_000_000))
        interp.run()
        if not (interp.output and interp.output[0].isdigit()):
            raise AssertionError(f"unexpected output {interp.output!r}")

    benches = {
        "lexer_s": _sample(lambda: tokenize(PROGRAM), repeats),
        "parser_s": _sample(lambda: parse_program(PROGRAM), repeats),
        "typechecker_s": _sample(lambda: check_program(PROGRAM), repeats),
        "interpreter_s": _sample(run_interp, repeats),
        "end_to_end_s": _sample(lambda: run_source(PROGRAM), repeats),
        "smallstep_s": _sample(lambda: run_kernel(small_checked), repeats),
    }
    for engine in ENGINES:
        benches[f"hot_loop_{engine}_s"] = _sample(
            lambda engine=engine: _run_hot_loop(engine), repeats)
        benches[f"hot_loop_elide_{engine}_s"] = _sample(
            lambda engine=engine: _run_hot_loop(engine, HOT_ELIDED),
            repeats)
        benches[f"hot_loop_residual_{engine}_s"] = _sample(
            lambda engine=engine: _run_residual_loop(engine, "full"),
            repeats)
        benches[f"hot_loop_transient_{engine}_s"] = _sample(
            lambda engine=engine: _run_residual_loop(engine,
                                                     "transient"),
            repeats)
    return {
        "bench": "lang_pipeline",
        "repeats": repeats,
        "benches": benches,
        "checks": _check_counts(),
        "transient_speedup": {
            engine: round(
                benches[f"hot_loop_residual_{engine}_s"]["min"]
                / benches[f"hot_loop_transient_{engine}_s"]["min"], 3)
            for engine in ENGINES},
        "python": host_platform.python_version(),
        "machine": host_platform.machine(),
    }


def _min_of(entry):
    """Seconds to compare on: ``min`` of a stats dict, or the bare
    number old (pre-min/mean/std) reports recorded."""
    if isinstance(entry, dict):
        return entry["min"]
    return entry


def check_against(payload, baseline, max_regression):
    """Compare ``payload`` against a baseline report.

    Returns (ok, lines): ``ok`` is False when any SMOKE_KEYS bench's
    *min* is slower than ``max_regression`` times the baseline min —
    comparing minima keeps one noisy repeat on a shared CI runner from
    masking (or faking) a real regression.
    """
    ok = True
    lines = []
    base_benches = baseline.get("benches", {})
    for key, entry in sorted(payload["benches"].items()):
        current = _min_of(entry)
        base_entry = base_benches.get(key)
        if not base_entry:
            lines.append(f"{key:>26}: {current:.6f}s (no baseline)")
            continue
        base = _min_of(base_entry)
        ratio = current / base
        marker = ""
        if key in SMOKE_KEYS and ratio > max_regression:
            ok = False
            marker = f"  <-- REGRESSION (> {max_regression:.1f}x)"
        lines.append(f"{key:>26}: {current:.6f}s vs {base:.6f}s "
                     f"baseline ({base / current:.2f}x speedup){marker}")
    return ok, lines


def main(argv=None):
    import argparse
    import json
    import sys

    parser = argparse.ArgumentParser(
        description="lang-pipeline wall-clock benchmark reporter")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed repeats per bench; min/mean/std "
                             "are recorded (default 5)")
    parser.add_argument("--out", default="BENCH_lang.json",
                        help="path of the JSON report to write")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="compare against a baseline BENCH_lang.json")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="fail when a smoke bench is this many times "
                             "slower than the baseline (default 2.0)")
    parser.add_argument("--min-transient-speedup", type=float,
                        default=None, metavar="RATIO",
                        help="fail unless transient checking beats full "
                             "checking by at least RATIO on the residual "
                             "hot loop for the vm and jit engines")
    args = parser.parse_args(argv)

    # Load the baseline up front: when --out and --check name the same
    # file (easy to do from CI) the comparison must use the numbers that
    # were there before this run, not the ones we are about to write.
    baseline = None
    if args.check:
        with open(args.check, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)

    payload = measure(repeats=args.repeats)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))
    print(f"[written to {args.out}]")

    if baseline is not None:
        ok, lines = check_against(payload, baseline, args.max_regression)
        print(f"[baseline: {args.check}]")
        for line in lines:
            print(line)
        if not ok:
            print("ERROR: lang-pipeline smoke bench regressed beyond "
                  f"{args.max_regression}x", file=sys.stderr)
            return 1

    if args.min_transient_speedup is not None:
        # Gate only the compiled tiers: the walk/compiled engines also
        # win from transient checks, but the perf bar of this PR is the
        # vm's shallow opcodes and the jit's inlined tag probes.
        failed = False
        for engine in ("vm", "jit"):
            ratio = payload["transient_speedup"][engine]
            status = "ok"
            if ratio < args.min_transient_speedup:
                failed = True
                status = (f"FAIL (< {args.min_transient_speedup:.2f}x)")
            print(f"transient speedup [{engine}]: {ratio:.2f}x {status}")
        if failed:
            print("ERROR: transient checking is not "
                  f"{args.min_transient_speedup:.2f}x faster than full "
                  "on the residual hot loop", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
