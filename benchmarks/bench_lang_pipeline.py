"""Compiler-pipeline microbenchmarks: lexing, parsing, typechecking and
interpretation throughput of the ENT implementation itself.

Not a paper figure — these benches track the reproduction's own
implementation quality (the compilers-PL equivalent of a perf suite),
and make pipeline regressions visible.
"""

import pytest

from repro.lang.lexer import tokenize
from repro.lang.parser import parse_program
from repro.lang.typechecker import check_program
from repro.lang.interp import Interpreter, InterpOptions

MODES = "modes { energy_saver <= managed; managed <= full_throttle; }\n"


def _synthesize_program(classes: int = 20) -> str:
    """A deterministic medium-sized ENT program."""
    parts = [MODES]
    for index in range(classes):
        parts.append(f"""
class Worker{index}@mode<?X> {{
    int load;
    attributor {{
        if (load > 100) {{ return full_throttle; }}
        if (load > 10) {{ return managed; }}
        return energy_saver;
    }}
    Worker{index}(int load) {{ this.load = load; }}
    mcase<int> factor = mcase{{
        energy_saver: 1; managed: 2; full_throttle: 4;
    }};
    int work(int amount) {{
        int acc = 0;
        int i = 0;
        while (i < amount) {{ acc = acc + factor; i = i + 1; }}
        return acc;
    }}
}}
""")
    body = []
    for index in range(classes):
        body.append(f"Worker{index} w{index} = "
                    f"snapshot (new Worker{index}@mode<?>({index * 9}));")
        body.append(f"total = total + w{index}.work(20);")
    parts.append("class Main { void main() { int total = 0; "
                 + " ".join(body) + " Sys.print(total); } }")
    return "".join(parts)


PROGRAM = _synthesize_program()
CHECKED = check_program(PROGRAM)


def test_bench_lexer(benchmark):
    tokens = benchmark(tokenize, PROGRAM)
    assert len(tokens) > 1000


def test_bench_parser(benchmark):
    program = benchmark(parse_program, PROGRAM)
    assert len(program.classes) == 21


def test_bench_typechecker(benchmark):
    checked = benchmark(check_program, PROGRAM)
    assert "Worker0" in checked.table


def test_bench_interpreter(benchmark):
    def run():
        interp = Interpreter(CHECKED,
                             options=InterpOptions(fuel=10_000_000))
        interp.run()
        return interp

    interp = benchmark(run)
    assert interp.output and interp.output[0].isdigit()


def test_bench_end_to_end(benchmark):
    from repro.lang import run_source

    interp = benchmark.pedantic(run_source, args=(PROGRAM,),
                                rounds=3, iterations=1)
    assert interp.stats.snapshots == 21 or interp.stats.snapshots == 20


HOT_LOOP = MODES + """
class Acc@mode<full_throttle> {
    int total;
    int bump(int k) { total = total + k; return total; }
}
class Main {
    void main() {
        Acc a = new Acc();
        int i = 0;
        while (i < 8000) { a.bump(i % 7); i = i + 1; }
        Sys.print(a.total);
    }
}
"""
HOT_CHECKED = check_program(HOT_LOOP)


@pytest.mark.parametrize("compiled", [False, True],
                         ids=["walk", "compiled"])
def test_bench_execution_engines(benchmark, compiled):
    """Tree walk vs closure compilation on a message-heavy hot loop."""

    def run():
        interp = Interpreter(
            HOT_CHECKED,
            options=InterpOptions(fuel=10_000_000, compile=compiled))
        interp.run()
        return interp

    interp = benchmark(run)
    assert interp.output == ["23997"]


def test_bench_smallstep_kernel(benchmark):
    from repro.lang.smallstep import run_kernel

    source = MODES + """
    class D@mode<?X> {
        int n;
        attributor { return managed; }
        D(int n) { this.n = n; }
        int work(int k) { return n + k; }
    }
    class Main {
        int main() {
            return (snapshot (new D@mode<?>(1))).work(
                   (snapshot (new D@mode<?>(2))).work(
                   (snapshot (new D@mode<?>(3))).work(0)));
        }
    }
    """
    checked = check_program(source)
    value, _ = benchmark(run_kernel, checked)
    assert value == 6
