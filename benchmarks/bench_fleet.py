"""Fleet-service throughput benchmark and CI gate.

Measures devices/sec of ``repro.fleet.run_fleet`` per shard count and
per engine, and writes ``BENCH_fleet.json``::

    PYTHONPATH=src python benchmarks/bench_fleet.py \\
        --devices 10000 --shard-counts 1,2,4 --out BENCH_fleet.json

Two properties are checked on every run:

* **Invariance** — the aggregate digest (every counter, every
  histogram bucket) must be byte-identical across all shard counts
  and across both engines; a mismatch is a correctness failure and
  exits 1 unconditionally.
* **Scaling gate** — with ``--gate R``, devices/sec at the highest
  shard count must be at least ``R``x the single-shard rate.  The
  gate binds only when the machine actually has that many cores
  (``os.cpu_count() >= max shards``); on smaller hosts the ratio is
  recorded with ``"gate": "skipped (N cores)"`` instead — a 1-core
  container cannot exhibit process-level parallelism, and failing
  there would only measure the pool's overhead.

The batched engine's single-shard rate is also compared against the
``embedded`` reference engine (fresh platform + runtime + class
instrumentation per device): that ratio is the construction-amortization
win and is recorded as ``batched_over_embedded``.
"""

import pytest

from repro.fleet import FleetSpec, run_fleet

#: Population for the pytest-benchmark entry points (kept small; the
#: standalone reporter below is what CI sizes up).
PYTEST_DEVICES = 300


@pytest.mark.parametrize("engine", ["batched", "embedded"])
def test_bench_fleet_engine(benchmark, engine):
    spec = FleetSpec(devices=PYTEST_DEVICES, seed=1)
    report = benchmark.pedantic(
        lambda: run_fleet(spec, shards=1, engine=engine),
        rounds=3, iterations=1)
    assert report.devices == PYTEST_DEVICES


def test_bench_fleet_engines_agree(benchmark):
    spec = FleetSpec(devices=PYTEST_DEVICES, seed=1)
    batched = benchmark(lambda: run_fleet(spec, shards=1))
    embedded = run_fleet(spec, shards=1, engine="embedded")
    assert batched.aggregate_digest() == embedded.aggregate_digest()


# ---------------------------------------------------------------------------
# Standalone BENCH_fleet.json reporter (the fleet PR's CI gate).
# ---------------------------------------------------------------------------


def _digest_fingerprint(report):
    import hashlib
    import json

    blob = json.dumps(report.aggregate_digest(), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def measure(devices, shard_counts, seed=0, steps=16,
            engines=("batched", "embedded")):
    """Run the sweep; returns the BENCH_fleet.json payload."""
    import os
    import platform as host_platform

    spec = FleetSpec(devices=devices, seed=seed, steps=steps)
    runs = []
    fingerprints = set()
    for engine in engines:
        for shards in shard_counts:
            # The embedded reference is only needed once for the
            # correctness differential; sweeping its shard counts
            # would double the (slow) part of the run for no signal.
            if engine == "embedded" and shards != shard_counts[0]:
                continue
            report = run_fleet(spec, shards=shards, engine=engine)
            fingerprint = _digest_fingerprint(report)
            fingerprints.add(fingerprint)
            runs.append({
                "engine": engine,
                "shards": report.shards,
                "devices": report.devices,
                "elapsed_s": round(report.elapsed_s, 6),
                "devices_per_sec": round(report.devices_per_sec, 1),
                "digest_sha256": fingerprint,
            })
    def rate(engine, shards):
        for entry in runs:
            if entry["engine"] == engine and entry["shards"] == shards:
                return entry["devices_per_sec"]
        return None

    base = rate("batched", min(shard_counts))
    peak = rate("batched", max(shard_counts))
    embedded = rate("embedded", shard_counts[0])
    return {
        "bench": "fleet",
        "devices": devices,
        "steps": steps,
        "seed": seed,
        "shard_counts": list(shard_counts),
        "runs": runs,
        "scaling_ratio": round(peak / base, 3) if base else None,
        "batched_over_embedded":
            round(base / embedded, 3) if embedded else None,
        "digests_identical": len(fingerprints) == 1,
        "cpu_count": os.cpu_count(),
        "python": host_platform.python_version(),
        "machine": host_platform.machine(),
    }


def main(argv=None):
    import argparse
    import json
    import os
    import sys

    parser = argparse.ArgumentParser(
        description="fleet-service throughput benchmark reporter")
    parser.add_argument("--devices", type=int, default=10_000,
                        help="population size per run (default 10000)")
    parser.add_argument("--shard-counts", default="1,2,4",
                        help="comma-separated shard counts to sweep "
                             "(default 1,2,4)")
    parser.add_argument("--steps", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--skip-embedded", action="store_true",
                        help="skip the (slow) reference-engine runs")
    parser.add_argument("--out", default="BENCH_fleet.json",
                        help="path of the JSON report to write")
    parser.add_argument("--gate", type=float, default=None,
                        metavar="RATIO",
                        help="require devices/sec at the highest shard "
                             "count to be at least RATIO x the "
                             "single-shard rate (binds only when "
                             "cpu_count >= max shards)")
    args = parser.parse_args(argv)

    shard_counts = sorted({int(s) for s in
                           args.shard_counts.split(",") if s.strip()})
    if not shard_counts:
        parser.error("--shard-counts must name at least one count")
    engines = ("batched",) if args.skip_embedded \
        else ("batched", "embedded")

    payload = measure(args.devices, shard_counts, seed=args.seed,
                      steps=args.steps, engines=engines)

    cores = os.cpu_count() or 1
    status = 0
    if not payload["digests_identical"]:
        payload["gate"] = "FAILED: aggregate digests differ"
        print("ERROR: aggregate digests differ across shard counts / "
              "engines — the fleet fold is not order-independent",
              file=sys.stderr)
        status = 1
    elif args.gate is not None:
        ratio = payload["scaling_ratio"]
        if cores < max(shard_counts):
            payload["gate"] = (f"skipped ({cores} cores < "
                               f"{max(shard_counts)} shards)")
        elif ratio is not None and ratio < args.gate:
            payload["gate"] = (f"FAILED: {ratio:.2f}x < "
                               f"{args.gate:.2f}x at "
                               f"{max(shard_counts)} shards")
            print(f"ERROR: fleet scaling gate failed — "
                  f"{ratio:.2f}x devices/sec at {max(shard_counts)} "
                  f"shards over 1 shard (required {args.gate:.2f}x)",
                  file=sys.stderr)
            status = 1
        else:
            payload["gate"] = (f"passed ({ratio:.2f}x >= "
                               f"{args.gate:.2f}x)")

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))
    print(f"[written to {args.out}]")
    return status


if __name__ == "__main__":
    import sys

    sys.exit(main())
