"""Figure 9: E1 normalized energies across Systems A, B, and C.

Regenerates the three violating boot/workload combinations per
benchmark — ENT vs silent, normalized against the silent full_throttle
boot — with the percent-saved figures the paper prints on the bars.
Shape assertions: every bar saves energy; the magnitudes stay within
the paper's observed band (a few percent to ~75%).
"""

from conftest import write_result
from repro.eval import figure9, format_figure9


def test_fig9_all_systems(benchmark, results_dir):
    bars = benchmark.pedantic(figure9,
                              kwargs={"systems": ("A", "B", "C")},
                              rounds=1, iterations=1)
    # 6 + 5 + 4 benchmarks, three violating combos each.
    assert len(bars) == (6 + 5 + 4) * 3
    for bar in bars:
        assert bar.percent_saved > 0, (bar.system, bar.benchmark)
        assert bar.percent_saved < 85.0, (bar.system, bar.benchmark)
        assert bar.ent_normalized <= bar.silent_normalized
    write_result(results_dir, "figure9.txt", format_figure9(bars))


def test_fig9_system_a_band(benchmark):
    """System A in isolation: savings in the paper's 7-58% band
    (we allow a modest margin for the simulated substrate)."""
    bars = benchmark.pedantic(figure9, kwargs={"systems": ("A",)},
                              rounds=1, iterations=1)
    for bar in bars:
        assert 3.0 < bar.percent_saved < 75.0, (
            bar.benchmark, bar.percent_saved)
