"""Ablation: application-level vs hardware-level energy management.

Section 6.2's System-B observation: on time-fixed workloads, a lower
application duty cycle (fewer frames per second) gives the *hardware*
more opportunity to drop to a lower-power state under the default
ondemand governor.  This ablation runs the Pi video workload under both
the ondemand and the performance governor and checks:

* under ondemand, the energy_saver QoS saves more than the pure
  work-ratio would predict (the governor compounds the saving);
* under performance (frequency pinned at max), the saving shrinks —
  the application-level knob loses its hardware-level ally.
"""

from repro.platform.systems import SystemB
from repro.workloads import ES, FT, get_workload


def _video_energy(qos_mode: str, governor: str) -> float:
    workload = get_workload("video")
    platform = SystemB(seed=1, governor=governor)
    workload.execute(platform, workload.task_size(FT),
                     workload.qos_value(qos_mode), seed=1)
    return platform.energy_total_j()


def test_ablation_governor_interaction(benchmark, results_dir):
    def sweep():
        return {
            governor: {qos: _video_energy(qos, governor)
                       for qos in (ES, FT)}
            for governor in ("ondemand", "performance")
        }

    energies = benchmark.pedantic(sweep, rounds=1, iterations=1)

    def saving(governor):
        e = energies[governor]
        return 1.0 - e[ES] / e[FT]

    ondemand_saving = saving("ondemand")
    performance_saving = saving("performance")
    # The es QoS always saves something...
    assert ondemand_saving > 0
    assert performance_saving > 0
    # ...and the ondemand governor amplifies the application-level
    # saving relative to a pinned frequency.
    assert ondemand_saving > performance_saving

    lines = ["Ablation: governor x QoS on Pi video (energy in J)"]
    for governor, by_qos in energies.items():
        lines.append(f"  {governor:12s} es={by_qos[ES]:8.1f} "
                     f"ft={by_qos[FT]:8.1f} "
                     f"saving={100 * saving(governor):5.2f}%")
    from conftest import write_result
    write_result(results_dir, "ablation_governor.txt", "\n".join(lines))


def test_ablation_governor_power_levels(benchmark):
    """Sanity on the mechanism itself: under ondemand, idle periods
    drop the selected level; under performance they never do."""
    from repro.platform.cpu import (OndemandGovernor, PerformanceGovernor)

    def exercise():
        ondemand = OndemandGovernor(levels=4)
        performance = PerformanceGovernor(levels=4)
        for gov in (ondemand, performance):
            gov.observe(True, 1.0)
            gov.observe(False, 3.0)
        return ondemand.select_level(), performance.select_level()

    od_level, perf_level = benchmark(exercise)
    assert od_level < perf_level
