"""Wall-clock benchmark: serial vs parallel figure8 (BENCH_eval.json).

Times one E1 figure8 grid twice — serially and through the
``repro.eval.parallel`` process pool — verifies the two result sets
are bit-identical, and writes the measurement as JSON::

    PYTHONPATH=src python benchmarks/bench_eval_parallel.py \\
        --jobs 0 --out BENCH_eval.json

CI runs this with ``--jobs 2 --benchmarks jspider`` and uploads the
emitted file as a build artifact.
"""

from __future__ import annotations

import argparse
import json
import platform as host_platform
import sys
import time
from typing import List, Optional


def measure(benchmarks: Optional[List[str]], jobs: int,
            seed: int = 0) -> dict:
    from repro.eval import figure8
    from repro.eval.config import e1_benchmarks
    from repro.eval.parallel import resolve_jobs

    names = benchmarks if benchmarks else e1_benchmarks("A")
    start = time.perf_counter()
    serial = figure8("A", seed=seed, benchmarks=names)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel = figure8("A", seed=seed, benchmarks=names, jobs=jobs)
    parallel_s = time.perf_counter() - start
    identical = all(s.benchmark == p.benchmark and s.cells == p.cells
                    for s, p in zip(serial, parallel))
    episodes = sum(len(row.cells) for row in serial)
    return {
        "bench": "eval_parallel_figure8",
        "system": "A",
        "benchmarks": names,
        "episodes": episodes,
        "jobs": resolve_jobs(jobs),
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 4) if parallel_s else None,
        "identical": identical,
        "python": host_platform.python_version(),
        "machine": host_platform.machine(),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="serial-vs-parallel figure8 wall-clock benchmark")
    parser.add_argument("--jobs", type=int, default=0,
                        help="parallel worker count (0 = all cores)")
    parser.add_argument("--benchmarks", nargs="*", default=None,
                        help="benchmarks to run (default: all System-A "
                             "E1 benchmarks)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_eval.json",
                        help="path of the JSON report to write")
    args = parser.parse_args(argv)
    payload = measure(args.benchmarks, args.jobs, seed=args.seed)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))
    print(f"[written to {args.out}]")
    if not payload["identical"]:
        print("ERROR: parallel results differ from serial",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
