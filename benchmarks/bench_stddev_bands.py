"""Data-collection bands (section 5): run-to-run relative standard
deviation per system.

The paper runs each experiment 11 times (discarding the first) on
Systems A and B and 10 times on System C, reporting that A stays within
2% relative standard deviation for 93% of experiments, B within 2% for
100%, and C shows visibly higher deviation.  This harness reproduces
the ordering: deviation(C) > deviation(A), both in single-digit
percentages.
"""

import statistics

from conftest import write_result
from repro.eval import render_table, repeated_energies, run_e1_episode
from repro.workloads import FT, MG, get_workload

#: Representative (system, benchmark) pairs.
CASES = [("A", "findbugs"), ("A", "crypto"), ("B", "video"),
         ("B", "javaboy"), ("C", "duckduckgo"), ("C", "materiallife")]


def _rel_std(system: str, name: str, times: int) -> float:
    workload = get_workload(name)
    energies = repeated_energies(
        lambda seed: run_e1_episode(workload, system, FT, MG, seed=seed),
        times=times, discard_first=True)
    return statistics.pstdev(energies) / statistics.mean(energies)


def test_stddev_bands(benchmark, results_dir):
    def collect():
        return {(system, name): _rel_std(system, name, times=8)
                for system, name in CASES}

    deviations = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = [[system, name, f"{dev * 100:.2f}%"]
            for (system, name), dev in deviations.items()]
    text = ("Run-to-run relative standard deviation (section 5 bands)\n"
            + render_table(["system", "benchmark", "rel. std dev"], rows))
    write_result(results_dir, "stddev_bands.txt", text)

    a_devs = [d for (s, _), d in deviations.items() if s == "A"]
    c_devs = [d for (s, _), d in deviations.items() if s == "C"]
    # System A tight (<3%), System C visibly noisier than A.
    assert all(d < 0.03 for d in a_devs), a_devs
    assert max(c_devs) > max(a_devs)
    assert all(d < 0.10 for d in c_devs), c_devs
