"""Ablation: the E3 mode-case sleep intervals.

The paper chose 1000/250/0 ms for overheating/hot/safe.  This ablation
sweeps the hot-interval and confirms the design knob behaves as the
mode-case abstraction promises: longer cool-downs push the plateau
temperature down monotonically (and cost run time), while 0 ms
everywhere reduces to the plain-Java trace.
"""

import pytest

from repro.eval.runner import run_e3_episode
from repro.eval.e3 import trace_stats
from repro.workloads import E3_SLEEP_MS, HOT, OVERHEATING, get_workload


def _run_with_sleeps(hot_ms: float, overheating_ms: float):
    saved = dict(E3_SLEEP_MS)
    E3_SLEEP_MS[HOT] = hot_ms
    E3_SLEEP_MS[OVERHEATING] = overheating_ms
    try:
        return run_e3_episode(get_workload("findbugs"), "ent", seed=1,
                              units=160)
    finally:
        E3_SLEEP_MS.update(saved)


def test_ablation_sleep_interval_sweep(benchmark, results_dir):
    def sweep():
        return {hot_ms: trace_stats(_run_with_sleeps(hot_ms, 1000.0))
                for hot_ms in (0.0, 125.0, 250.0, 500.0)}

    stats = benchmark.pedantic(sweep, rounds=1, iterations=1)
    tails = [stats[ms]["tail_mean_c"]
             for ms in (0.0, 125.0, 250.0, 500.0)]
    # Longer hot-sleeps give monotonically cooler plateaus.
    for cooler, hotter in zip(tails[1:], tails):
        assert cooler <= hotter + 0.3, tails

    lines = ["Ablation: E3 hot-mode sleep interval vs plateau"]
    for ms, stat in stats.items():
        lines.append(f"  hot_sleep={ms:6.0f}ms  "
                     f"tail={stat['tail_mean_c']:5.1f}C  "
                     f"peak={stat['peak_c']:5.1f}C")
    from conftest import write_result
    write_result(results_dir, "ablation_e3_sleep.txt", "\n".join(lines))


def test_ablation_zero_sleeps_match_java(benchmark):
    """With every interval at 0 ms the ENT run degenerates to Java."""

    def pair():
        ent = _run_with_sleeps(0.0, 0.0)
        java = run_e3_episode(get_workload("findbugs"), "java", seed=1,
                              units=160)
        return ent, java

    ent, java = benchmark.pedantic(pair, rounds=1, iterations=1)
    assert trace_stats(ent)["tail_mean_c"] == pytest.approx(
        trace_stats(java)["tail_mean_c"], abs=0.8)
