"""Figure 10: battery-casing (E2) runs, Systems A, B, and C.

Regenerates the energy of the energy_saver and managed boots normalized
against the full_throttle boot on the large workload, with mode cases
selecting the Figure 7 QoS levels.  Shape assertions: energy-
proportionality (es <= mg <= ft) everywhere, the paper's headline
System-A savings bands, and the section-6.2 observation that the
time-fixed Pi benchmarks save less (their savings come from power).
"""

import pytest

from conftest import write_result
from repro.eval import figure10, format_figure10
from repro.workloads import ES, MG

#: Paper values for the % saved by the energy_saver boot (Figure 10),
#: with generous tolerances for the simulated substrate.
PAPER_ES_SAVINGS = {
    ("A", "sunflow"): (65.24, 8.0),
    ("A", "crypto"): (17.8, 8.0),
    ("B", "camera"): (6.39, 4.0),
    ("B", "video"): (19.63, 6.0),
    ("B", "javaboy"): (1.34, 1.5),
}


def test_fig10_all_systems(benchmark, results_dir):
    rows = benchmark.pedantic(figure10,
                              kwargs={"systems": ("A", "B", "C")},
                              rounds=1, iterations=1)
    assert len(rows) == 6 + 5 + 4
    for row in rows:
        assert row.energy_proportional, (row.system, row.benchmark)
        assert row.percent_saved(ES) >= row.percent_saved(MG) - 0.5
    for (system, name), (expected, tol) in PAPER_ES_SAVINGS.items():
        row = next(r for r in rows
                   if r.system == system and r.benchmark == name)
        assert row.percent_saved(ES) == pytest.approx(expected, abs=tol), (
            system, name)
    write_result(results_dir, "figure10.txt", format_figure10(rows))


def test_fig10_pi_savings_are_power_driven(benchmark):
    rows = benchmark.pedantic(figure10, kwargs={"systems": ("B",)},
                              rounds=1, iterations=1)
    by_name = {r.benchmark: r for r in rows}
    for pi_specific in ("camera", "video", "javaboy"):
        assert (by_name[pi_specific].percent_saved(ES)
                < by_name["sunflow"].percent_saved(ES))
