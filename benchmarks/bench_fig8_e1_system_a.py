"""Figure 8: System A battery-exception (E1) runs.

Regenerates the full 9-combination grid (boot mode x workload mode),
ENT and silent, for the six System-A benchmarks.  Shape assertions:
EnergyException fires exactly on the three violating combos, and every
exception-throwing ENT run consumes less than its silent counterpart.
"""

from conftest import write_result
from repro.eval import figure8, format_figure8, run_e1_episode
from repro.eval.config import VIOLATING_COMBOS
from repro.workloads import BATTERY_MODES, FT, MG, get_workload

_ORDER = {m: i for i, m in enumerate(BATTERY_MODES)}


def test_fig8_grid(benchmark, results_dir):
    rows = benchmark.pedantic(figure8, kwargs={"system": "A"},
                              rounds=1, iterations=1)
    assert len(rows) == 6
    for row in rows:
        for workload_mode in BATTERY_MODES:
            for boot in BATTERY_MODES:
                thrown = row.exception_thrown(boot, workload_mode)
                expected = _ORDER[workload_mode] > _ORDER[boot]
                assert thrown == expected, (
                    row.benchmark, boot, workload_mode)
                if thrown:
                    assert (row.energy(boot, workload_mode, False)
                            < row.energy(boot, workload_mode, True)), (
                        row.benchmark, boot, workload_mode)
    write_result(results_dir, "figure8.txt", format_figure8(rows))


def test_fig8_single_episode(benchmark):
    """One bar of Figure 8: the managed-boot / full_throttle-workload
    jspider run (exception + degraded QoS)."""
    workload = get_workload("jspider")
    episode = benchmark(
        lambda: run_e1_episode(workload, "A", MG, FT, seed=1))
    assert episode.exception_raised
    assert episode.energy_j > 0
