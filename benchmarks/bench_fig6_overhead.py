"""Figure 6: benchmark descriptions, code sizes, and % energy overhead.

Regenerates the paper's Figure 6 table: for every benchmark, the static
columns (description, system, CLOC, ENT-change LoC) plus the measured
overhead of the ENT runtime (tagging + checks + copies) against the
baseline build that treats snapshot as a no-op.  The paper reports
overheads within a few percent, frequently negative under run-to-run
variance — the same band this harness produces.
"""

import pytest

from conftest import write_result
from repro.eval import figure6, format_figure6, measure_overhead
from repro.runtime.embedded import EntRuntime
from repro.workloads import ES, MG, get_workload


def test_fig6_table(benchmark, results_dir):
    rows = benchmark.pedantic(figure6, kwargs={"repeats": 5},
                              rounds=1, iterations=1)
    assert len(rows) == 15
    for row in rows:
        # The paper's band: overhead indistinguishable from noise
        # (|x| <= 3.41% on their testbed); our decomposed estimator
        # gives a small strictly-positive figure.
        assert 0.0 <= row.overhead_percent < 5.0, (
            row.benchmark, row.overhead_percent)
    write_result(results_dir, "figure6.txt", format_figure6(rows))


@pytest.mark.parametrize("baseline", [False, True],
                         ids=["ent", "baseline"])
def test_fig6_episode_cost(benchmark, baseline):
    """The raw quantity behind the overhead column: one snapshot-and-
    process episode under the full runtime vs the no-op baseline."""
    workload = get_workload("jspider")

    def episode():
        from repro.platform.systems import make_platform
        platform = make_platform("A", seed=1, battery_fraction=0.9)
        rt = EntRuntime.standard(platform, baseline=baseline)

        @rt.dynamic
        class Task:
            def __init__(self):
                self.size = workload.task_size(ES)

            def attributor(self):
                return workload.attribute(self.size)

            def process(self):
                return workload.execute(rt.platform, self.size,
                                        workload.qos_value(MG))

        task = rt.snapshot(Task())
        with rt.booted("full_throttle"):
            return task.process()

    result = benchmark(episode)
    assert result.units_done > 0


def test_fig6_runtime_mechanism_cost(benchmark):
    """Microbenchmark of the pure runtime mechanisms: snapshot + dfall
    check + mode-case elimination with a trivial kernel."""
    rt = EntRuntime.standard()

    @rt.dynamic
    class Tiny:
        level = rt.mcase({"energy_saver": 1, "managed": 2,
                          "full_throttle": 3})

        def __init__(self):
            self.n = 100

        def attributor(self):
            return "managed"

        def touch(self):
            return self.level

    def mechanisms():
        obj = rt.snapshot(Tiny())
        with rt.booted("full_throttle"):
            return obj.touch()

    assert benchmark(mechanisms) == 2
