"""Reproduction of "Proactive and Adaptive Energy-Aware Programming with
Mixed Typechecking" (ENT, Canino & Liu, PLDI 2017).

Subpackages:

* :mod:`repro.core` — mode lattices, constraint entailment, errors.
* :mod:`repro.lang` — the ENT language: lexer, parser, mixed
  static/dynamic typechecker, interpreter.
* :mod:`repro.runtime` — the embedded ENT API for plain Python programs
  plus the ``Ext`` external-context utility.
* :mod:`repro.platform` — simulated energy platforms (Intel laptop,
  Raspberry Pi 2, Android phone) with battery, thermal and DVFS models.
* :mod:`repro.workloads` — the paper's 15 benchmark applications.
* :mod:`repro.eval` — the E1/E2/E3 experiment harnesses and the
  per-figure report generators.
"""

__version__ = "1.0.0"

from repro.core import (BOTTOM, TOP, EnergyException, EntError, Mode,
                        ModeLattice)

__all__ = [
    "BOTTOM",
    "EnergyException",
    "EntError",
    "Mode",
    "ModeLattice",
    "TOP",
    "__version__",
]
