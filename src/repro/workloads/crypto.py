"""crypto: RSA encryption (SPECjvm2008-style).

A genuine textbook RSA: deterministic Miller-Rabin prime generation
(cached per key strength), block encryption via modular exponentiation.
Figure 7: the workload mode is attributed by input file size
(1/2/4 MB; we encrypt a 1/128-scale buffer and charge the full-size
cost) and the QoS knob is the key strength (768/1024/1280 bits).
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from repro.workloads.base import ES, FT, MG, TaskResult, Workload

_SCALE = 128.0

_KEY_CACHE: Dict[int, Tuple[int, int]] = {}


def _is_probable_prime(candidate: int, rng: random.Random,
                       rounds: int = 12) -> bool:
    if candidate < 4:
        return candidate in (2, 3)
    if candidate % 2 == 0:
        return False
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, candidate - 2)
        x = pow(a, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


def _gen_prime(bits: int, rng: random.Random) -> int:
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if _is_probable_prime(candidate, rng):
            return candidate


def rsa_keypair(bits: int) -> Tuple[int, int]:
    """A deterministic (n, e) public key of ``bits`` modulus size."""
    if bits not in _KEY_CACHE:
        rng = random.Random(0xE47 + bits)
        p = _gen_prime(bits // 2, rng)
        q = _gen_prime(bits - bits // 2, rng)
        _KEY_CACHE[bits] = (p * q, 65_537)
    return _KEY_CACHE[bits]


class Crypto(Workload):
    name = "crypto"
    description = "RSA encryption"
    systems = ("A", "B")
    cloc = 381
    ent_changes = 46

    workload_kind = "file size"
    workload_labels = {ES: "1MB", MG: "2MB", FT: "4MB"}
    qos_kind = "encryption key strength"
    qos_labels = {ES: "768", MG: "1024", FT: "1280"}

    # One counted op = one modular squaring on the full-size input.
    work_scale = 2.7e-5

    _SIZES = {ES: 1 << 20, MG: 2 << 20, FT: 4 << 20}
    _QOS = {ES: 768, MG: 1024, FT: 1280}

    def task_size(self, workload_mode: str) -> float:
        return self._SIZES[workload_mode]

    def attribute(self, size: float) -> str:
        if size > (3 << 20):
            return FT
        if size > (1 << 20) * 1.5:
            return MG
        return ES

    def qos_value(self, qos_mode: str) -> float:
        return self._QOS[qos_mode]

    def system_scale(self, system: str) -> float:
        return 0.5 if system == "B" else 1.0

    def execute(self, platform, size: float, qos: float,
                seed: int = 0) -> TaskResult:
        bits = int(qos)
        n, e = rsa_keypair(bits)
        block_bytes = bits // 8 - 11  # PKCS#1-style padding headroom
        real_bytes = int(size / _SCALE)
        rng = random.Random(seed * 7 + real_bytes)
        payload = rng.randbytes(real_bytes)
        platform.io_bytes(size)  # read the input file
        blocks = 0
        checksum = 0
        for offset in range(0, len(payload), block_bytes):
            block = payload[offset:offset + block_bytes]
            message = int.from_bytes(block, "big")
            cipher = pow(message, e, n)
            checksum ^= cipher & 0xFFFFFFFF
            blocks += 1
        # Cost model: e = 65537 means ~17 modular squarings per block,
        # each ~quadratic in the limb count, plus per-byte streaming
        # overhead (padding, buffering); full-size charge.
        limbs = bits / 64.0
        ops_per_block = 17.0 * limbs * limbs + block_bytes * 40.0
        self.charge(platform, blocks * ops_per_block * _SCALE)
        platform.io_bytes(size * (bits / 8.0) / max(1, block_bytes))
        return TaskResult(units_done=blocks,
                          detail={"checksum": float(checksum),
                                  "key_bits": float(bits)})
