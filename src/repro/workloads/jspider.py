"""jspider: a web crawler — the paper's running example.

The kernel crawls a synthetic site graph: the seed site exposes a
number of resources (Figure 7's attribution knob: 89/1058/1967), each
resource links to a few nested resources, and the crawler walks the
graph breadth-first down to the QoS spidering depth (3/4/5).  Each
fetched resource costs network bytes and parsing work — the same
I/O-heavy profile as the real jspider.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.workloads.base import ES, FT, MG, TaskResult, Workload


class _SiteGraph:
    """A deterministic synthetic website."""

    def __init__(self, resources: int, seed: int) -> None:
        self.rng = random.Random(seed * 1_000_003 + resources)
        self.resources = resources
        self._links: Dict[str, List[str]] = {}
        self._sizes: Dict[str, int] = {}

    def root_urls(self) -> List[str]:
        return [f"/r{i}" for i in range(self.resources)]

    def links_of(self, url: str) -> List[str]:
        if url not in self._links:
            depth = url.count("/")
            # Shallow pages link richly; deep pages only occasionally
            # spawn further resources (a long, thin tail).
            fanout = max(0, 3 - depth)
            if self.rng.random() < 0.45:
                fanout += 1
            self._links[url] = [f"{url}/c{i}" for i in range(fanout)]
        return self._links[url]

    def size_of(self, url: str) -> int:
        if url not in self._sizes:
            self._sizes[url] = 2_000 + self.rng.randrange(30_000)
        return self._sizes[url]


class JSpider(Workload):
    name = "jspider"
    description = "web crawler"
    systems = ("A",)
    cloc = 9194
    ent_changes = 49

    workload_kind = "site resources"
    workload_labels = {ES: "89", MG: "1058", FT: "1967"}
    qos_kind = "spidering depth"
    qos_labels = {ES: "3", MG: "4", FT: "5"}

    # One counted op = one parsed byte-equivalent.
    work_scale = 5.0e-4

    _SIZES = {ES: 89, MG: 1058, FT: 1967}
    _QOS = {ES: 3, MG: 4, FT: 5}

    def task_size(self, workload_mode: str) -> float:
        return self._SIZES[workload_mode]

    def attribute(self, size: float) -> str:
        if size > 1200:
            return FT
        if size > 200:
            return MG
        return ES

    def qos_value(self, qos_mode: str) -> float:
        return self._QOS[qos_mode]

    def execute(self, platform, size: float, qos: float,
                seed: int = 0) -> TaskResult:
        site = _SiteGraph(max(1, int(size)), seed)
        max_depth = max(1, int(qos))
        frontier = site.root_urls()
        visited = 0
        fetched_bytes = 0
        for depth in range(max_depth):
            next_frontier: List[str] = []
            for url in frontier:
                body_size = site.size_of(url)
                platform.net_bytes(body_size)
                # Parse the page: link extraction + rule filtering.
                self.charge(platform, body_size * 2.0)
                fetched_bytes += body_size
                visited += 1
                next_frontier.extend(site.links_of(url))
            frontier = next_frontier
            if not frontier:
                break
        platform.io_bytes(fetched_bytes * 0.2)  # persist the index
        return TaskResult(units_done=visited,
                          detail={"fetched_bytes": float(fetched_bytes),
                                  "depth": float(max_depth)})
