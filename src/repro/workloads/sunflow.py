"""sunflow: a ray-tracing renderer (DaCapo).

The kernel is a genuine (miniature) ray tracer: for every pixel of a
small image plane it casts ``aa`` anti-aliasing sample rays against a
scene of shaded spheres and accumulates Lambertian shading.  Figure 7:
the workload mode is attributed by the number of scene instances
(3/6/8) and the QoS knob is the anti-aliasing sample count
(1/4 | 1/4-4 | 1/4-16 — we use the per-pixel sample budgets 0.25, 2
and 8 from those ranges).
"""

from __future__ import annotations

import math
import random
from typing import List, Tuple

from repro.workloads.base import ES, FT, MG, TaskResult, Workload

_Sphere = Tuple[float, float, float, float]  # cx, cy, cz, radius

#: Rendered image plane (scaled; charge factor recovers full-size cost).
_WIDTH, _HEIGHT = 40, 30


def _build_scene(instances: int, seed: int) -> List[_Sphere]:
    rng = random.Random(seed * 7919 + instances)
    scene: List[_Sphere] = []
    for index in range(instances):
        scene.append((
            rng.uniform(-2.0, 2.0),
            rng.uniform(-1.0, 1.0),
            3.0 + index * 0.9 + rng.uniform(0.0, 0.5),
            rng.uniform(0.5, 1.1),
        ))
    return scene


def _intersect(ox: float, oy: float, oz: float,
               dx: float, dy: float, dz: float,
               sphere: _Sphere) -> float:
    """Smallest positive ray parameter hitting the sphere, or inf."""
    cx, cy, cz, radius = sphere
    lx, ly, lz = cx - ox, cy - oy, cz - oz
    tca = lx * dx + ly * dy + lz * dz
    d2 = lx * lx + ly * ly + lz * lz - tca * tca
    r2 = radius * radius
    if d2 > r2:
        return math.inf
    thc = math.sqrt(r2 - d2)
    t0 = tca - thc
    if t0 > 1e-6:
        return t0
    t1 = tca + thc
    return t1 if t1 > 1e-6 else math.inf


class Sunflow(Workload):
    name = "sunflow"
    description = "renderer"
    systems = ("A", "B")
    cloc = 21946
    ent_changes = 76

    workload_kind = "scene instances"
    workload_labels = {ES: "3", MG: "6", FT: "8"}
    qos_kind = "anti-aliasing samples"
    qos_labels = {ES: "1/4", MG: "1/4 - 4", FT: "1/4 - 16"}

    # One counted op = one ray-sphere test; calibrated so the large
    # System-A render lands near the paper's few-hundred-joule range.
    work_scale = 1.0

    supports_temperature = True
    e3_units = 45

    _SIZES = {ES: 3, MG: 6, FT: 8}
    # Per-pixel sample budgets drawn from Fig 7's adaptive ranges
    # (1/4, 1/4-4, 1/4-16).
    _QOS = {ES: 0.9, MG: 2.2, FT: 4.5}

    def task_size(self, workload_mode: str) -> float:
        return self._SIZES[workload_mode]

    def attribute(self, size: float) -> str:
        if size > 6:
            return FT
        if size > 3:
            return MG
        return ES

    def qos_value(self, qos_mode: str) -> float:
        return self._QOS[qos_mode]

    def system_scale(self, system: str) -> float:
        # The paper shrinks Pi inputs to match the slower processor.
        return 0.5 if system == "B" else 1.0

    def execute(self, platform, size: float, qos: float,
                seed: int = 0) -> TaskResult:
        instances = max(1, int(round(size)))
        scene = _build_scene(instances, seed)
        rng = random.Random(seed)
        samples_budget = _WIDTH * _HEIGHT * qos
        samples = max(1, int(samples_budget))
        tests = 0
        brightness = 0.0
        for index in range(samples):
            px = (index * 2654435761 % _WIDTH) + rng.random()
            py = (index * 40503 % _HEIGHT) + rng.random()
            dx = (px / _WIDTH - 0.5) * 1.2
            dy = (0.5 - py / _HEIGHT) * 0.9
            dz = 1.0
            norm = math.sqrt(dx * dx + dy * dy + dz * dz)
            dx, dy, dz = dx / norm, dy / norm, dz / norm
            best = math.inf
            best_sphere = None
            for sphere in scene:
                t = _intersect(0.0, 0.0, 0.0, dx, dy, dz, sphere)
                tests += 1
                if t < best:
                    best = t
                    best_sphere = sphere
            if best_sphere is not None:
                hx, hy, hz = dx * best, dy * best, dz * best
                cx, cy, cz, radius = best_sphere
                nx = (hx - cx) / radius
                ny = (hy - cy) / radius
                nz = (hz - cz) / radius
                # Lambertian shading from a fixed light direction.
                brightness += max(0.0, nx * 0.4 + ny * 0.8 - nz * 0.45)
        # Each counted test stands for the full-size renderer's
        # per-sample shading work on the real image plane.
        self.charge(platform, tests * 4.0)
        # Sample-independent preparation: scene parse, BVH build,
        # texture decode (flattens the QoS curve, as in real sunflow).
        self.charge(platform, instances * 5.0e3)
        # Scene/asset loading.
        platform.io_bytes(instances * 2.0e5)
        return TaskResult(units_done=samples,
                          detail={"brightness": brightness,
                                  "ray_tests": float(tests)})

    def execute_unit(self, platform, qos: float, seed: int = 0) -> None:
        """E3 unit: render one bucket of the large scene.

        Buckets are long relative to the other E3 benchmarks, which is
        why the paper's sunflow hovers near the *overheating* threshold
        rather than the hot one."""
        self.execute(platform, 3, min(qos, 1.6), seed=seed)
