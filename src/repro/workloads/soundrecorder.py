"""soundrecorder: a sound recording app (System C).

Records for the workload-attributed length (3 / 4 / 5 minutes) at the
QoS sample rate (8 / 24 / 48 kHz): each second captures PCM samples,
runs an AAC-style encode (work proportional to the sample rate), and
flushes the compressed stream to flash.  Recording time is fixed by
the length, so boot modes differ in power draw.
"""

from __future__ import annotations

import math

from repro.workloads.base import ES, FT, MG, TaskResult, Workload

#: Recording simulated in one-second steps, scaled 1/4.
_TIME_SCALE = 4.0


class SoundRecorder(Workload):
    name = "soundrecorder"
    description = "sound encoding"
    systems = ("C",)
    cloc = 1_090
    ent_changes = 118

    workload_kind = "recording length"
    workload_labels = {ES: "3 min", MG: "4 min", FT: "5 min"}
    qos_kind = "sample rate (kHz)"
    qos_labels = {ES: "8", MG: "24", FT: "48"}

    # One counted op = one encoded sample.
    work_scale = 9.0e-5

    time_fixed = True

    _SIZES = {ES: 180.0, MG: 240.0, FT: 300.0}
    _QOS = {ES: 8_000.0, MG: 24_000.0, FT: 48_000.0}

    def task_size(self, workload_mode: str) -> float:
        return self._SIZES[workload_mode]

    def attribute(self, size: float) -> str:
        if size > 270.0:
            return FT
        if size > 210.0:
            return MG
        return ES

    def qos_value(self, qos_mode: str) -> float:
        return self._QOS[qos_mode]

    def execute(self, platform, size: float, qos: float,
                seed: int = 0) -> TaskResult:
        rate = max(1_000.0, float(qos))
        seconds = max(1.0, size)
        steps = int(seconds / _TIME_SCALE)
        written = 0.0
        # A real MDCT-flavoured encode on a small window per step keeps
        # the kernel honest; the charge covers the full second.
        window = [math.sin(0.01 * i) for i in range(128)]
        energy_acc = 0.0
        for step in range(steps):
            step_start = platform.now()
            # Capture + psychoacoustic analysis + entropy coding.
            for i in range(0, len(window), 2):
                energy_acc += window[i] * window[i]
            self.charge(platform, rate * 14.0 * _TIME_SCALE)
            compressed = rate * 0.25 * _TIME_SCALE  # ~2 bits/sample
            platform.io_bytes(compressed)
            written += compressed
            busy = platform.now() - step_start
            idle = _TIME_SCALE - busy
            if idle > 0:
                platform.sleep(idle)
        return TaskResult(units_done=steps,
                          detail={"file_bytes": written,
                                  "sample_rate": rate,
                                  "window_energy": energy_acc})
