"""materiallife: an animated Conway's Game of Life (System C).

A genuine Game of Life over a sparse live-cell set.  The workload mode
is attributed by the simulation population (1000 / 2000 / 5000 seeded
cells) and the QoS knob is the animation frame rate (5 / 10 / 15 fps):
each frame steps the automaton (work proportional to live cells) and
renders the board, idling the rest of the frame budget.  Fixed one-
minute session, so boot modes differ in power.
"""

from __future__ import annotations

import random
from typing import Set, Tuple

from repro.workloads.base import ES, FT, MG, TaskResult, Workload

RUN_SECONDS = 60.0

#: The in-memory board holds 1/_POP_SCALE of the paper's population;
#: charges are scaled back up.
_POP_SCALE = 10.0

_Cell = Tuple[int, int]

_NEIGHBOURS = [(-1, -1), (-1, 0), (-1, 1), (0, -1), (0, 1),
               (1, -1), (1, 0), (1, 1)]


def life_step(cells: Set[_Cell]) -> Set[_Cell]:
    """One generation of Conway's Game of Life on a sparse board."""
    counts: dict = {}
    for (x, y) in cells:
        for dx, dy in _NEIGHBOURS:
            key = (x + dx, y + dy)
            counts[key] = counts.get(key, 0) + 1
    fresh: Set[_Cell] = set()
    for cell, count in counts.items():
        if count == 3 or (count == 2 and cell in cells):
            fresh.add(cell)
    return fresh


def seed_board(population: int, seed: int) -> Set[_Cell]:
    rng = random.Random(seed * 11 + population)
    side = max(20, int((population * 4) ** 0.5))
    cells: Set[_Cell] = set()
    while len(cells) < population:
        cells.add((rng.randrange(side), rng.randrange(side)))
    return cells


class MaterialLife(Workload):
    name = "materiallife"
    description = "simulation rendering"
    systems = ("C",)
    cloc = 1_705
    ent_changes = 63

    workload_kind = "simulation population"
    workload_labels = {ES: "1000", MG: "2000", FT: "5000"}
    qos_kind = "frame rate"
    qos_labels = {ES: "5", MG: "10", FT: "15"}

    # One counted op = one neighbour update / rendered cell.
    work_scale = 3.2e-4

    time_fixed = True

    _SIZES = {ES: 1_000, MG: 2_000, FT: 5_000}
    _QOS = {ES: 5.0, MG: 10.0, FT: 15.0}

    def task_size(self, workload_mode: str) -> float:
        return self._SIZES[workload_mode]

    def attribute(self, size: float) -> str:
        if size > 3_000:
            return FT
        if size > 1_500:
            return MG
        return ES

    def qos_value(self, qos_mode: str) -> float:
        return self._QOS[qos_mode]

    def execute(self, platform, size: float, qos: float,
                seed: int = 0) -> TaskResult:
        fps = max(1.0, float(qos))
        cells = seed_board(max(8, int(size / _POP_SCALE)), seed)
        side = max(20, int((size / _POP_SCALE * 4) ** 0.5))
        canvas_cells = float(side * side)
        start = platform.now()
        generations = 0
        peak = len(cells)
        # Step in one-second batches: fps generations per batch.
        for _ in range(int(RUN_SECONDS)):
            batch_start = platform.now()
            for _ in range(int(fps)):
                before = len(cells)
                cells = life_step(cells)
                generations += 1
                peak = max(peak, len(cells))
                # Automaton update + full-canvas redraw per frame,
                # scaled back to the full population.
                self.charge(platform,
                            (before * 9.0 + len(cells) * 4.0
                             + canvas_cells * 3.0) * _POP_SCALE)
            if not cells:
                cells = seed_board(max(8, int(size / _POP_SCALE)),
                                   seed + generations)
            busy = platform.now() - batch_start
            idle = 1.0 - busy
            if idle > 0:
                platform.sleep(idle)
        return TaskResult(units_done=generations,
                          detail={"live_cells": float(len(cells)),
                                  "peak_cells": float(peak)})
