"""camera: Raspberry Pi time-lapse capture (Pi-specific, System B).

Models the paper's time-lapse monitoring app: for a fixed two-minute
run, capture a still every interval, JPEG-encode it, and write it to
the SD card, idling between shots.  The workload mode is attributed by
picture resolution (720x480 / 1280x720 / 1920x1080) and the QoS knob
is the time-lapse interval.

The run is *time-fixed*: every mode combination records for the same
duration, so energy differences come from average power — the paper's
key System-B observation.  (Figure 7 lists the intervals 500/1000/
1500 ms; we map the longest interval to ``energy_saver`` so that the
low-power mode takes the fewest shots, matching the measured 6.38%
saving of energy_saver over full_throttle.)
"""

from __future__ import annotations

from repro.workloads.base import ES, FT, MG, TaskResult, Workload

#: Fixed run duration, as in the paper ("2 minutes").
RUN_SECONDS = 120.0


class Camera(Workload):
    name = "camera"
    description = "picture timelapse"
    systems = ("B",)
    cloc = 143
    ent_changes = 40

    workload_kind = "picture resolution"
    workload_labels = {ES: "720x480", MG: "1280x720", FT: "1920x1080"}
    qos_kind = "timelapse interval"
    qos_labels = {ES: "1500ms", MG: "1000ms", FT: "500ms"}

    # One counted op = one pixel captured+encoded.
    work_scale = 1.6e-6

    time_fixed = True

    _SIZES = {ES: 720 * 480, MG: 1280 * 720, FT: 1920 * 1080}
    _QOS = {ES: 1.5, MG: 1.0, FT: 0.5}  # seconds between shots

    def task_size(self, workload_mode: str) -> float:
        return self._SIZES[workload_mode]

    def attribute(self, size: float) -> str:
        if size > 1_500_000:
            return FT
        if size > 500_000:
            return MG
        return ES

    def qos_value(self, qos_mode: str) -> float:
        return self._QOS[qos_mode]

    def execute(self, platform, size: float, qos: float,
                seed: int = 0) -> TaskResult:
        pixels = max(1.0, size)
        interval = max(0.1, float(qos))
        start = platform.now()
        shots = 0
        total_bytes = 0.0
        while platform.now() - start < RUN_SECONDS:
            # Capture + JPEG encode: ~25 ops per pixel, charged scaled.
            self.charge(platform, pixels * 25.0)
            jpeg_bytes = pixels * 0.18  # typical JPEG compression
            platform.io_bytes(jpeg_bytes)
            total_bytes += jpeg_bytes
            shots += 1
            elapsed_since_shot = platform.now() - start - (shots - 1) * \
                interval
            idle = interval - elapsed_since_shot
            if idle > 0:
                platform.sleep(idle)
        return TaskResult(units_done=shots,
                          detail={"jpeg_bytes": total_bytes,
                                  "interval_s": interval})
