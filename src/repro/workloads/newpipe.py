"""newpipe: a lightweight YouTube streaming app (System C).

Streams a video of the workload-attributed length (2.5 / 6.5 / 16
minutes) at the QoS stream resolution (144p / 240p / 360p): each
playback second downloads the stream over wifi and decodes it, with
the radio and decoder work proportional to the resolution.  Driven by
a RERAN-style recording (open app, search, tap result), whose replay
jitter contributes System C's higher run-to-run deviation.  Time is
fixed by the video length, so boot modes differ in power draw.
"""

from __future__ import annotations

from repro.platform.reran import Recording, ReranReplayer
from repro.workloads.base import ES, FT, MG, TaskResult, Workload

#: Playback simulated in one-second steps; lengths scaled 1/5 to keep
#: step counts laptop-friendly (energy charged per modelled second).
_TIME_SCALE = 5.0

_STARTUP = Recording.script([
    (0.6, "tap", "app-icon"),
    (1.2, "type", "lofi beats"),
    (0.8, "tap", "search"),
    (1.5, "tap", "result-0"),
])


class NewPipe(Workload):
    name = "newpipe"
    description = "YouTube streaming"
    systems = ("C",)
    cloc = 8424
    ent_changes = 51

    workload_kind = "video length"
    workload_labels = {ES: "2.5 min", MG: "6.5 min", FT: "16 min"}
    qos_kind = "stream resolution"
    qos_labels = {ES: "144p", MG: "240p", FT: "360p"}

    # One counted op = one decoded pixel.
    work_scale = 7.0e-7

    time_fixed = True

    _SIZES = {ES: 150.0, MG: 390.0, FT: 960.0}          # seconds
    _QOS = {ES: 256 * 144, MG: 426 * 240, FT: 640 * 360}  # pixels

    def task_size(self, workload_mode: str) -> float:
        return self._SIZES[workload_mode]

    def attribute(self, size: float) -> str:
        if size > 600.0:
            return FT
        if size > 200.0:
            return MG
        return ES

    def qos_value(self, qos_mode: str) -> float:
        return self._QOS[qos_mode]

    def execute(self, platform, size: float, qos: float,
                seed: int = 0) -> TaskResult:
        pixels = max(1.0, float(qos))
        seconds = max(1.0, size)
        replayer = ReranReplayer(platform, seed=seed)
        for event in replayer.replay(_STARTUP):
            platform.cpu_work(30.0)          # UI handling
            if event.kind in ("type", "tap"):
                platform.net_bytes(40_000.0)  # API round trips
        fps = 30.0
        steps = int(seconds / _TIME_SCALE)
        downloaded = 0.0
        for _ in range(steps):
            step_start = platform.now()
            # One modelled playback-second, charged _TIME_SCALE times.
            stream_bytes = pixels * 0.09 * fps * _TIME_SCALE
            platform.net_bytes(stream_bytes)
            downloaded += stream_bytes
            self.charge(platform, pixels * fps * 6.0 * _TIME_SCALE)
            busy = platform.now() - step_start
            idle = _TIME_SCALE - busy
            if idle > 0:
                platform.sleep(idle)
        return TaskResult(units_done=steps,
                          detail={"downloaded_bytes": downloaded,
                                  "resolution_px": pixels})
