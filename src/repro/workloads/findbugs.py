"""findbugs: a static bug finder over compiled classes.

The paper analyzes drjava (5,363 classes), JavaRT (20,136) and jBoss
(56,704) at min/default/max analysis effort.  The kernel is a real —
miniature — bytecode analyzer: it generates a deterministic corpus of
synthetic "class files" (instruction streams over a small abstract
ISA) and runs bug detectors over them.  Analysis effort controls which
detector passes run, exactly like FindBugs' ``-effort`` flag:

* min     — linear scans (null-dereference, dead stores)
* default — plus an intraprocedural dataflow (reaching definitions)
* max     — plus a quadratic alias/escape approximation
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.workloads.base import ES, FT, MG, TaskResult, Workload

#: Real in-memory corpus = paper class count / _SCALE.
_SCALE = 40.0

#: Abstract instructions: (opcode, operand register).
_OPCODES = ("load", "store", "getfield", "invoke", "branch", "const",
            "aload", "astore", "return")


def _gen_class(rng: random.Random) -> List[Tuple[str, int]]:
    length = 20 + rng.randrange(60)
    return [(_OPCODES[rng.randrange(len(_OPCODES))], rng.randrange(8))
            for _ in range(length)]


def _detect_null_deref(code: List[Tuple[str, int]]) -> int:
    """Registers loaded with const 0 then dereferenced: bug."""
    bugs = 0
    null_regs = set()
    for op, reg in code:
        if op == "const":
            null_regs.add(reg)
        elif op in ("store", "astore"):
            null_regs.discard(reg)
        elif op in ("getfield", "invoke") and reg in null_regs:
            bugs += 1
    return bugs


def _detect_dead_store(code: List[Tuple[str, int]]) -> int:
    bugs = 0
    pending: Dict[int, bool] = {}
    for op, reg in code:
        if op in ("store", "astore"):
            if pending.get(reg):
                bugs += 1
            pending[reg] = True
        elif op in ("load", "aload", "getfield", "invoke"):
            pending[reg] = False
    return bugs


def _reaching_definitions(code: List[Tuple[str, int]]) -> int:
    """A fixpoint dataflow over basic blocks split at branches."""
    blocks: List[List[Tuple[str, int]]] = [[]]
    for instr in code:
        blocks[-1].append(instr)
        if instr[0] == "branch":
            blocks.append([])
    defs_in: List[frozenset] = [frozenset() for _ in blocks]
    changed = True
    visits = 0
    while changed:
        changed = False
        carry: frozenset = frozenset()
        for index, block in enumerate(blocks):
            merged = carry | defs_in[index]
            if merged != defs_in[index]:
                defs_in[index] = merged
                changed = True
            live = set(merged)
            for op, reg in block:
                visits += 1
                if op in ("store", "astore"):
                    live.add(reg)
            carry = frozenset(live)
    return visits


def _alias_pass(code: List[Tuple[str, int]]) -> int:
    """Quadratic pairwise alias approximation (the 'max' pass)."""
    loads = [reg for op, reg in code if op in ("aload", "load")]
    pairs = 0
    for i in range(len(loads)):
        for j in range(i + 1, len(loads)):
            if loads[i] == loads[j]:
                pairs += 1
    return pairs


class FindBugs(Workload):
    name = "findbugs"
    description = "static analyzer"
    systems = ("A",)
    cloc = 147_896
    ent_changes = 55

    workload_kind = "code base (classes)"
    workload_labels = {ES: "drjava (5363)", MG: "JavaRT (20136)",
                       FT: "jBoss (56704)"}
    qos_kind = "analysis effort"
    qos_labels = {ES: "min", MG: "default", FT: "max"}

    # One counted op = one analyzed instruction on the full corpus.
    work_scale = 8.0e-3

    supports_temperature = True
    e3_units = 240

    _SIZES = {ES: 5_363, MG: 20_136, FT: 56_704}
    _QOS = {ES: 1.0, MG: 2.0, FT: 3.0}  # effort level

    def task_size(self, workload_mode: str) -> float:
        return self._SIZES[workload_mode]

    def attribute(self, size: float) -> str:
        if size > 30_000:
            return FT
        if size > 10_000:
            return MG
        return ES

    def qos_value(self, qos_mode: str) -> float:
        return self._QOS[qos_mode]

    def execute(self, platform, size: float, qos: float,
                seed: int = 0) -> TaskResult:
        classes = max(1, int(size / _SCALE))
        rng = random.Random(seed * 65_537 + classes)
        effort = int(qos)
        bugs = 0
        analyzed_ops = 0
        platform.io_bytes(size * 1_500.0)  # read the class files
        for _ in range(classes):
            code = _gen_class(rng)
            # Class loading + the always-on linear detectors dominate,
            # as in real FindBugs; effort adds incremental passes.
            analyzed_ops += len(code) * 10
            bugs += _detect_null_deref(code)
            bugs += _detect_dead_store(code)
            if effort >= 2:
                analyzed_ops += _reaching_definitions(code)
            if effort >= 3:
                analyzed_ops += (int(_alias_pass(code) * 0.2)
                                 + len(code) * 2)
        # Scale the counted instructions back up to the full corpus.
        self.charge(platform, analyzed_ops * _SCALE)
        return TaskResult(units_done=classes,
                          detail={"bugs": float(bugs),
                                  "effort": float(effort)})

    def execute_unit(self, platform, qos: float, seed: int = 0) -> None:
        """E3 unit: analyze one package worth of classes."""
        self.execute(platform, self._SIZES[FT] / 75.0, qos, seed=seed)
