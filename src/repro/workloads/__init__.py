"""The paper's 15 benchmark applications as simulated workload kernels."""

from repro.workloads.base import (BATTERY_MODES, BOOT_BATTERY_LEVELS,
                                  E3_SLEEP_MS, ES, FT, HOT, MG, OVERHEATING,
                                  SAFE, THERMAL_MODES, TaskResult, Workload,
                                  battery_boot_mode, temperature_boot_mode)
from repro.workloads.registry import (ALL_WORKLOADS, E1_E2_BENCHMARKS,
                                      E3_BENCHMARKS, get_workload,
                                      workloads_for_system)

__all__ = [
    "ALL_WORKLOADS",
    "BATTERY_MODES",
    "BOOT_BATTERY_LEVELS",
    "E1_E2_BENCHMARKS",
    "E3_BENCHMARKS",
    "E3_SLEEP_MS",
    "ES",
    "FT",
    "HOT",
    "MG",
    "OVERHEATING",
    "SAFE",
    "THERMAL_MODES",
    "TaskResult",
    "Workload",
    "battery_boot_mode",
    "get_workload",
    "temperature_boot_mode",
    "workloads_for_system",
]
