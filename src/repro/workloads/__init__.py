"""The paper's 15 benchmark applications as simulated workload kernels."""

from repro.workloads.base import (BATTERY_LATTICE, BATTERY_MODES,
                                  BOOT_BATTERY_LEVELS, E3_SLEEP_MS, ES, FT,
                                  HOT, MG, OVERHEATING, SAFE, THERMAL_LATTICE,
                                  THERMAL_MODES, TaskResult, Workload,
                                  battery_boot_mode, mode_leq,
                                  temperature_boot_mode)
from repro.workloads.registry import (ALL_WORKLOADS, E1_E2_BENCHMARKS,
                                      E3_BENCHMARKS, get_workload,
                                      workloads_for_system)

__all__ = [
    "ALL_WORKLOADS",
    "BATTERY_LATTICE",
    "BATTERY_MODES",
    "BOOT_BATTERY_LEVELS",
    "E1_E2_BENCHMARKS",
    "E3_BENCHMARKS",
    "E3_SLEEP_MS",
    "ES",
    "FT",
    "HOT",
    "MG",
    "OVERHEATING",
    "SAFE",
    "THERMAL_LATTICE",
    "THERMAL_MODES",
    "TaskResult",
    "Workload",
    "battery_boot_mode",
    "get_workload",
    "mode_leq",
    "temperature_boot_mode",
    "workloads_for_system",
]
