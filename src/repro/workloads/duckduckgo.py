"""duckduckgo: an anonymous web browser (System C).

Executes a RERAN-scripted session of search queries (8 / 16 / 24, the
workload attribution).  The QoS knob is search quality: ``none``
fetches bare result pages, ``javascript`` additionally downloads and
executes page scripts (heavier render work), and ``autosearch +
javascript`` also prefetches suggestion results while the user types.
Session length is fixed by the query count and the scripted think
time, so boot modes differ in power.
"""

from __future__ import annotations

import random

from repro.platform.reran import Recording, ReranReplayer, TouchEvent
from repro.workloads.base import ES, FT, MG, TaskResult, Workload

#: QoS levels.
_QUALITY_NONE, _QUALITY_JS, _QUALITY_AUTO = 0.0, 1.0, 2.0

_SERP_BYTES = 180_000.0
_JS_BYTES = 320_000.0
_SUGGEST_BYTES = 25_000.0


def _session_recording(queries: int, seed: int) -> Recording:
    rng = random.Random(seed * 17 + queries)
    events = []
    t = 0.0
    for index in range(queries):
        t += 1.0 + rng.random() * 0.5          # focus the search box
        events.append(TouchEvent(t, "tap", "searchbox"))
        for ch in range(6 + rng.randrange(6)):  # type the query
            t += 0.15
            events.append(TouchEvent(t, "type", f"q{index}c{ch}"))
        t += 0.4
        events.append(TouchEvent(t, "tap", "go"))
        t += 2.0 + rng.random()                 # read results, scroll
        events.append(TouchEvent(t, "scroll", "results"))
    return Recording(events)


class DuckDuckGo(Workload):
    name = "duckduckgo"
    description = "web browser"
    systems = ("C",)
    cloc = 13_802
    ent_changes = 78

    workload_kind = "search queries"
    workload_labels = {ES: "8", MG: "16", FT: "24"}
    qos_kind = "search quality"
    qos_labels = {ES: "none", MG: "javascript", FT: "autosearch / js"}

    # One counted op = one rendered layout element.
    work_scale = 1.1e-3

    time_fixed = True

    _SIZES = {ES: 8, MG: 16, FT: 24}
    _QOS = {ES: _QUALITY_NONE, MG: _QUALITY_JS, FT: _QUALITY_AUTO}

    def task_size(self, workload_mode: str) -> float:
        return self._SIZES[workload_mode]

    def attribute(self, size: float) -> str:
        if size > 20:
            return FT
        if size > 10:
            return MG
        return ES

    def qos_value(self, qos_mode: str) -> float:
        return self._QOS[qos_mode]

    def execute(self, platform, size: float, qos: float,
                seed: int = 0) -> TaskResult:
        queries = max(1, int(size))
        quality = float(qos)
        recording = _session_recording(queries, seed)
        replayer = ReranReplayer(platform, seed=seed)
        fetched = 0.0
        rendered = 0
        for event in replayer.replay(recording):
            platform.cpu_work(8.0)  # input handling
            if event.kind == "type" and quality >= _QUALITY_AUTO:
                # Autosearch: prefetch suggestions per keystroke.
                platform.net_bytes(_SUGGEST_BYTES)
                fetched += _SUGGEST_BYTES
                self.charge(platform, 400.0)
                rendered += 400
            elif event.kind == "tap" and event.payload == "go":
                platform.net_bytes(_SERP_BYTES)
                fetched += _SERP_BYTES
                layout_elements = 2_500.0
                if quality >= _QUALITY_JS:
                    platform.net_bytes(_JS_BYTES)
                    fetched += _JS_BYTES
                    layout_elements *= 3.2  # script-driven reflows
                self.charge(platform, layout_elements)
                rendered += int(layout_elements)
            elif event.kind == "scroll":
                self.charge(platform, 900.0)
                rendered += 900
        return TaskResult(units_done=queries,
                          detail={"fetched_bytes": fetched,
                                  "layout_elements": float(rendered)})
