"""pagerank: graph vertex ranking over web-graph snapshots.

The paper ranks the WebGraph datasets cnr-2000 (325,557 nodes),
eswiki-2013 (972,933) and frwiki-2013 (1,352,053); the QoS knob is the
convergence threshold of the power iteration (0.01 / 0.001 / 0.0001 L1
change per iteration).  The kernel runs a genuine power iteration on a
seeded scale-free synthetic graph 1/100th the size and charges the
platform per traversed edge at 100x, preserving the iteration-count
dynamics that the QoS knob controls.
"""

from __future__ import annotations

import random
from typing import List

from repro.workloads.base import ES, FT, MG, TaskResult, Workload

#: Real in-memory graph size = paper size / _SCALE.
_SCALE = 100.0


def _build_graph(nodes: int, seed: int) -> List[List[int]]:
    """A seeded preferential-attachment digraph: ``out[i]`` lists i's
    out-neighbours.  Skewed in-degree like real web graphs."""
    rng = random.Random(seed * 31337 + nodes)
    out: List[List[int]] = [[] for _ in range(nodes)]
    targets: List[int] = [0]
    for node in range(1, nodes):
        degree = 1 + rng.randrange(4)
        for _ in range(degree):
            # Preferential attachment: sample from the target multiset.
            out[node].append(targets[rng.randrange(len(targets))])
        targets.extend(out[node])
        targets.append(node)
    # Web graphs are cyclic: add forward links so the chain's mixing
    # rate tracks the damping factor rather than collapsing (a pure
    # preferential-attachment digraph is acyclic and converges
    # unrealistically fast).
    for node in range(nodes):
        while rng.random() < 0.6:
            out[node].append(rng.randrange(nodes))
            break
    return out


class PageRank(Workload):
    name = "pagerank"
    description = "graph vertex ranking"
    systems = ("A",)
    cloc = 157
    ent_changes = 49

    workload_kind = "graph (number nodes)"
    workload_labels = {ES: "cnr-2000 (325557)", MG: "eswiki-2013 (972933)",
                       FT: "frwiki-2013 (1352053)"}
    qos_kind = "minimum change"
    qos_labels = {ES: "0.01", MG: "0.001", FT: "0.0001"}

    # One counted op = one edge visit on the full-size graph.
    work_scale = 1.5e-2

    supports_temperature = True
    e3_units = 240

    _SIZES = {ES: 325_557, MG: 972_933, FT: 1_352_053}
    _QOS = {ES: 0.01, MG: 0.001, FT: 0.0001}

    def task_size(self, workload_mode: str) -> float:
        return self._SIZES[workload_mode]

    def attribute(self, size: float) -> str:
        if size > 1_000_000:
            return FT
        if size > 400_000:
            return MG
        return ES

    def qos_value(self, qos_mode: str) -> float:
        return self._QOS[qos_mode]

    def execute(self, platform, size: float, qos: float,
                seed: int = 0) -> TaskResult:
        nodes = max(10, int(size / _SCALE))
        graph = _build_graph(nodes, seed)
        edges = sum(len(adj) for adj in graph)
        damping = 0.93
        rank = [1.0 / nodes] * nodes
        threshold = float(qos)
        iterations = 0
        delta = 1.0
        # Loading the (full-size) edge list.
        platform.io_bytes(size * 8.0)
        while delta > threshold and iterations < 200:
            fresh = [(1.0 - damping) / nodes] * nodes
            for node, adj in enumerate(graph):
                if not adj:
                    continue
                share = damping * rank[node] / len(adj)
                for target in adj:
                    fresh[target] += share
            delta = sum(abs(a - b) for a, b in zip(fresh, rank))
            rank = fresh
            iterations += 1
            # Charge one full-size sweep: scale the counted edges back up.
            self.charge(platform, edges * _SCALE)
        top = max(range(nodes), key=rank.__getitem__)
        return TaskResult(units_done=iterations,
                          detail={"iterations": float(iterations),
                                  "delta": delta,
                                  "top_rank": rank[top]})

    #: Cached unit-of-work graph (the E3 run sweeps one graph).
    _unit_graph: "List[List[int]]" = None

    def execute_unit(self, platform, qos: float, seed: int = 0) -> None:
        """E3 unit: one power-iteration sweep over a graph shard."""
        nodes = max(10, int(self._SIZES[FT] / _SCALE / 16))
        if type(self)._unit_graph is None or \
                len(type(self)._unit_graph) != nodes:
            type(self)._unit_graph = _build_graph(nodes, 7)
        graph = type(self)._unit_graph
        edges = sum(len(adj) for adj in graph)
        rank = [1.0 / nodes] * nodes
        fresh = [0.15 / nodes] * nodes
        for node, adj in enumerate(graph):
            if not adj:
                continue
            share = 0.85 * rank[node] / len(adj)
            for target in adj:
                fresh[target] += share
        self.charge(platform, edges * _SCALE * 4.0)
