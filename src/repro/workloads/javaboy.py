"""javaboy: a Game Boy emulator on the Pi (System B).

The kernel is a genuine tiny 8-bit virtual machine: a deterministic
synthetic ROM of simple opcodes (ALU, load/store, conditional jumps)
is executed frame by frame, and each frame's 160x144 tile output is
blitted at the QoS screen magnification (2x/4x/6x — blit cost scales
with the square).  The workload mode is attributed by ROM size
(64 KB / 512 KB / 1 MB), which controls how much of the ROM each
frame's interpreter loop walks.  Time-fixed two-minute run.
"""

from __future__ import annotations

import random
from typing import List

from repro.workloads.base import ES, FT, MG, TaskResult, Workload

RUN_SECONDS = 120.0

#: Emulated frames are batched per simulated second.
_FRAMES_PER_BATCH = 60

#: Native Game Boy screen.
_SCREEN_PIXELS = 160 * 144

_OP_ADD, _OP_SUB, _OP_LD, _OP_ST, _OP_JNZ, _OP_NOP = range(6)


def _gen_rom(size_bytes: int, seed: int) -> List[int]:
    rng = random.Random(seed * 523 + size_bytes)
    # One synthetic instruction per 16 ROM bytes keeps runs fast while
    # the charge model accounts for the full ROM walk.
    return [rng.randrange(6) for _ in range(max(64, size_bytes // 16))]


class _Vm:
    """The 8-bit core: 4 registers, 256 bytes of RAM."""

    def __init__(self, rom: List[int]) -> None:
        self.rom = rom
        self.regs = [0, 1, 2, 3]
        self.ram = [0] * 256
        self.pc = 0

    def run(self, instructions: int) -> int:
        executed = 0
        rom = self.rom
        regs = self.regs
        ram = self.ram
        size = len(rom)
        pc = self.pc
        for _ in range(instructions):
            op = rom[pc]
            if op == _OP_ADD:
                regs[pc & 3] = (regs[pc & 3] + regs[(pc + 1) & 3]) & 0xFF
            elif op == _OP_SUB:
                regs[pc & 3] = (regs[pc & 3] - 1) & 0xFF
            elif op == _OP_LD:
                regs[pc & 3] = ram[regs[(pc + 1) & 3]]
            elif op == _OP_ST:
                ram[regs[(pc + 1) & 3]] = regs[pc & 3]
            elif op == _OP_JNZ and regs[pc & 3] != 0:
                pc = (pc + regs[(pc + 1) & 3]) % size
                executed += 1
                continue
            pc = (pc + 1) % size
            executed += 1
        self.pc = pc
        return executed


class JavaBoy(Workload):
    name = "javaboy"
    description = "emulation"
    systems = ("B",)
    cloc = 6492
    ent_changes = 38

    workload_kind = "ROM size"
    workload_labels = {ES: "64KB", MG: "512KB", FT: "1MB"}
    qos_kind = "screen magnification"
    qos_labels = {ES: "2x", MG: "4x", FT: "6x"}

    # One counted op = one emulated cycle / blitted pixel.
    work_scale = 4.0e-6

    time_fixed = True

    _SIZES = {ES: 64 << 10, MG: 512 << 10, FT: 1 << 20}
    _QOS = {ES: 2.0, MG: 4.0, FT: 6.0}

    def task_size(self, workload_mode: str) -> float:
        return self._SIZES[workload_mode]

    def attribute(self, size: float) -> str:
        if size > (700 << 10):
            return FT
        if size > (128 << 10):
            return MG
        return ES

    def qos_value(self, qos_mode: str) -> float:
        return self._QOS[qos_mode]

    def execute(self, platform, size: float, qos: float,
                seed: int = 0) -> TaskResult:
        rom = _gen_rom(int(size), seed)
        vm = _Vm(rom)
        magnification = max(1.0, float(qos))
        blit_pixels = _SCREEN_PIXELS * magnification * magnification
        start = platform.now()
        frames = 0
        executed = 0
        batches = int(RUN_SECONDS)
        # Per frame the emulator walks a slice of the ROM proportional
        # to its size (bank switching through the whole cartridge).
        per_frame_instr = max(60, len(rom) // 24)
        for _ in range(batches):
            batch_start = platform.now()
            executed += vm.run(per_frame_instr)
            # Charge a full second of emulation: 60 frames of CPU plus
            # the magnified blits.
            self.charge(platform,
                        per_frame_instr * _FRAMES_PER_BATCH * 12.0)
            self.charge(platform, blit_pixels * _FRAMES_PER_BATCH * 0.15)
            frames += _FRAMES_PER_BATCH
            busy = platform.now() - batch_start
            idle = 1.0 - busy
            if idle > 0:
                platform.sleep(idle)
        return TaskResult(units_done=frames,
                          detail={"instructions": float(executed),
                                  "magnification": magnification})
