"""Common structure for the paper's 15 benchmark applications.

Every benchmark (Figure 6) is modelled as a :class:`Workload`: a real —
if miniature — implementation of the application's energy-relevant
kernel, parameterized exactly as Figure 7 parameterizes it:

* a *workload attribution*: the input-size knob whose thresholds the
  task attributor uses to pick the workload mode (columns 2-5);
* a *QoS adjustment*: the quality-of-service knob selected per mode
  (columns 6-9).

Kernels perform genuine computation on scaled-down inputs and charge
the platform simulator ``work_scale`` abstract units per counted
operation, so System-A energy magnitudes land in the paper's ranges
while wall-clock cost stays laptop-friendly.  The scaling is uniform
within a benchmark, so every *relative* comparison (the quantity all
the paper's figures report) is preserved.

The E1/E2 programs themselves (agents, tasks, snapshots, mode cases)
are assembled generically in :mod:`repro.eval`; this module only knows
about inputs, knobs, and kernels.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.modes import Mode, ModeLattice

#: Battery-mode names, least to greatest.
ES, MG, FT = "energy_saver", "managed", "full_throttle"
BATTERY_MODES = (ES, MG, FT)

#: Temperature-mode names, least to greatest (cooler = greater).
OVERHEATING, HOT, SAFE = "overheating", "hot", "safe"
THERMAL_MODES = (OVERHEATING, HOT, SAFE)

#: The declared battery lattice (``es <= mg <= ft``) — the same chain
#: :meth:`repro.runtime.embedded.EntRuntime.standard` checks against.
BATTERY_LATTICE = ModeLattice.linear(list(BATTERY_MODES))

#: The declared thermal lattice (``overheating <= hot <= safe``).
THERMAL_LATTICE = ModeLattice.linear(list(THERMAL_MODES))


def mode_leq(lesser, greater, lattice: ModeLattice = None) -> bool:
    """``lesser <= greater`` in a declared mode lattice.

    Episode classification (waterfall violations, monotone drain
    trajectories) must use the *same* order the runtime enforces, so
    this helper derives the comparison from :meth:`ModeLattice.leq`
    over the declared lattice (default: :data:`BATTERY_LATTICE`)
    instead of a hard-coded rank table.  Accepts mode names or
    :class:`Mode` instances.
    """
    lattice = lattice if lattice is not None else BATTERY_LATTICE
    lesser = lesser if isinstance(lesser, Mode) else Mode(str(lesser))
    greater = greater if isinstance(greater, Mode) else Mode(str(greater))
    return lattice.leq(lesser, greater)


@dataclass
class TaskResult:
    """Outcome of one kernel execution."""

    #: Application-specific progress metric (pixels, pages, ranks, ...).
    units_done: float = 0.0
    #: Free-form quality metrics for QoS reporting.
    detail: Dict[str, float] = field(default_factory=dict)


class Workload(abc.ABC):
    """One benchmark application.

    Subclasses define the Figure 6/7 metadata and the kernel.  The
    ``workload_settings`` map gives each battery mode's input-size
    parameter; ``attribute`` must recover the mode from such a
    parameter (the task attributor's thresholds).  ``qos_settings``
    maps each mode to its QoS knob value.
    """

    #: Benchmark name (Figure 6, column 1).
    name: str = ""
    #: One-line description (Figure 6, column 2).
    description: str = ""
    #: Systems the benchmark runs on (Figure 6, column 3).
    systems: Tuple[str, ...] = ("A",)
    #: Original code size and the ENT diff size (Figure 6).
    cloc: int = 0
    ent_changes: int = 0

    #: Figure 7: workload attribution label and per-mode settings.
    workload_kind: str = ""
    workload_labels: Dict[str, str] = {}
    #: Figure 7: QoS knob label and per-mode settings.
    qos_kind: str = ""
    qos_labels: Dict[str, str] = {}

    #: Abstract work units charged per counted kernel operation.
    work_scale: float = 1.0

    #: True for workloads that run for a fixed duration (Pi and Android
    #: benchmarks): savings come from power, not time (section 6.2).
    time_fixed: bool = False

    #: E3 support: number of work units and whether the benchmark has a
    #: distinct unit-of-work suitable for temperature casing.
    supports_temperature: bool = False
    e3_units: int = 40

    # ------------------------------------------------------------------

    @abc.abstractmethod
    def task_size(self, workload_mode: str) -> float:
        """The Figure 7 input-size parameter for a workload mode."""

    @abc.abstractmethod
    def attribute(self, size: float) -> str:
        """The task attributor: classify an input size into a mode.

        Must satisfy ``attribute(task_size(m)) == m`` for every mode.
        """

    @abc.abstractmethod
    def qos_value(self, qos_mode: str) -> float:
        """The Figure 7 QoS knob value for a mode."""

    @abc.abstractmethod
    def execute(self, platform, size: float, qos: float,
                seed: int = 0) -> TaskResult:
        """Run the kernel: real computation plus platform accounting."""

    def execute_unit(self, platform, qos: float, seed: int = 0) -> None:
        """One E3 unit of work (only for ``supports_temperature``)."""
        raise NotImplementedError(
            f"{self.name} has no unit-of-work decomposition")

    # ------------------------------------------------------------------

    def charge(self, platform, operations: float) -> None:
        """Charge ``operations`` counted kernel operations as CPU work."""
        if operations > 0:
            platform.cpu_work(operations * self.work_scale)

    def default_qos_mode(self) -> str:
        """E1 runs at the 'default' QoS (the managed column of Fig 7)."""
        return MG

    def describe(self) -> Dict[str, str]:
        return {
            "name": self.name,
            "description": self.description,
            "systems": ",".join(self.systems),
            "cloc": str(self.cloc),
            "ent_changes": str(self.ent_changes),
            "workload": self.workload_kind,
            "qos": self.qos_kind,
        }


def battery_boot_mode(battery_fraction: float) -> str:
    """The paper's boot-mode attributor thresholds (section 6.1).

    Boot modes energy_saver / managed / full_throttle are set at
    battery levels of 40%, 70% and 90% respectively; the attributor's
    cutoffs are 50% and 75% (Listing 1).
    """
    if battery_fraction >= 0.75:
        return FT
    if battery_fraction >= 0.50:
        return MG
    return ES


def temperature_boot_mode(celsius: float) -> str:
    """E3 thresholds: safe below 60C, hot 60-65C, overheating above."""
    if celsius < 60.0:
        return SAFE
    if celsius <= 65.0:
        return HOT
    return OVERHEATING


#: E3 sleep intervals (milliseconds) per thermal mode (section 6.2).
E3_SLEEP_MS = {OVERHEATING: 1000.0, HOT: 250.0, SAFE: 0.0}

#: Battery levels that pin each boot mode (section 6.1).
BOOT_BATTERY_LEVELS = {ES: 0.40, MG: 0.70, FT: 0.90}
