"""Registry of the paper's 15 benchmarks (Figure 6)."""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.base import Workload
from repro.workloads.batik import Batik
from repro.workloads.camera import Camera
from repro.workloads.crypto import Crypto
from repro.workloads.duckduckgo import DuckDuckGo
from repro.workloads.findbugs import FindBugs
from repro.workloads.javaboy import JavaBoy
from repro.workloads.jspider import JSpider
from repro.workloads.jython import Jython
from repro.workloads.materiallife import MaterialLife
from repro.workloads.newpipe import NewPipe
from repro.workloads.pagerank import PageRank
from repro.workloads.soundrecorder import SoundRecorder
from repro.workloads.sunflow import Sunflow
from repro.workloads.video import Video
from repro.workloads.xalan import Xalan

#: Figure 6 order.
ALL_WORKLOADS: List[Workload] = [
    Crypto(),
    FindBugs(),
    JSpider(),
    Jython(),
    PageRank(),
    Sunflow(),
    Xalan(),
    Camera(),
    Video(),
    JavaBoy(),
    Batik(),
    NewPipe(),
    DuckDuckGo(),
    SoundRecorder(),
    MaterialLife(),
]

_BY_NAME: Dict[str, Workload] = {w.name: w for w in ALL_WORKLOADS}


def get_workload(name: str) -> Workload:
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown workload {name!r}; known: {known}") \
            from None


def workloads_for_system(system: str) -> List[Workload]:
    return [w for w in ALL_WORKLOADS if system in w.systems]


#: Benchmarks evaluated in the battery experiments (Figures 8-10).
E1_E2_BENCHMARKS = {
    "A": ["sunflow", "jspider", "pagerank", "findbugs", "crypto", "batik"],
    "B": ["sunflow", "crypto", "camera", "video", "javaboy"],
    "C": ["newpipe", "duckduckgo", "soundrecorder", "materiallife"],
}

#: Benchmarks in the temperature-casing experiment (Figure 11).
E3_BENCHMARKS = ["sunflow", "jython", "xalan", "findbugs", "pagerank"]
