"""jython: a Python-to-JVM compiler (DaCapo).

The kernel is a genuine miniature compiler front end: it generates
deterministic Python-like modules, tokenizes them, parses them into an
AST (expressions with precedence, assignments, ``if``/``while``
blocks), and emits a stack bytecode.  jython participates in Figure 6
(overhead) and the E3 temperature-casing runs (one compiled module is
the unit of work); the E1/E2 battery experiments use size knobs too so
the benchmark is runnable everywhere.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.workloads.base import ES, FT, MG, TaskResult, Workload

_SCALE = 25.0


def _gen_module(rng: random.Random, statements: int) -> str:
    lines: List[str] = []
    names = ["a", "b", "c", "total", "x", "y"]
    for index in range(statements):
        name = names[index % len(names)]
        left = names[rng.randrange(len(names))]
        right = rng.randrange(100)
        roll = rng.random()
        if roll < 0.6:
            lines.append(f"{name} = {left} + {right} * 2 - 1")
        elif roll < 0.8:
            lines.append(f"if {left} < {right} : {name} = {right}")
        else:
            lines.append(f"while {name} < {right} : {name} = {name} + 1")
    return "\n".join(lines)


def _tokenize(source: str) -> List[str]:
    tokens: List[str] = []
    for raw in source.replace("\n", " ; ").split():
        tokens.append(raw)
    return tokens


class _Parser:
    """Statement/expression parser emitting stack bytecode."""

    def __init__(self, tokens: List[str]) -> None:
        self.tokens = tokens
        self.pos = 0
        self.code: List[Tuple[str, str]] = []

    def peek(self) -> str:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else ""

    def take(self) -> str:
        token = self.peek()
        self.pos += 1
        return token

    def parse(self) -> List[Tuple[str, str]]:
        while self.pos < len(self.tokens):
            self.statement()
        return self.code

    def statement(self) -> None:
        token = self.take()
        if token == ";" or not token:
            return
        if token == "if":
            self.expression()
            self.code.append(("jmp_false", "end"))
            assert self.take() == ":"
            self.statement()
            return
        if token == "while":
            self.expression()
            self.code.append(("jmp_false", "end"))
            assert self.take() == ":"
            self.statement()
            self.code.append(("jmp", "loop"))
            return
        # assignment: NAME = expr
        name = token
        assert self.take() == "="
        self.expression()
        self.code.append(("store", name))

    def expression(self) -> None:
        self.term()
        while self.peek() in ("+", "-", "<", ">"):
            op = self.take()
            self.term()
            self.code.append(("binop", op))

    def term(self) -> None:
        self.factor()
        while self.peek() in ("*", "/"):
            op = self.take()
            self.factor()
            self.code.append(("binop", op))

    def factor(self) -> None:
        token = self.take()
        if token.isdigit():
            self.code.append(("const", token))
        else:
            self.code.append(("load", token))


class Jython(Workload):
    name = "jython"
    description = "compiler"
    systems = ("A",)
    cloc = 215_749
    ent_changes = 33

    workload_kind = "source modules"
    workload_labels = {ES: "400", MG: "1200", FT: "2400"}
    qos_kind = "optimization passes"
    qos_labels = {ES: "0", MG: "1", FT: "2"}

    # One counted op = one token/instruction handled, full corpus.
    work_scale = 2.6e-2

    supports_temperature = True
    e3_units = 240

    _SIZES = {ES: 400, MG: 1200, FT: 2400}
    _QOS = {ES: 0, MG: 1, FT: 2}

    def task_size(self, workload_mode: str) -> float:
        return self._SIZES[workload_mode]

    def attribute(self, size: float) -> str:
        if size > 1600:
            return FT
        if size > 700:
            return MG
        return ES

    def qos_value(self, qos_mode: str) -> float:
        return self._QOS[qos_mode]

    def execute(self, platform, size: float, qos: float,
                seed: int = 0) -> TaskResult:
        modules = max(1, int(size / _SCALE))
        passes = int(qos)
        rng = random.Random(seed * 131 + modules)
        handled = 0
        emitted = 0
        platform.io_bytes(size * 900.0)  # read the sources
        for _ in range(modules):
            source = _gen_module(rng, 12 + rng.randrange(10))
            tokens = _tokenize(source)
            code = _Parser(tokens).parse()
            handled += len(tokens) + len(code)
            for _ in range(passes):
                # Peephole pass: constant folding over const/const/binop.
                folded: List[Tuple[str, str]] = []
                for instr in code:
                    if (instr[0] == "binop" and len(folded) >= 2
                            and folded[-1][0] == "const"
                            and folded[-2][0] == "const"):
                        rhs = int(folded.pop()[1])
                        lhs = int(folded.pop()[1])
                        value = lhs + rhs if instr[1] == "+" else lhs
                        folded.append(("const", str(value)))
                    else:
                        folded.append(instr)
                handled += len(code)
                code = folded
            emitted += len(code)
        self.charge(platform, handled * _SCALE)
        platform.io_bytes(emitted * _SCALE * 16.0)  # write class files
        return TaskResult(units_done=modules,
                          detail={"instructions": float(emitted)})

    def execute_unit(self, platform, qos: float, seed: int = 0) -> None:
        """E3 unit: compile one batch of modules."""
        self.execute(platform, self._SIZES[FT] / 3.6, qos, seed=seed)
