"""batik: an SVG rasterizer (DaCapo).

The kernel rasterizes a deterministic synthetic vector document —
circles, rectangles and triangles whose count tracks the input file
size (16 KB / 261 KB / 2 MB) — onto a raster grid whose resolution is
the QoS knob (512x512 / 1024x1024 / 2048x2048; we rasterize a 1/8-scale
grid and charge full-size coverage-test cost).  batik is the paper's
lowest-energy System-A benchmark (< 10 J) and exhibits the highest
relative deviation, which the harness reproduces.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.workloads.base import ES, FT, MG, TaskResult, Workload

#: Linear raster scale (areas scale by the square).
_GRID_SCALE = 8.0

#: Approximate bytes of SVG text per shape.
_BYTES_PER_SHAPE = 160.0

_Shape = Tuple[str, float, float, float]  # kind, cx, cy, extent


def _gen_document(file_bytes: float, seed: int) -> List[_Shape]:
    count = max(1, int(file_bytes / _BYTES_PER_SHAPE / 16.0))
    rng = random.Random(seed * 97 + count)
    kinds = ("circle", "rect", "tri")
    return [(kinds[rng.randrange(3)], rng.random(), rng.random(),
             0.02 + rng.random() * 0.12) for _ in range(count)]


def _covers(shape: _Shape, x: float, y: float) -> bool:
    kind, cx, cy, extent = shape
    dx, dy = x - cx, y - cy
    if kind == "circle":
        return dx * dx + dy * dy <= extent * extent
    if kind == "rect":
        return abs(dx) <= extent and abs(dy) <= extent * 0.7
    # Axis-aligned isoceles triangle.
    return 0.0 <= dy <= extent and abs(dx) <= (extent - dy) * 0.8


class Batik(Workload):
    name = "batik"
    description = "rasterizer"
    systems = ("A",)
    cloc = 179_284
    ent_changes = 225

    workload_kind = "file size"
    workload_labels = {ES: "16KB", MG: "261KB", FT: "2MB"}
    qos_kind = "image resolution"
    qos_labels = {ES: "512x512", MG: "1024x1024", FT: "2048x2048"}

    # One counted op = one full-size coverage test; batik is tiny
    # (< 10 J in the paper), so the scale is small.
    work_scale = 8.0e-6

    _SIZES = {ES: 16 << 10, MG: 261 << 10, FT: 2 << 20}
    _QOS = {ES: 512, MG: 1024, FT: 2048}

    def task_size(self, workload_mode: str) -> float:
        return self._SIZES[workload_mode]

    def attribute(self, size: float) -> str:
        if size > (1 << 20):
            return FT
        if size > (100 << 10):
            return MG
        return ES

    def qos_value(self, qos_mode: str) -> float:
        return self._QOS[qos_mode]

    def execute(self, platform, size: float, qos: float,
                seed: int = 0) -> TaskResult:
        shapes = _gen_document(size, seed)
        resolution = int(qos)
        grid = max(8, int(resolution / _GRID_SCALE))
        platform.io_bytes(size)  # read the SVG source
        # XML parse + CSS/style resolution: proportional to file size
        # and independent of the output resolution.
        self.charge(platform, size * 117.0)
        covered = 0
        tests = 0
        step = 1.0 / grid
        for row in range(grid):
            y = (row + 0.5) * step
            for col in range(grid):
                x = (col + 0.5) * step
                for shape in shapes:
                    tests += 1
                    if _covers(shape, x, y):
                        covered += 1
                        break
        # Full-size tests = scaled tests * (grid scale)^2.
        self.charge(platform, tests * _GRID_SCALE * _GRID_SCALE)
        platform.io_bytes(resolution * resolution * 4.0)  # write the PNG
        return TaskResult(units_done=grid * grid,
                          detail={"coverage": covered / (grid * grid),
                                  "shapes": float(len(shapes))})
