"""video: Raspberry Pi continuous video recording (System B).

A fixed two-minute recording: every frame is captured and encoded
(work proportional to pixels) and the encoded stream is written out.
The workload mode is attributed by video resolution (480p/720p/1080p)
and the QoS knob is the frame rate (10/20/30 fps).  Like camera, the
run is time-fixed: a lower frame rate means more idle time per second,
letting the ondemand governor drop the Pi to a lower-power state —
energy savings come from *power*, exactly as section 6.2 discusses.
"""

from __future__ import annotations

from repro.workloads.base import ES, FT, MG, TaskResult, Workload

RUN_SECONDS = 120.0

#: Encoder macro-step: frames are batched per half-second of capture.
_BATCH_S = 0.5


class Video(Workload):
    name = "video"
    description = "video recording"
    systems = ("B",)
    cloc = 115
    ent_changes = 40

    workload_kind = "video resolution"
    workload_labels = {ES: "480p", MG: "720p", FT: "1080p"}
    qos_kind = "frames per second"
    qos_labels = {ES: "10", MG: "20", FT: "30"}

    # One counted op = one pixel encoded (H264-ish cost folded in).
    work_scale = 5.2e-7

    time_fixed = True

    _SIZES = {ES: 854 * 480, MG: 1280 * 720, FT: 1920 * 1080}
    _QOS = {ES: 10.0, MG: 20.0, FT: 30.0}

    def task_size(self, workload_mode: str) -> float:
        return self._SIZES[workload_mode]

    def attribute(self, size: float) -> str:
        if size > 1_500_000:
            return FT
        if size > 500_000:
            return MG
        return ES

    def qos_value(self, qos_mode: str) -> float:
        return self._QOS[qos_mode]

    def execute(self, platform, size: float, qos: float,
                seed: int = 0) -> TaskResult:
        pixels = max(1.0, size)
        fps = max(1.0, float(qos))
        start = platform.now()
        frames = 0
        written = 0.0
        batches = int(RUN_SECONDS / _BATCH_S)
        for _ in range(batches):
            batch_start = platform.now()
            batch_frames = fps * _BATCH_S
            # Motion estimation + entropy coding per frame.
            self.charge(platform, pixels * 14.0 * batch_frames)
            stream_bytes = pixels * 0.06 * batch_frames
            platform.io_bytes(stream_bytes)
            written += stream_bytes
            frames += int(batch_frames)
            busy = platform.now() - batch_start
            idle = _BATCH_S - busy
            if idle > 0:
                platform.sleep(idle)
        return TaskResult(units_done=frames,
                          detail={"stream_bytes": written, "fps": fps})
