"""xalan: an XSLT-style XML transformer (DaCapo).

The kernel parses deterministic synthetic XML documents into an element
tree, applies template rules (tag renaming, attribute filtering,
subtree flattening), and serializes the result — the parse/transform/
serialize profile of the real xalan.  Used for Figure 6 overhead and
the E3 temperature-casing runs (one transformed document is the
paper's example of a unit of work).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.workloads.base import ES, FT, MG, TaskResult, Workload

_SCALE = 12.0


@dataclass
class _Element:
    tag: str
    attrs: Dict[str, str] = field(default_factory=dict)
    children: List["_Element"] = field(default_factory=list)
    text: str = ""


_TAGS = ("row", "entry", "item", "meta", "cell", "group")


def _gen_document(rng: random.Random, depth: int = 3,
                  fanout: int = 5) -> _Element:
    root = _Element("doc")
    stack = [(root, 0)]
    while stack:
        node, level = stack.pop()
        if level >= depth:
            node.text = f"v{rng.randrange(1_000)}"
            continue
        for _ in range(1 + rng.randrange(fanout)):
            child = _Element(_TAGS[rng.randrange(len(_TAGS))],
                             {"id": str(rng.randrange(10_000))})
            node.children.append(child)
            stack.append((child, level + 1))
    return root


def _serialize(node: _Element, out: List[str]) -> int:
    """Render to XML text, returning the node count."""
    attrs = "".join(f' {k}="{v}"' for k, v in node.attrs.items())
    out.append(f"<{node.tag}{attrs}>")
    count = 1
    if node.text:
        out.append(node.text)
    for child in node.children:
        count += _serialize(child, out)
    out.append(f"</{node.tag}>")
    return count


def _parse(text: str) -> int:
    """A real tag-level XML scanner (validates nesting); returns the
    number of elements scanned."""
    stack: List[str] = []
    count = 0
    index = 0
    while index < len(text):
        if text[index] != "<":
            index += 1
            continue
        end = text.index(">", index)
        token = text[index + 1:end]
        if token.startswith("/"):
            opened = stack.pop()
            assert opened == token[1:], "malformed XML"
        else:
            tag = token.split(" ", 1)[0]
            stack.append(tag)
            count += 1
        index = end + 1
    assert not stack, "unbalanced XML"
    return count


def _transform(node: _Element) -> int:
    """Apply template rules in place; returns nodes touched."""
    touched = 1
    if node.tag == "entry":
        node.tag = "item"
    node.attrs = {k: v for k, v in node.attrs.items() if k != "id"}
    flattened: List[_Element] = []
    for child in node.children:
        touched += _transform(child)
        if child.tag == "meta" and not child.children:
            continue  # filter empty metadata
        if child.tag == "group":
            flattened.extend(child.children)  # flatten groups
        else:
            flattened.append(child)
    node.children = flattened
    return touched


class Xalan(Workload):
    name = "xalan"
    description = "transformer"
    systems = ("A",)
    cloc = 169_927
    ent_changes = 33

    workload_kind = "XML documents"
    workload_labels = {ES: "250", MG: "800", FT: "1600"}
    qos_kind = "template passes"
    qos_labels = {ES: "1", MG: "2", FT: "3"}

    # One counted op = one element visit, full corpus.
    work_scale = 2.3e-2

    supports_temperature = True
    e3_units = 240

    _SIZES = {ES: 250, MG: 800, FT: 1600}
    _QOS = {ES: 1, MG: 2, FT: 3}

    def task_size(self, workload_mode: str) -> float:
        return self._SIZES[workload_mode]

    def attribute(self, size: float) -> str:
        if size > 1000:
            return FT
        if size > 450:
            return MG
        return ES

    def qos_value(self, qos_mode: str) -> float:
        return self._QOS[qos_mode]

    def execute(self, platform, size: float, qos: float,
                seed: int = 0) -> TaskResult:
        documents = max(1, int(size / _SCALE))
        passes = max(1, int(qos))
        rng = random.Random(seed * 313 + documents)
        visited = 0
        out_bytes = 0
        for _ in range(documents):
            doc = _gen_document(rng)
            text_parts: List[str] = []
            nodes = _serialize(doc, text_parts)
            text = "".join(text_parts)
            platform.io_bytes(len(text))
            visited += _parse(text)
            for _ in range(passes):
                visited += _transform(doc)
            rendered: List[str] = []
            _serialize(doc, rendered)
            out_bytes += sum(len(part) for part in rendered)
            visited += nodes
        self.charge(platform, visited * _SCALE * 3.0)
        platform.io_bytes(out_bytes * _SCALE)
        return TaskResult(units_done=documents,
                          detail={"elements": float(visited)})

    def execute_unit(self, platform, qos: float, seed: int = 0) -> None:
        """E3 unit: transform one batch of documents (one 'XML file')."""
        self.execute(platform, self._SIZES[FT] / 8.0, qos, seed=seed)
