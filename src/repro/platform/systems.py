"""The paper's three evaluation platforms, as simulators.

Each platform composes the clock, battery, CPU/DVFS, thermal and energy-
ledger models and exposes the runtime interface the ENT interpreter and
the embedded runtime expect:

    battery_fraction() cpu_temperature() cpu_work(units)
    io_bytes(n) net_bytes(n) sleep(seconds) now()

* :class:`SystemA` — Intel i5 laptop, 4 GB RAM, Ubuntu 14.04, measured
  via jRAPL (CPU package energy only).
* :class:`SystemB` — Raspberry Pi 2 Model B with keyboard/mouse/HDMI/
  ethernet attached, measured at the wall by a Watts Up? Pro; the
  battery level is *simulated*, as in the paper.
* :class:`SystemC` — Nexus 5X running Android 6.0/ART, measured through
  BatteryManager; the noisiest platform (RERAN touch replay, radios).

Run-to-run variation is modelled with a seeded multiplicative speed
jitter whose magnitude reproduces the paper's relative-standard-
deviation bands (A and B within 2-3%, C visibly higher).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.obs.events import PlatformReadEvent
from repro.obs.tracer import NULL_TRACER
from repro.platform.battery import Battery
from repro.platform.clock import SimClock
from repro.platform.cpu import (INTEL_I5, PI2_BCM2836, SNAPDRAGON_808, Cpu,
                                CpuSpec)
from repro.platform.meter import (BatteryManagerMeter, EnergyLedger, Meter,
                                  RaplMeter, WattsUpMeter)
from repro.platform.thermal import ThermalModel

__all__ = ["Platform", "PlatformConfig", "PlatformState", "SystemA",
           "SystemB", "SystemC", "make_platform", "platform_from_config"]

#: Meter classes by the symbolic name :class:`PlatformConfig` carries
#: (the config stays a pure-data struct; classes are looked up here).
_METERS = {
    "rapl": RaplMeter,
    "wattsup": WattsUpMeter,
    "battery_manager": BatteryManagerMeter,
}
_METER_NAMES = {cls: name for name, cls in _METERS.items()}


@dataclass(frozen=True)
class PlatformConfig:
    """The immutable half of a platform: hardware constants only.

    Everything here is shared by *all* simulated devices of one system
    — the fleet layer builds one config per system letter and reuses
    it across millions of devices, while the mutable half travels as a
    :class:`PlatformState`.  The struct is hashable (usable as a cache
    key) and picklable (plain floats, strings, and a frozen
    :class:`~repro.platform.cpu.CpuSpec`).
    """

    name: str
    cpu: CpuSpec
    governor: str
    meter: str
    peripheral_w: float
    display_w: float
    io_bytes_per_s: float
    io_active_w: float
    net_bytes_per_s: float
    net_active_w: float
    battery_capacity_j: float
    run_jitter_rel: float
    ambient_c: float
    r_th_c_per_w: float
    tau_s: float


@dataclass
class PlatformState:
    """The mutable half of a platform: one device's simulation state.

    Small, picklable, and complete: restoring a state into a platform
    built from the same :class:`PlatformConfig` reproduces the exact
    float-for-float stepping of the platform the state was captured
    from (the property suite proves it).  The temperature trace and
    tracer binding are observation, not simulation, and are not part
    of the state — restore resets the trace at the restored instant.
    """

    now_s: float
    battery_capacity_j: float
    battery_charge_j: float
    temp_c: float
    governor_util: float
    cpu_level: int
    total_work_units: float
    speed_factor: float
    sleep_total_s: float
    #: Component joules in :data:`EnergyLedger.COMPONENTS` order.
    ledger: Tuple[float, ...]
    #: ``random.Random.getstate()`` of the platform RNG.
    rng_state: object


class Platform:
    """Base simulated platform; subclasses set the hardware constants."""

    name = "generic"
    meter_class = RaplMeter

    #: Constant board power besides the CPU (peripherals), watts.
    peripheral_w = 0.0
    #: Display power while the device is on, watts.
    display_w = 0.0
    #: Storage: throughput (bytes/s) and active power (watts).
    io_bytes_per_s = 2.0e8
    io_active_w = 0.5
    #: Network: throughput (bytes/s) and active power (watts).
    net_bytes_per_s = 5.0e6
    net_active_w = 1.0
    #: Battery capacity in joules.
    battery_capacity_j = 1.8e5
    #: Per-run relative speed jitter (1 sigma).
    run_jitter_rel = 0.01

    def __init__(self, cpu_spec: Optional[CpuSpec] = None,
                 governor: str = "ondemand", seed: int = 0,
                 battery_fraction: float = 1.0) -> None:
        self.governor_name = governor
        self.rng = random.Random(seed)
        self.clock = SimClock()
        self.cpu = Cpu(cpu_spec or INTEL_I5, governor=governor)
        self.thermal = ThermalModel()
        self.battery = Battery(self.battery_capacity_j,
                               fraction=battery_fraction)
        self.ledger = EnergyLedger()
        # One multiplicative speed factor per run: models JIT state,
        # scheduling, ambient variation.
        self._speed_factor = max(
            0.5, 1.0 + self.rng.gauss(0.0, self.run_jitter_rel))
        self.sleep_total_s = 0.0
        #: Temperature trace: (time, celsius) samples appended on
        #: every activity, consumed by the E3 harness.
        self.temperature_trace = [(0.0, self.thermal.temperature_c)]
        #: Observability hook; see :meth:`set_tracer`.
        self.tracer = NULL_TRACER

    def set_tracer(self, tracer) -> None:
        """Attach a tracer: signal reads and meter windows are recorded,
        and the tracer's clock becomes this platform's sim clock."""
        self.tracer = tracer
        tracer.bind_platform(self)

    # ------------------------------------------------------------------
    # Interpreter / embedded-runtime interface

    def battery_fraction(self) -> float:
        fraction = self.battery.fraction(self.clock.now)
        if self.tracer.enabled:
            self.tracer.emit(PlatformReadEvent(
                ts=self.clock.now, signal="battery", value=fraction))
        return fraction

    def cpu_temperature(self) -> float:
        if self.tracer.enabled:
            self.tracer.emit(PlatformReadEvent(
                ts=self.clock.now, signal="temperature",
                value=self.thermal.temperature_c))
        return self.thermal.temperature_c

    #: Governor sampling period: large work requests are executed in
    #: slices so the ondemand governor can re-evaluate (as the real
    #: governor does on its sampling interval).
    governor_period_s = 0.1

    def cpu_work(self, units: float) -> None:
        remaining = units
        while remaining > 0:
            level = self.cpu.governor.select_level()
            per_second = (self.cpu.spec.ops_per_second(level) / 1.0e6)
            slice_units = min(remaining,
                              per_second * self.governor_period_s)
            duration, cpu_power = self.cpu.execute(slice_units)
            duration *= self._speed_factor
            self._account(duration, cpu_power=cpu_power)
            remaining -= slice_units

    def io_bytes(self, count: float) -> None:
        if count <= 0:
            return
        duration = count / self.io_bytes_per_s * self._speed_factor
        self._account(duration,
                      cpu_power=self.cpu.spec.idle_power(
                          self.cpu.current_level),
                      extra=("io_j", self.io_active_w))

    def net_bytes(self, count: float) -> None:
        if count <= 0:
            return
        duration = count / self.net_bytes_per_s * self._speed_factor
        self._account(duration,
                      cpu_power=self.cpu.spec.idle_power(
                          self.cpu.current_level),
                      extra=("net_j", self.net_active_w))

    def sleep(self, seconds: float) -> None:
        if seconds <= 0:
            return
        idle_power = self.cpu.idle(seconds)
        self.sleep_total_s += seconds
        self._account(seconds, cpu_power=idle_power)

    def now(self) -> float:
        return self.clock.now

    # ------------------------------------------------------------------

    def _account(self, duration: float, cpu_power: float,
                 extra: Optional[tuple] = None) -> None:
        """Advance time and integrate energy/thermal for one interval."""
        self.ledger.add("cpu_j", cpu_power * duration)
        self.ledger.add("peripheral_j", self.peripheral_w * duration)
        self.ledger.add("display_j", self.display_w * duration)
        total_power = cpu_power + self.peripheral_w + self.display_w
        if extra is not None:
            component, watts = extra
            self.ledger.add(component, watts * duration)
            total_power += watts
        self.thermal.step(cpu_power, duration)
        self.battery.drain(total_power * duration)
        self.clock.advance(duration)
        self.temperature_trace.append(
            (self.clock.now, self.thermal.temperature_c))

    def meter(self) -> Meter:
        return self.meter_class(self.ledger, rng=self.rng,
                                tracer=self.tracer)

    def energy_total_j(self) -> float:
        return self.ledger.total_j

    # ------------------------------------------------------------------
    # Config/state split (fleet-scale device simulation)

    def config(self) -> PlatformConfig:
        """This platform's immutable hardware constants."""
        return PlatformConfig(
            name=self.name, cpu=self.cpu.spec,
            governor=self.governor_name,
            meter=_METER_NAMES[self.meter_class],
            peripheral_w=self.peripheral_w, display_w=self.display_w,
            io_bytes_per_s=self.io_bytes_per_s,
            io_active_w=self.io_active_w,
            net_bytes_per_s=self.net_bytes_per_s,
            net_active_w=self.net_active_w,
            battery_capacity_j=self.battery_capacity_j,
            run_jitter_rel=self.run_jitter_rel,
            ambient_c=self.thermal.ambient_c,
            r_th_c_per_w=self.thermal.r_th,
            tau_s=self.thermal.tau)

    def reset(self, seed: int = 0, battery_fraction: float = 1.0,
              capacity_scale: float = 1.0) -> None:
        """Re-seat this platform as a brand-new device.

        Equivalent to constructing a fresh platform of the same
        configuration with ``seed``/``battery_fraction`` (bit-for-bit:
        the RNG is reseeded and the speed-jitter draw repeated), but
        without rebuilding the component objects — the fleet's batched
        engine reuses one platform per shard this way.
        ``capacity_scale`` shrinks the battery relative to the
        configured capacity (drain profiles use it so a discharge
        fits in an episode).
        """
        self.rng.seed(seed)
        self.clock = SimClock()
        self.cpu = Cpu(self.cpu.spec, governor=self.governor_name)
        self.thermal = ThermalModel(ambient_c=self.thermal.ambient_c,
                                    r_th_c_per_w=self.thermal.r_th,
                                    tau_s=self.thermal.tau)
        self.battery = Battery(self.battery_capacity_j * capacity_scale,
                               fraction=battery_fraction)
        self.ledger = EnergyLedger()
        self._speed_factor = max(
            0.5, 1.0 + self.rng.gauss(0.0, self.run_jitter_rel))
        self.sleep_total_s = 0.0
        self.temperature_trace = [(0.0, self.thermal.temperature_c)]

    def capture_state(self) -> PlatformState:
        """The picklable mutable half of this platform (one device)."""
        governor = self.cpu.governor
        ledger = self.ledger
        return PlatformState(
            now_s=self.clock.now,
            battery_capacity_j=self.battery.capacity_joules,
            battery_charge_j=self.battery.charge_joules,
            temp_c=self.thermal.temperature_c,
            governor_util=governor.utilization,
            cpu_level=self.cpu.current_level,
            total_work_units=self.cpu.total_work_units,
            speed_factor=self._speed_factor,
            sleep_total_s=self.sleep_total_s,
            ledger=tuple(getattr(ledger, component)
                         for component in EnergyLedger.COMPONENTS),
            rng_state=self.rng.getstate())

    def restore_state(self, state: PlatformState) -> None:
        """Seat a captured device state into this platform.

        The platform must have been built from the same
        :class:`PlatformConfig`; subsequent stepping is then identical
        to the platform the state came from.  Scripted battery levels
        are simulation inputs, not state, and are cleared.
        """
        self.clock = SimClock(start=state.now_s)
        self.battery = Battery(state.battery_capacity_j, fraction=1.0)
        self.battery._charge = state.battery_charge_j
        self.thermal.set_temperature(state.temp_c)
        governor = self.cpu.governor
        if hasattr(governor, "_util"):
            governor._util = state.governor_util
        self.cpu.current_level = state.cpu_level
        self.cpu.total_work_units = state.total_work_units
        self._speed_factor = state.speed_factor
        self.sleep_total_s = state.sleep_total_s
        self.ledger = EnergyLedger(*state.ledger)
        self.rng.setstate(state.rng_state)
        self.temperature_trace = [(state.now_s, state.temp_c)]

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} t={self.clock.now:.3f}s "
                f"E={self.ledger.total_j:.2f}J "
                f"T={self.thermal.temperature_c:.1f}C "
                f"bat={self.battery_fraction():.0%}>")


class SystemA(Platform):
    """Intel i5 laptop; energy measured via jRAPL (CPU package only)."""

    name = "A"
    meter_class = RaplMeter
    peripheral_w = 0.0       # RAPL sees only the package
    display_w = 0.0
    io_bytes_per_s = 4.0e8   # SATA SSD
    io_active_w = 1.2
    net_bytes_per_s = 1.2e7  # campus ethernet/wifi
    net_active_w = 1.5
    battery_capacity_j = 1.8e5   # ~50 Wh
    run_jitter_rel = 0.008

    def __init__(self, seed: int = 0, governor: str = "ondemand",
                 battery_fraction: float = 1.0) -> None:
        super().__init__(INTEL_I5, governor=governor, seed=seed,
                         battery_fraction=battery_fraction)


class SystemB(Platform):
    """Raspberry Pi 2 Model B measured at the wall (Watts Up? Pro).

    Keyboard, mouse, HDMI monitor link and ethernet are attached, so a
    constant peripheral draw rides on top of the CPU.  The battery level
    is simulated (the Pi has no battery API), exactly as in the paper.
    """

    name = "B"
    meter_class = WattsUpMeter
    peripheral_w = 1.6
    display_w = 0.0
    io_bytes_per_s = 1.8e7   # SD card
    io_active_w = 0.35
    net_bytes_per_s = 1.1e7  # 100 Mb ethernet
    net_active_w = 0.4
    battery_capacity_j = 3.6e4   # a simulated 10 Wh pack
    run_jitter_rel = 0.006

    def __init__(self, seed: int = 0, governor: str = "ondemand",
                 battery_fraction: float = 1.0) -> None:
        super().__init__(PI2_BCM2836, governor=governor, seed=seed,
                         battery_fraction=battery_fraction)
        # Passively cooled small board: higher thermal resistance.
        self.thermal = ThermalModel(ambient_c=35.0, r_th_c_per_w=7.0,
                                    tau_s=40.0)


class SystemC(Platform):
    """Nexus 5X (Android 6.0, ART), driven by replayed interaction.

    The paper reports clearly higher run-to-run deviation for System C
    (internet response, touch replay); we reproduce it with a larger
    run jitter plus the RERAN replay jitter in
    :mod:`repro.platform.reran`.
    """

    name = "C"
    meter_class = BatteryManagerMeter
    peripheral_w = 0.15
    display_w = 1.1
    io_bytes_per_s = 1.2e8   # eMMC flash
    io_active_w = 0.25
    net_bytes_per_s = 4.0e6  # wifi with real-world servers
    net_active_w = 0.85
    battery_capacity_j = 3.7e4   # 2700 mAh at 3.8 V
    run_jitter_rel = 0.028

    def __init__(self, seed: int = 0, governor: str = "ondemand",
                 battery_fraction: float = 1.0) -> None:
        super().__init__(SNAPDRAGON_808, governor=governor, seed=seed,
                         battery_fraction=battery_fraction)
        self.thermal = ThermalModel(ambient_c=33.0, r_th_c_per_w=6.0,
                                    tau_s=55.0)


_SYSTEMS = {"A": SystemA, "B": SystemB, "C": SystemC}


def make_platform(system: str, seed: int = 0,
                  battery_fraction: float = 1.0,
                  governor: str = "ondemand") -> Platform:
    """Instantiate one of the paper's systems by letter."""
    try:
        cls = _SYSTEMS[system.upper()]
    except KeyError:
        raise ValueError(f"unknown system {system!r}; "
                         f"expected one of A, B, C") from None
    return cls(seed=seed, battery_fraction=battery_fraction,
               governor=governor)


def system_config(system: str, governor: str = "ondemand"
                  ) -> PlatformConfig:
    """The :class:`PlatformConfig` of one of the paper's systems.

    Configs are pure data: building one does not construct a platform
    (the throwaway instance below is only a reader of class
    constants), so shards can exchange them cheaply.
    """
    return make_platform(system, governor=governor).config()


def platform_from_config(config: PlatformConfig, seed: int = 0,
                         battery_fraction: float = 1.0) -> Platform:
    """Instantiate a platform from its immutable config.

    The result steps bit-identically to the system subclass the
    config came from: all per-class constants become instance
    attributes, and the RNG/jitter initialization path is the shared
    :class:`Platform` one.
    """
    platform = Platform.__new__(Platform)
    platform.name = config.name
    platform.meter_class = _METERS[config.meter]
    platform.peripheral_w = config.peripheral_w
    platform.display_w = config.display_w
    platform.io_bytes_per_s = config.io_bytes_per_s
    platform.io_active_w = config.io_active_w
    platform.net_bytes_per_s = config.net_bytes_per_s
    platform.net_active_w = config.net_active_w
    platform.battery_capacity_j = config.battery_capacity_j
    platform.run_jitter_rel = config.run_jitter_rel
    Platform.__init__(platform, config.cpu, governor=config.governor,
                      seed=seed, battery_fraction=battery_fraction)
    platform.thermal = ThermalModel(ambient_c=config.ambient_c,
                                    r_th_c_per_w=config.r_th_c_per_w,
                                    tau_s=config.tau_s)
    platform.temperature_trace = [(0.0, platform.thermal.temperature_c)]
    return platform
