"""Battery model: a coulomb counter over the simulation clock.

The paper queries battery state through ACPI (System A), a simulated
battery (System B — "the battery level change is simulated", section 5),
and Android's ``BatteryManager`` (System C).  All three reduce to the
same model here: a capacity in joules drained by the platform's power
draw, plus an optional *scripted level* used by the experiment harness
to pin boot modes at the paper's 40%/70%/90% levels.
"""

from __future__ import annotations

from typing import Callable, Optional


class Battery:
    """An energy store with level queries and drain accounting."""

    def __init__(self, capacity_joules: float,
                 fraction: float = 1.0) -> None:
        if capacity_joules <= 0:
            raise ValueError("battery capacity must be positive")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("battery fraction must be in [0, 1]")
        self.capacity_joules = float(capacity_joules)
        self._charge = self.capacity_joules * fraction
        #: When set, :meth:`fraction` reports this callable's value
        #: (a function of simulation time) instead of the coulomb count.
        self._script: Optional[Callable[[float], float]] = None
        self._script_clock = None

    # ------------------------------------------------------------------

    @property
    def charge_joules(self) -> float:
        return self._charge

    def fraction(self, now: float = 0.0) -> float:
        """Remaining battery as a fraction of capacity."""
        if self._script is not None:
            return max(0.0, min(1.0, self._script(now)))
        return self._charge / self.capacity_joules

    def set_fraction(self, fraction: float) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("battery fraction must be in [0, 1]")
        self._script = None
        self._charge = self.capacity_joules * fraction

    def use_script(self, script: Callable[[float], float]) -> None:
        """Report a scripted level (a function of sim time in seconds).

        Drain accounting continues independently; the script only
        affects what level queries observe.  The harness uses this to
        hold boot modes steady (the paper pins levels at 40/70/90%) or
        to sweep them.
        """
        self._script = script

    def drain(self, joules: float) -> None:
        if joules < 0:
            raise ValueError("cannot drain negative energy")
        self._charge = max(0.0, self._charge - joules)

    @property
    def empty(self) -> bool:
        return self._charge <= 0.0

    def __repr__(self) -> str:
        pct = 100.0 * self._charge / self.capacity_joules
        return f"Battery({pct:.1f}% of {self.capacity_joules:.0f} J)"
