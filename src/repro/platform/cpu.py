"""CPU model: DVFS frequency levels, dynamic power, and governors.

Abstract work is measured in *units* of one million operations.  At a
given frequency level the CPU retires ``freq_ghz * 1e9 * ipc`` ops per
second and dissipates ``idle + k * f * V^2`` watts — the classic CMOS
dynamic-power form the paper's mode intuition rests on (its reference
[31], Chandrakasan et al.).

The default governor is ``ondemand`` (the paper runs every platform on
its default governor): it ramps to the highest level when recent
utilization is high and steps down when the system idles, which is what
produces the paper's System-B observation that lower application duty
cycles let the *hardware* drop to a lower-power mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

#: One work unit = this many operations.
OPS_PER_UNIT = 1.0e6


@dataclass(frozen=True)
class CpuSpec:
    """Static description of a CPU's DVFS operating points."""

    name: str
    freqs_ghz: Tuple[float, ...]
    voltages: Tuple[float, ...]
    ipc: float
    idle_w: float
    #: Dynamic power coefficient: P_dyn = k * f_ghz * V^2 (watts).
    dyn_coeff: float

    def __post_init__(self) -> None:
        if len(self.freqs_ghz) != len(self.voltages):
            raise ValueError("freqs and voltages must align")
        if not self.freqs_ghz:
            raise ValueError("CPU needs at least one operating point")
        if list(self.freqs_ghz) != sorted(self.freqs_ghz):
            raise ValueError("frequency levels must be ascending")

    @property
    def levels(self) -> int:
        return len(self.freqs_ghz)

    def ops_per_second(self, level: int) -> float:
        return self.freqs_ghz[level] * 1.0e9 * self.ipc

    def idle_power(self, level: int) -> float:
        """Static/leakage power at a DVFS level.

        Leakage tracks the supply voltage (roughly quadratically), so a
        lower operating point also cuts the idle floor — this is what
        makes DVFS a net win rather than race-to-idle always dominating.
        ``idle_w`` is the figure at the top level.
        """
        v_max = self.voltages[-1]
        ratio = self.voltages[level] / v_max
        return self.idle_w * ratio * ratio

    def busy_power(self, level: int) -> float:
        freq = self.freqs_ghz[level]
        volt = self.voltages[level]
        return self.idle_power(level) + self.dyn_coeff * freq * volt * volt

    def max_power(self) -> float:
        return self.busy_power(self.levels - 1)


class OndemandGovernor:
    """An ``ondemand``-style DVFS governor.

    Tracks an exponentially weighted utilization and maps it to a
    frequency level: jump to the top level when utilization crosses the
    up-threshold (as Linux ondemand does), otherwise scale the level
    proportionally as utilization decays.
    """

    def __init__(self, levels: int, up_threshold: float = 0.8,
                 window_s: float = 0.5) -> None:
        if levels < 1:
            raise ValueError("need at least one level")
        self.levels = levels
        self.up_threshold = up_threshold
        self.window_s = window_s
        self._util = 0.0

    @property
    def utilization(self) -> float:
        return self._util

    def observe(self, busy: bool, duration_s: float) -> None:
        """Fold a busy/idle interval into the utilization estimate."""
        if duration_s <= 0:
            return
        # Exponential forgetting with the window as time constant.
        import math
        alpha = 1.0 - math.exp(-duration_s / self.window_s)
        target = 1.0 if busy else 0.0
        self._util += alpha * (target - self._util)

    def select_level(self) -> int:
        if self.levels == 1:
            return 0
        if self._util >= self.up_threshold:
            return self.levels - 1
        scaled = int(self._util / self.up_threshold * (self.levels - 1))
        return max(0, min(self.levels - 1, scaled))


class PerformanceGovernor:
    """Always runs at the highest frequency level."""

    def __init__(self, levels: int) -> None:
        self.levels = levels
        self._util = 1.0

    @property
    def utilization(self) -> float:
        return self._util

    def observe(self, busy: bool, duration_s: float) -> None:
        pass

    def select_level(self) -> int:
        return self.levels - 1


class Cpu:
    """A CPU executing abstract work under a governor."""

    def __init__(self, spec: CpuSpec, governor: str = "ondemand") -> None:
        self.spec = spec
        if governor == "ondemand":
            self.governor = OndemandGovernor(spec.levels)
        elif governor == "performance":
            self.governor = PerformanceGovernor(spec.levels)
        else:
            raise ValueError(f"unknown governor {governor!r}")
        self.current_level = self.governor.select_level()
        self.total_work_units = 0.0

    def execute(self, units: float) -> Tuple[float, float]:
        """Run ``units`` of work; returns ``(duration_s, power_w)``.

        The governor sees the work as a fully busy interval and may
        raise the level for subsequent work.
        """
        if units < 0:
            raise ValueError("work units must be non-negative")
        if units == 0:
            return 0.0, self.spec.idle_w
        level = self.governor.select_level()
        self.current_level = level
        duration = units * OPS_PER_UNIT / self.spec.ops_per_second(level)
        power = self.spec.busy_power(level)
        self.governor.observe(True, duration)
        self.total_work_units += units
        return duration, power

    def idle(self, duration_s: float) -> float:
        """Account an idle interval; returns the idle power draw at the
        level the governor settles on."""
        self.governor.observe(False, duration_s)
        self.current_level = self.governor.select_level()
        return self.spec.idle_power(self.current_level)


# ---------------------------------------------------------------------------
# Specs for the paper's three systems


#: System A: Intel i5 laptop (4 GB RAM, Ubuntu 14.04, Java 1.8).
INTEL_I5 = CpuSpec(
    name="intel-i5",
    freqs_ghz=(0.8, 1.6, 2.4, 3.0),
    voltages=(0.70, 0.85, 1.00, 1.10),
    ipc=4.0,
    idle_w=6.0,
    dyn_coeff=6.5,   # peak ~ 6 + 6.5*3.0*1.21 ≈ 29.6 W package
)

#: System B: Raspberry Pi 2 Model B (BCM2836, 1 GB RAM, Raspbian Jessie).
PI2_BCM2836 = CpuSpec(
    name="pi2-bcm2836",
    freqs_ghz=(0.6, 0.9),
    voltages=(1.20, 1.3125),
    ipc=1.0,
    idle_w=1.1,
    dyn_coeff=1.4,   # peak ~ 1.1 + 1.4*0.9*1.72 ≈ 3.3 W board CPU share
)

#: System C: Nexus 5X (Snapdragon 808, Android 6.0, ART).
SNAPDRAGON_808 = CpuSpec(
    name="snapdragon-808",
    freqs_ghz=(0.38, 0.96, 1.44, 1.82),
    voltages=(0.70, 0.85, 1.00, 1.125),
    ipc=2.0,
    idle_w=0.35,
    dyn_coeff=1.55,  # peak ~ 0.35 + 1.55*1.82*1.27 ≈ 3.9 W SoC
)
