"""Simulated energy platforms: battery, thermal, CPU/DVFS, and meters."""

from repro.platform.battery import Battery
from repro.platform.clock import SimClock
from repro.platform.cpu import (INTEL_I5, PI2_BCM2836, SNAPDRAGON_808, Cpu,
                                CpuSpec, OndemandGovernor,
                                PerformanceGovernor)
from repro.platform.meter import (BatteryManagerMeter, EnergyLedger, Meter,
                                  RaplMeter, WattsUpMeter)
from repro.platform.reran import Recording, ReranReplayer, TouchEvent
from repro.platform.systems import (Platform, SystemA, SystemB, SystemC,
                                    make_platform)
from repro.platform.thermal import ThermalModel

__all__ = [
    "Battery",
    "BatteryManagerMeter",
    "Cpu",
    "CpuSpec",
    "EnergyLedger",
    "INTEL_I5",
    "Meter",
    "OndemandGovernor",
    "PerformanceGovernor",
    "PI2_BCM2836",
    "Platform",
    "RaplMeter",
    "Recording",
    "ReranReplayer",
    "SNAPDRAGON_808",
    "SimClock",
    "SystemA",
    "SystemB",
    "SystemC",
    "ThermalModel",
    "TouchEvent",
    "WattsUpMeter",
    "make_platform",
]
