"""Energy meters: simulated jRAPL, Watts Up? Pro, and BatteryManager.

The paper measures energy three different ways:

* System A — jRAPL over Intel RAPL counters: CPU *package* energy only,
  fine-grained windows, very low measurement noise.
* System B — a Watts Up? Pro wall meter: whole-device power including
  peripherals (keyboard/mouse/HDMI/ethernet were attached), 1 Hz-ish
  integration, moderate noise.
* System C — Android's BatteryManager + wall meter: device energy with
  the highest run-to-run variation (touch replay, radios).

All meters observe the same underlying platform energy ledger; they
differ in which components they see and the measurement noise they add.
Noise is seeded so experiments are reproducible: by default each meter
draws from its own :class:`repro.core.rng.SplitMix64` stream derived
with :func:`repro.core.rng.derive_seed` under the ``seed`` argument, so
meter noise is independent of (and never perturbs) any other stream —
the advisor's Monte-Carlo draws in particular — and the whole meter
pickles.  Passing ``rng=`` (anything with a ``gauss`` method, e.g. the
platform's own :class:`random.Random`) overrides the default, exactly
as before.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.errors import EntError
from repro.core.rng import SplitMix64, derive_seed
from repro.obs.events import MeterSampleEvent
from repro.obs.tracer import NULL_TRACER

#: Stream constant scoping default meter-noise seeds away from every
#: other ``derive_seed`` consumer (fleet devices, advisor MC, …).
METER_NOISE_STREAM = 0x4D45_5445


@dataclass
class EnergyLedger:
    """Ground-truth energy accounting, split by component."""

    cpu_j: float = 0.0
    peripheral_j: float = 0.0
    io_j: float = 0.0
    net_j: float = 0.0
    display_j: float = 0.0

    #: The valid ``add`` targets, i.e. every component field.
    COMPONENTS = ("cpu_j", "peripheral_j", "io_j", "net_j", "display_j")

    def add(self, component: str, joules: float) -> None:
        if component not in self.COMPONENTS:
            raise EntError(
                f"unknown energy component {component!r}; expected one "
                f"of {', '.join(self.COMPONENTS)}")
        setattr(self, component, getattr(self, component) + joules)

    @property
    def total_j(self) -> float:
        return (self.cpu_j + self.peripheral_j + self.io_j + self.net_j
                + self.display_j)

    def snapshot(self) -> "EnergyLedger":
        return EnergyLedger(self.cpu_j, self.peripheral_j, self.io_j,
                            self.net_j, self.display_j)


class Meter:
    """Base meter: measure a window of the platform's energy ledger."""

    #: Which ledger components this meter observes.
    components: tuple = ("cpu_j",)
    #: Relative gaussian measurement noise (1 sigma).
    noise_rel: float = 0.0

    def __init__(self, ledger: EnergyLedger, rng=None, tracer=None,
                 seed: int = 0) -> None:
        self._ledger = ledger
        if rng is None:
            rng = SplitMix64(derive_seed(seed, METER_NOISE_STREAM))
        self._rng = rng
        self._start: Optional[EnergyLedger] = None
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def _trace_sample(self, phase: str) -> None:
        ledger = self._ledger
        self.tracer.emit(MeterSampleEvent(
            ts=self.tracer.now(), meter=type(self).__name__, phase=phase,
            cpu_j=ledger.cpu_j, peripheral_j=ledger.peripheral_j,
            io_j=ledger.io_j, net_j=ledger.net_j,
            display_j=ledger.display_j, total_j=ledger.total_j))

    def begin(self) -> None:
        self._start = self._ledger.snapshot()
        if self.tracer.enabled:
            self._trace_sample("begin")

    def end(self) -> float:
        """Joules consumed (as observed by this meter) since begin()."""
        if self._start is None:
            raise RuntimeError("meter window not started; call begin()")
        consumed = 0.0
        for component in self.components:
            consumed += (getattr(self._ledger, component)
                         - getattr(self._start, component))
        self._start = None
        if self.noise_rel > 0.0:
            consumed *= max(0.0, 1.0 + self._rng.gauss(0.0, self.noise_rel))
        if self.tracer.enabled:
            self._trace_sample("end")
        return consumed


class RaplMeter(Meter):
    """jRAPL-style meter: CPU package energy only (System A)."""

    components = ("cpu_j",)
    noise_rel = 0.004


class WattsUpMeter(Meter):
    """Watts Up? Pro wall meter: whole device (System B)."""

    components = ("cpu_j", "peripheral_j", "io_j", "net_j", "display_j")
    noise_rel = 0.006


class BatteryManagerMeter(Meter):
    """Android battery accounting (System C): whole device, noisier."""

    components = ("cpu_j", "peripheral_j", "io_j", "net_j", "display_j")
    noise_rel = 0.018
