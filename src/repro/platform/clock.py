"""A discrete simulation clock shared by all platform components."""

from __future__ import annotations

import time


def monotonic_time() -> float:
    """Monotonic wall-clock seconds (the tracing timestamp source).

    Observability code (:mod:`repro.obs`) stamps events with this when
    no platform simulator is attached; with one attached it uses the
    simulation clock instead, so platform activity and runtime events
    share a timeline.
    """
    return time.monotonic()


class SimClock:
    """Simulated wall-clock time in seconds.

    Components advance the clock whenever they model an activity that
    takes time (CPU work, I/O, sleeping).  Observers (meters, thermal
    models) subscribe to advancement to integrate their state.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._listeners = []

    @property
    def now(self) -> float:
        return self._now

    def subscribe(self, listener) -> None:
        """``listener(start_time, duration)`` is called on every advance."""
        self._listeners.append(listener)

    def advance(self, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"cannot advance time by {duration}")
        if duration == 0:
            return
        start = self._now
        self._now += duration
        for listener in self._listeners:
            listener(start, duration)

    def __repr__(self) -> str:
        return f"SimClock(t={self._now:.6f}s)"
