"""RERAN-style record-and-replay of user interaction (System C).

The paper drives its Android benchmarks with RERAN [38], a timing- and
touch-sensitive record/replay framework, and notes that "there is still
a level of non-determinism involved with running Apps".  We model a
recording as a list of timestamped events and a replay as the same
sequence with bounded timing jitter, so repeated runs of an Android
workload differ slightly — reproducing System C's higher relative
standard deviation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class TouchEvent:
    """One recorded interaction event."""

    at_s: float
    kind: str            # "tap", "scroll", "type", "key"
    payload: str = ""

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("event time must be non-negative")


class Recording:
    """An ordered sequence of touch events (a RERAN trace)."""

    def __init__(self, events: Sequence[TouchEvent]) -> None:
        self.events: List[TouchEvent] = sorted(events,
                                               key=lambda e: e.at_s)

    @classmethod
    def script(cls, steps: Sequence[Tuple[float, str, str]]) -> "Recording":
        """Build a recording from ``(gap_seconds, kind, payload)`` steps
        (gaps are relative to the previous event)."""
        events = []
        t = 0.0
        for gap, kind, payload in steps:
            t += gap
            events.append(TouchEvent(t, kind, payload))
        return cls(events)

    @property
    def duration_s(self) -> float:
        return self.events[-1].at_s if self.events else 0.0

    def __len__(self) -> int:
        return len(self.events)


class ReranReplayer:
    """Replays a recording against a platform with timing jitter.

    Each inter-event gap is perturbed by a seeded gaussian (bounded
    below so ordering is preserved).  The platform sleeps through the
    gaps (the device idles between interactions) and the caller handles
    each event — usually by issuing work/net against the platform.
    """

    def __init__(self, platform, jitter_rel: float = 0.05,
                 seed: int = 0) -> None:
        self.platform = platform
        self.jitter_rel = jitter_rel
        self.rng = random.Random(seed)

    def replay(self, recording: Recording) -> Iterator[TouchEvent]:
        """Yield each event after idling through its (jittered) gap."""
        previous = 0.0
        for event in recording.events:
            gap = event.at_s - previous
            previous = event.at_s
            if gap > 0:
                jittered = gap * max(
                    0.2, 1.0 + self.rng.gauss(0.0, self.jitter_rel))
                self.platform.sleep(jittered)
            yield event
