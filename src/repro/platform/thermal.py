"""Lumped-RC CPU thermal model.

Die temperature follows a first-order response to dissipated power:

    dT/dt = (T_steady(P) - T) / tau,   T_steady(P) = T_ambient + R_th * P

which yields the behaviour Figure 11 depends on: under sustained load
the temperature climbs towards a power-dependent plateau, and sleeping
(idle power) cools the die back down.  The closed-form exponential step
is used so integration is exact for piecewise-constant power.
"""

from __future__ import annotations

import math


class ThermalModel:
    """First-order thermal response of a CPU package."""

    def __init__(self, ambient_c: float = 35.0,
                 r_th_c_per_w: float = 1.2,
                 tau_s: float = 25.0,
                 initial_c: float = None) -> None:
        if r_th_c_per_w <= 0 or tau_s <= 0:
            raise ValueError("thermal resistance and tau must be positive")
        self.ambient_c = float(ambient_c)
        self.r_th = float(r_th_c_per_w)
        self.tau = float(tau_s)
        self._temp = float(initial_c if initial_c is not None else ambient_c)

    @property
    def temperature_c(self) -> float:
        return self._temp

    def set_temperature(self, celsius: float) -> None:
        self._temp = float(celsius)

    def steady_state(self, power_w: float) -> float:
        """Equilibrium temperature under constant ``power_w``."""
        return self.ambient_c + self.r_th * power_w

    def step(self, power_w: float, duration_s: float) -> float:
        """Advance the model ``duration_s`` seconds at constant power.

        Returns the new temperature.  Uses the exact exponential solution
        of the first-order ODE, so step size does not affect accuracy.
        """
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        if duration_s == 0:
            return self._temp
        target = self.steady_state(power_w)
        decay = math.exp(-duration_s / self.tau)
        self._temp = target + (self._temp - target) * decay
        return self._temp

    def time_to_reach(self, power_w: float, threshold_c: float) -> float:
        """Seconds of constant ``power_w`` until ``threshold_c``.

        Returns ``inf`` if the steady state never reaches the threshold
        (or 0 if already there).  Used by tests and by E3 workload sizing.
        """
        target = self.steady_state(power_w)
        if self._temp >= threshold_c:
            return 0.0
        if target <= threshold_c:
            return math.inf
        ratio = (target - threshold_c) / (target - self._temp)
        return -self.tau * math.log(ratio)

    def __repr__(self) -> str:
        return (f"ThermalModel(T={self._temp:.2f}C, ambient="
                f"{self.ambient_c}C, R={self.r_th}C/W, tau={self.tau}s)")
