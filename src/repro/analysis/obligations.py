"""The check-obligation pass: enumerate every dynamic check the runtime
would emit for a checked program, and decide which are provably safe.

:class:`ProgramAnalyzer` walks every body of a ``CheckedProgram``
(methods, constructors, field initializers, class and method
attributors) carrying a mode-flow environment (:mod:`.modeflow`), and
records one :class:`CheckSite` per obligation:

* ``dfall`` — the per-message dynamic waterfall check in
  ``Interpreter._invoke``;
* ``snapshot_bound`` — the ``lo <= mode <= hi`` check in
  ``Interpreter._snapshot_value``;
* ``mcase_elim`` — implicit or explicit mode-case elimination.

Each site is classified:

* ``static`` — the runtime emits no check at all (self messages,
  mode-transparent receivers);
* ``elided`` — a check the runtime would emit, proven to always pass;
  the planner (:mod:`.planner`) annotates the AST so the interpreter
  and compiler skip it;
* ``residual`` — a check that must run dynamically, with the reason.

The analysis is deliberately conservative; the soundness argument for
every ``elided`` verdict is spelled out in docs/ANALYSIS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import reduce
from typing import (Dict, FrozenSet, Iterator, List, Optional, Set,
                    Tuple, Union)

from repro.analysis.modeflow import (OMEGA, ONE, Bound, ModeFact,
                                     hull_fact, join_envs, join_facts,
                                     refine)
from repro.core.modes import BOTTOM, TOP, Mode
from repro.lang import ast_nodes as ast
from repro.lang.types import ClassInfo, MethodInfo, ObjectType
from repro.lang.typechecker import CheckedProgram

__all__ = ["CheckSite", "ProgramAnalyzer", "DFALL", "SNAPSHOT_BOUND",
           "MCASE_ELIM", "STATIC", "ELIDED", "RESIDUAL"]

# Obligation kinds.
DFALL = "dfall"
SNAPSHOT_BOUND = "snapshot_bound"
MCASE_ELIM = "mcase_elim"

# Site statuses.
STATIC = "static"
ELIDED = "elided"
RESIDUAL = "residual"


@dataclass
class CheckSite:
    """One dynamic-check obligation at one source location."""

    kind: str
    context: str
    description: str
    status: str
    reason: str
    line: Optional[int] = None
    column: Optional[int] = None
    #: The class whose mode discipline *causes* the obligation: the
    #: receiver class of a dfall check, the snapshotted class of a
    #: bound check, the enclosing class of a mode-case elimination.
    #: This is the advisor's grouping key (``repro.advise``): pinning a
    #: class to a static mode discharges exactly the sites targeting it.
    target_class: Optional[str] = None
    #: The AST node carrying the obligation (consumed by the planner;
    #: not part of the serialized report).
    node: object = field(default=None, repr=False, compare=False)
    #: End of the site's source span (the start is ``line``/``column``).
    end_line: Optional[int] = None
    end_column: Optional[int] = None
    #: How many loops enclose the site within its body.
    loop_depth: int = 0
    #: Executions of the site per activation of its enclosing body:
    #: the product of the enclosing loops' trip-count bounds.
    local_trips: Bound = ONE
    #: Activations of the enclosing body per program run (set by the
    #: cost pass, :mod:`.cost`).
    activations: Optional[Bound] = None
    #: ``local_trips * activations`` — the static bound on how many
    #: times this check can fire in one program run.
    firings: Optional[Bound] = None
    #: Abstract per-firing depth cost of the full (deep) check, in
    #: check-cost units (:data:`repro.analysis.cost.CHECK_COST`).
    cost_units: int = 0
    #: True when an ω trip bound was replaced by the ``--fuel`` budget.
    fuel_capped: bool = False

    @property
    def owner_class(self) -> str:
        """``target_class``, falling back to the context's class."""
        if self.target_class is not None:
            return self.target_class
        return self.context.split(".", 1)[0]

    @property
    def site_id(self) -> str:
        """``<kind>@<line>:<column>`` — the key the runtime profiler
        (:mod:`repro.obs.prof`) uses for the same obligation, which is
        what lets ``static_vs_observed`` join the two exactly."""
        if self.line is None:
            return f"{self.kind}@?"
        return f"{self.kind}@{self.line}:{self.column}"

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "kind": self.kind,
            "context": self.context,
            "description": self.description,
            "status": self.status,
            "reason": self.reason,
            "line": self.line,
            "column": self.column,
            "site_id": self.site_id,
            "target_class": self.target_class,
            "span": {
                "line": self.line,
                "column": self.column,
                "end_line": self.end_line,
                "end_column": self.end_column,
            },
            "loop_depth": self.loop_depth,
            "local_trips": self.local_trips.as_json(),
        }
        if self.activations is not None:
            out["activations"] = self.activations.as_json()
        if self.firings is not None:
            out["firings_bound"] = self.firings.as_json()
            out["cost_units"] = self.cost_units
            cost = self.firings.scaled(self.cost_units)
            out["cost_bound"] = cost.as_json()
            if self.fuel_capped:
                out["fuel_capped"] = True
        return out


# ---------------------------------------------------------------------------
# Generic AST walking helpers


def iter_stmts(stmt: ast.Stmt) -> Iterator[ast.Stmt]:
    """``stmt`` and every statement nested inside it."""
    yield stmt
    cls = stmt.__class__
    if cls is ast.Block:
        for child in stmt.stmts:
            yield from iter_stmts(child)
    elif cls is ast.If:
        yield from iter_stmts(stmt.then)
        if stmt.otherwise is not None:
            yield from iter_stmts(stmt.otherwise)
    elif cls is ast.While:
        yield from iter_stmts(stmt.body)
    elif cls is ast.Foreach:
        yield from iter_stmts(stmt.body)
    elif cls is ast.TryCatch:
        yield from iter_stmts(stmt.body)
        yield from iter_stmts(stmt.handler)


def stmt_exprs(stmt: ast.Stmt) -> Tuple[ast.Expr, ...]:
    """The expressions directly owned by one statement."""
    cls = stmt.__class__
    if cls is ast.LocalVarDecl:
        return (stmt.init,) if stmt.init is not None else ()
    if cls is ast.Assign:
        return (stmt.target, stmt.value)
    if cls is ast.ExprStmt:
        return (stmt.expr,)
    if cls is ast.If:
        return (stmt.cond,)
    if cls is ast.While:
        return (stmt.cond,)
    if cls is ast.Foreach:
        return (stmt.iterable,)
    if cls is ast.Return:
        return (stmt.expr,) if stmt.expr is not None else ()
    if cls is ast.Throw:
        return (stmt.expr,)
    return ()


def iter_exprs(expr: ast.Expr) -> Iterator[ast.Expr]:
    """``expr`` and every expression nested inside it."""
    yield expr
    cls = expr.__class__
    if cls is ast.MethodCall:
        if expr.receiver is not None:
            yield from iter_exprs(expr.receiver)
        for arg in expr.args:
            yield from iter_exprs(arg)
    elif cls is ast.New:
        for arg in expr.args:
            yield from iter_exprs(arg)
    elif cls in (ast.Cast, ast.Snapshot, ast.MSelect, ast.Unary,
                 ast.InstanceOf):
        yield from iter_exprs(expr.expr)
    elif cls is ast.Binary:
        yield from iter_exprs(expr.left)
        yield from iter_exprs(expr.right)
    elif cls is ast.MCaseExpr:
        for branch in expr.branches:
            yield from iter_exprs(branch.expr)
    elif cls is ast.ListLit:
        for element in expr.elements:
            yield from iter_exprs(element)
    elif cls is ast.FieldAccess:
        yield from iter_exprs(expr.obj)


def assigned_locals(stmt: ast.Stmt) -> Set[str]:
    """Names assigned anywhere inside ``stmt`` (conservatively includes
    field writes that happen to share a name with a local)."""
    out: Set[str] = set()
    for child in iter_stmts(stmt):
        if child.__class__ is ast.Assign and isinstance(child.target,
                                                        ast.Var):
            out.add(child.target.name)
        elif child.__class__ is ast.Foreach:
            out.add(child.var_name)
    return out


def attributor_modes(
        attributor: ast.AttributorDecl) -> Optional[FrozenSet[Mode]]:
    """The set of mode literals an attributor body can return, or
    ``None`` when any return is not a literal mode constant."""
    modes: Set[Mode] = set()
    for stmt in iter_stmts(attributor.body):
        if stmt.__class__ is not ast.Return:
            continue
        expr = stmt.expr
        if (expr is None or expr.__class__ is not ast.Var
                or expr.resolved_kind != "mode"):
            return None
        modes.add(Mode(expr.name))
    return frozenset(modes) if modes else None


# ---------------------------------------------------------------------------
# The analyzer


#: Result of :meth:`ProgramAnalyzer._guard_profile`.
GuardProfile = Union[str, Tuple[str, Mode]]


class ProgramAnalyzer:
    """Walks a checked program, producing :class:`CheckSite` records.

    ``analyze()`` first iterates the interprocedural return summaries to
    a fixpoint (without recording), then performs one recording pass.
    """

    #: Fixpoint cap.  Summaries resolve acyclically (a summary is only
    #: assigned once all callee summaries it needs are assigned, and
    #: never changes afterwards), so this is a backstop, not a tuning
    #: knob.
    MAX_SUMMARY_PASSES = 50

    def __init__(self, checked: CheckedProgram) -> None:
        self.checked = checked
        self.program = checked.program
        self.table = checked.table
        self.lattice = checked.lattice
        self.sites: List[CheckSite] = []
        #: id(MethodInfo) -> ModeFact for the method's return value
        #: (absent/None = no fact).
        self.summaries: Dict[int, Optional[ModeFact]] = {}
        self._recording = False
        self._ctx = "<toplevel>"
        self._sender = ModeFact.unknown_concrete()
        self._returns: Optional[List[Optional[ModeFact]]] = None
        self._hull_cache: Dict[str, Optional[FrozenSet[Mode]]] = {}
        self._profile_cache: Dict[Tuple[str, str], GuardProfile] = {}
        self._analyzed = False
        #: Stack of enclosing-loop trip bounds within the current body.
        self._loop_stack: List[Bound] = []
        #: Known integer constants for locals (counted-loop detection).
        self._ints: Dict[str, int] = {}
        #: Call-multigraph edges ``(caller_ctx, callee_ctx, weight)``
        #: recorded during the recording walk; the weight is the
        #: product of the enclosing loops' trip bounds at the call.
        #: Consumed by the residual-cost pass (:mod:`.cost`).
        self.edges: List[Tuple[str, str, Bound]] = []
        self.main_at_top = self._compute_main_at_top()

    # ------------------------------------------------------------------
    # Entry point

    def analyze(self) -> List[CheckSite]:
        if self._analyzed:
            return self.sites
        for _ in range(self.MAX_SUMMARY_PASSES):
            if not self._summary_pass():
                break
        self._recording = True
        self._walk_program()
        self._recording = False
        self._analyzed = True
        return self.sites

    # ------------------------------------------------------------------
    # Whole-program facts

    def _compute_main_at_top(self) -> bool:
        """Is ``Main``'s only entry the boot invocation at ``TOP``?

        True when Main is mode-transparent and no expression in the
        program can produce or message a Main-typed value other than
        ``this`` inside Main itself.  Then every Main frame runs at the
        boot mode ``TOP`` (self-calls preserve the caller's mode
        through the transparent-receiver rule).
        """
        if "Main" not in self.table:
            return False
        if not self.table.get("Main").transparent:
            return False

        def related(name: str) -> bool:
            return (self.table.is_subclass(name, "Main")
                    or self.table.is_subclass("Main", name))

        for expr in self._iter_program_exprs():
            cls = expr.__class__
            if cls is ast.New:
                resolved = getattr(expr, "resolved_type", None)
                if isinstance(resolved, ObjectType) and \
                        related(resolved.class_name):
                    return False
            elif cls is ast.Cast:
                target = getattr(expr, "resolved_target", None)
                if isinstance(target, ObjectType) and \
                        related(target.class_name):
                    return False
            elif cls is ast.MethodCall:
                rtype = expr.resolved_receiver_type
                if (rtype is not None and related(rtype.class_name)
                        and expr.receiver is not None
                        and expr.receiver.__class__ is not ast.This):
                    return False
        return True

    def _iter_program_exprs(self) -> Iterator[ast.Expr]:
        for stmt, _ in self._iter_program_bodies():
            for child in iter_stmts(stmt):
                for expr in stmt_exprs(child):
                    yield from iter_exprs(expr)

    def _iter_program_bodies(self) -> Iterator[Tuple[ast.Stmt, str]]:
        for cls in self.program.classes:
            for fdecl in cls.fields:
                if fdecl.init is not None:
                    yield (ast.ExprStmt(expr=fdecl.init),
                           f"{cls.name}.<field {fdecl.name}>")
            if cls.constructor is not None:
                yield cls.constructor.body, f"{cls.name}.<init>"
            if cls.attributor is not None:
                yield cls.attributor.body, f"{cls.name}.<attributor>"
            for mdecl in cls.methods:
                yield mdecl.body, f"{cls.name}.{mdecl.name}"
                if mdecl.attributor is not None:
                    yield (mdecl.attributor.body,
                           f"{cls.name}.{mdecl.name}.<attributor>")

    # ------------------------------------------------------------------
    # Whole-program views for the advisor (repro.advise)

    def dynamic_classes(self) -> List[str]:
        """Classes declared with a dynamic (``?``) mode parameter —
        the classes a ``repro advise`` sweep can pin static."""
        return sorted(info.name for info in self.table.classes()
                      if info.name != "Object" and info.is_dynamic)

    def class_hulls(self) -> Dict[str, Optional[FrozenSet[Mode]]]:
        """``{dynamic class: attributor hull}`` — every mode any
        reachable attributor can return, or ``None`` when some
        attributor is not a literal-return one (the advisor then falls
        back to the whole declared lattice)."""
        return {name: self._class_hull(name)
                for name in self.dynamic_classes()}

    # ------------------------------------------------------------------
    # Class/method metadata (hulls, guard profiles, override sets)

    def _subclasses(self, class_name: str) -> List[ClassInfo]:
        return [info for info in self.table.classes()
                if info.name != "Object"
                and self.table.is_subclass(info.name, class_name)]

    def _nearest_attributor(
            self, info: ClassInfo) -> Optional[ast.AttributorDecl]:
        current: Optional[ClassInfo] = info
        while current is not None:
            decl = current.decl
            if decl is not None and decl.attributor is not None:
                return decl.attributor
            current = (self.table.get(current.superclass)
                       if current.superclass else None)
        return None

    def _class_hull(self,
                    class_name: str) -> Optional[FrozenSet[Mode]]:
        """All modes any attributor reachable from a snapshot of static
        class ``class_name`` can return — over the class *and every
        subclass* (the actual object may be any of them) — or ``None``
        when some attributor is not a literal-return one."""
        cached = self._hull_cache.get(class_name, _MISSING)
        if cached is not _MISSING:
            return cached
        hull: Set[Mode] = set()
        result: Optional[FrozenSet[Mode]] = None
        complete = True
        for info in self._subclasses(class_name):
            attributor = self._nearest_attributor(info)
            if attributor is None:
                complete = False
                break
            modes = attributor_modes(attributor)
            if modes is None:
                complete = False
                break
            hull.update(modes)
        if complete and hull:
            result = frozenset(hull)
        self._hull_cache[class_name] = result
        return result

    def _resolve_method(self, info: ClassInfo,
                        name: str) -> Optional[MethodInfo]:
        current: Optional[ClassInfo] = info
        while current is not None:
            minfo = current.methods.get(name)
            if minfo is not None:
                return minfo
            current = (self.table.get(current.superclass)
                       if current.superclass else None)
        return None

    def _override_minfos(self, class_name: str,
                         method: str) -> List[MethodInfo]:
        """The method implementations any dynamic dispatch from a
        static receiver type ``class_name`` can reach."""
        seen: Dict[int, MethodInfo] = {}
        for info in self._subclasses(class_name):
            minfo = self._resolve_method(info, method)
            if minfo is not None:
                seen[id(minfo)] = minfo
        return list(seen.values())

    def _guard_profile(self, class_name: str,
                       method: str) -> GuardProfile:
        """How the runtime computes the dfall guard for this call, over
        every class the receiver can actually be:

        * ``"plain"`` — always the receiver's effective mode;
        * ``("concrete", m)`` — always the concrete override ``m``;
        * ``"varies"`` — differs across subclasses, or involves a
          method attributor / generic mode parameter somewhere.
        """
        key = (class_name, method)
        cached = self._profile_cache.get(key)
        if cached is not None:
            return cached
        result: Optional[GuardProfile] = None
        for minfo in self._override_minfos(class_name, method):
            mp = minfo.mode_param
            if mp is None:
                this: GuardProfile = "plain"
            elif mp.concrete is not None and not minfo.has_attributor:
                this = ("concrete", mp.concrete)
            else:
                result = "varies"
                break
            if result is None:
                result = this
            elif result != this:
                result = "varies"
                break
        result = result if result is not None else "varies"
        self._profile_cache[key] = result
        return result

    def _call_result_fact(self, class_name: str,
                          method: str) -> Optional[ModeFact]:
        minfos = self._override_minfos(class_name, method)
        if not minfos:
            return None
        fact: Optional[ModeFact] = None
        for index, minfo in enumerate(minfos):
            summary = self.summaries.get(id(minfo))
            if summary is None:
                return None
            fact = summary if index == 0 else join_facts(fact, summary,
                                                         self.lattice)
        return fact

    # ------------------------------------------------------------------
    # Interprocedural return summaries

    def _summary_pass(self) -> bool:
        changed = False
        for cls in self.program.classes:
            info = self.table.get(cls.name)
            for mdecl in cls.methods:
                minfo = info.methods.get(mdecl.name)
                if minfo is None:
                    continue
                fact = self._method_return_fact(cls, info, minfo, mdecl)
                key = id(minfo)
                if fact is not None and self.summaries.get(key) != fact:
                    self.summaries[key] = fact
                    changed = True
        return changed

    def _method_return_fact(self, cls: ast.ClassDecl, info: ClassInfo,
                            minfo: MethodInfo,
                            mdecl: ast.MethodDecl) -> Optional[ModeFact]:
        """A fact covering every value this body can return, or None.

        Sound only when every completion path goes through a collected
        ``return``: require the body to end in ``return``/``throw``.
        """
        body = mdecl.body
        if not body.stmts or body.stmts[-1].__class__ not in (ast.Return,
                                                              ast.Throw):
            return None
        self._ctx = f"{cls.name}.{mdecl.name}"
        self._sender = self._sender_fact(cls, info, minfo)
        self._loop_stack = []
        self._ints = {}
        self._returns = []
        self._visit_stmt(body, {})
        returns, self._returns = self._returns, None
        if not returns or any(f is None for f in returns):
            return None
        return reduce(lambda a, b: join_facts(a, b, self.lattice),
                      returns)

    # ------------------------------------------------------------------
    # Sender facts (one per body context)

    def _sender_fact(self, cls: ast.ClassDecl, info: ClassInfo,
                     minfo: Optional[MethodInfo]) -> ModeFact:
        """A fact for ``frame.current_mode`` of every frame executing
        this body (the dfall sender).  Closure modes are always
        concrete at run time, so the fallback is the full interval."""
        mp = minfo.mode_param if minfo is not None else None
        if mp is not None:
            if mp.concrete is not None:
                return ModeFact.exact(mp.concrete)
            if (minfo.has_attributor and minfo.decl is not None
                    and minfo.decl.attributor is not None):
                hull = attributor_modes(minfo.decl.attributor)
                if hull is not None:
                    return hull_fact(hull, self.lattice)
            return ModeFact.unknown_concrete()
        if info.transparent:
            # Transparent bodies run at the caller's mode.  Main is the
            # boot entry: when nothing else can reach it, that mode is
            # always TOP.
            if cls.name == "Main" and self.main_at_top:
                return ModeFact.exact(TOP)
            return ModeFact.unknown_concrete()
        first = info.params[0] if info.params else None
        if first is not None and first.concrete is not None:
            return ModeFact.exact(first.concrete)
        return ModeFact.unknown_concrete()

    # ------------------------------------------------------------------
    # The recording walk

    def _walk_program(self) -> None:
        bottom = ModeFact.exact(BOTTOM)
        for cls in self.program.classes:
            info = self.table.get(cls.name)
            unknown = ModeFact.unknown_concrete()
            for fdecl in cls.fields:
                if fdecl.init is not None:
                    self._enter(f"{cls.name}.<field {fdecl.name}>",
                                unknown)
                    self._visit_expr(fdecl.init, {})
            if cls.constructor is not None:
                self._enter(f"{cls.name}.<init>", unknown)
                self._visit_stmt(cls.constructor.body, {})
            if cls.attributor is not None:
                self._enter(f"{cls.name}.<attributor>", bottom)
                self._visit_stmt(cls.attributor.body, {})
            for mdecl in cls.methods:
                minfo = info.methods.get(mdecl.name)
                self._enter(f"{cls.name}.{mdecl.name}",
                            self._sender_fact(cls, info, minfo))
                self._visit_stmt(mdecl.body, {})
                if mdecl.attributor is not None:
                    self._enter(f"{cls.name}.{mdecl.name}.<attributor>",
                                bottom)
                    self._visit_stmt(mdecl.attributor.body, {})

    def _enter(self, context: str, sender: ModeFact) -> None:
        self._ctx = context
        self._sender = sender
        self._loop_stack = []
        self._ints = {}

    def _record_site(self, kind: str, node, description: str,
                     status: str, reason: str,
                     target_class: Optional[str] = None) -> None:
        span = getattr(node, "span", None)
        if target_class is None:
            # Mode-case eliminations run against the *enclosing*
            # object's mode: the context's class owns them.
            target_class = self._ctx.split(".", 1)[0]
        trips = ONE
        for bound in self._loop_stack:
            trips = trips * bound
        self.sites.append(CheckSite(
            kind=kind, context=self._ctx, description=description,
            status=status, reason=reason,
            line=span.line if span is not None else None,
            column=span.column if span is not None else None,
            end_line=span.end_line if span is not None else None,
            end_column=span.end_column if span is not None else None,
            loop_depth=len(self._loop_stack),
            local_trips=trips,
            target_class=target_class,
            node=node))

    # ------------------------------------------------------------------
    # Statements (dataflow transfer)

    def _visit_stmt(self, stmt: ast.Stmt,
                    env: Dict[str, ModeFact]) -> None:
        cls = stmt.__class__
        if cls is ast.Block:
            for child in stmt.stmts:
                self._visit_stmt(child, env)
        elif cls is ast.LocalVarDecl:
            fact = (self._visit_expr(stmt.init, env)
                    if stmt.init is not None else None)
            if fact is None:
                env.pop(stmt.name, None)
            else:
                env[stmt.name] = fact
            if stmt.init is not None and stmt.init.__class__ is \
                    ast.IntLit:
                self._ints[stmt.name] = stmt.init.value
            else:
                self._ints.pop(stmt.name, None)
        elif cls is ast.Assign:
            fact = self._visit_expr(stmt.value, env)
            target = stmt.target
            if target.__class__ is ast.Var:
                if target.resolved_kind == "local":
                    if fact is None:
                        env.pop(target.name, None)
                    else:
                        env[target.name] = fact
                if stmt.value.__class__ is ast.IntLit:
                    self._ints[target.name] = stmt.value.value
                else:
                    self._ints.pop(target.name, None)
            elif target.__class__ is ast.FieldAccess:
                self._visit_expr(target.obj, env)
        elif cls is ast.ExprStmt:
            self._visit_expr(stmt.expr, env)
        elif cls is ast.If:
            self._visit_expr(stmt.cond, env)
            entry_ints = dict(self._ints)
            then_env = dict(env)
            self._visit_stmt(stmt.then, then_env)
            then_ints = self._ints
            self._ints = dict(entry_ints)
            else_env = dict(env)
            if stmt.otherwise is not None:
                self._visit_stmt(stmt.otherwise, else_env)
            merged = join_envs(then_env, else_env, self.lattice)
            env.clear()
            env.update(merged)
            self._ints = _merge_ints(then_ints, self._ints)
        elif cls is ast.While:
            # Conservative loop rule: drop every local assigned inside
            # the loop; what remains holds on every iteration and after
            # the loop.  Facts established sequentially *within* an
            # iteration (local declarations) are handled by the body
            # walk itself.
            trips = self._while_trips(stmt)
            for name in assigned_locals(stmt.body):
                env.pop(name, None)
                self._ints.pop(name, None)
            self._visit_expr(stmt.cond, env)
            body_env = dict(env)
            self._loop_stack.append(trips)
            self._visit_stmt(stmt.body, body_env)
            self._loop_stack.pop()
        elif cls is ast.Foreach:
            self._visit_expr(stmt.iterable, env)
            trips = (Bound(len(stmt.iterable.elements))
                     if stmt.iterable.__class__ is ast.ListLit
                     else OMEGA)
            for name in assigned_locals(stmt.body) | {stmt.var_name}:
                env.pop(name, None)
                self._ints.pop(name, None)
            body_env = dict(env)
            self._loop_stack.append(trips)
            self._visit_stmt(stmt.body, body_env)
            self._loop_stack.pop()
        elif cls is ast.Return:
            fact = (self._visit_expr(stmt.expr, env)
                    if stmt.expr is not None else None)
            if self._returns is not None:
                self._returns.append(fact)
        elif cls is ast.TryCatch:
            entry_ints = dict(self._ints)
            body_env = dict(env)
            self._visit_stmt(stmt.body, body_env)
            body_ints = self._ints
            # The handler may resume after any prefix of the body:
            # start from the entry env minus everything the body can
            # rebind.
            handler_env = dict(env)
            self._ints = dict(entry_ints)
            for name in assigned_locals(stmt.body):
                handler_env.pop(name, None)
                self._ints.pop(name, None)
            self._visit_stmt(stmt.handler, handler_env)
            merged = join_envs(body_env, handler_env, self.lattice)
            env.clear()
            env.update(merged)
            self._ints = _merge_ints(body_ints, self._ints)
        elif cls is ast.Throw:
            self._visit_expr(stmt.expr, env)
        # Break / Continue carry no expressions; the surrounding loop
        # rule already discards anything they could invalidate.

    # ------------------------------------------------------------------
    # Counted-loop trip bounds

    def _while_trips(self, stmt: ast.While) -> Bound:
        """Trip-count bound for a ``while``: exact for the counted
        idiom ``i = c; while (i < N) { ...; i = i + s; }`` (the
        increment a top-level body statement, no other write to ``i``,
        no ``continue`` that could skip it), ω otherwise.  ``break``
        only exits early, so the count stays an upper bound."""
        cond = stmt.cond
        if cond.__class__ is not ast.Binary or \
                cond.op not in ("<", "<="):
            return OMEGA
        var, limit = cond.left, cond.right
        if (var.__class__ is not ast.Var or var.resolved_kind != "local"
                or limit.__class__ is not ast.IntLit):
            return OMEGA
        start = self._ints.get(var.name)
        if start is None:
            return OMEGA
        body = stmt.body
        if body.__class__ is not ast.Block:
            return OMEGA
        writes: List[ast.Assign] = []
        for child in iter_stmts(body):
            ccls = child.__class__
            if ccls is ast.Continue:
                return OMEGA
            if ccls is ast.LocalVarDecl and child.name == var.name:
                return OMEGA
            if ccls is ast.Foreach and child.var_name == var.name:
                return OMEGA
            if ccls is ast.Assign and \
                    child.target.__class__ is ast.Var and \
                    child.target.name == var.name:
                writes.append(child)
        if len(writes) != 1 or \
                not any(s is writes[0] for s in body.stmts):
            return OMEGA
        step = _increment_step(writes[0].value, var.name)
        if step is None:
            return OMEGA
        width = limit.value - start + (1 if cond.op == "<=" else 0)
        return Bound(max(0, -(-width // step)))

    def _edge_weight(self) -> Bound:
        weight = ONE
        for bound in self._loop_stack:
            weight = weight * bound
        return weight

    def _record_call_edges(self, class_name: str, method: str) -> None:
        weight = self._edge_weight()
        for minfo in self._override_minfos(class_name, method):
            self.edges.append(
                (self._ctx, f"{minfo.owner}.{minfo.name}", weight))
            if minfo.has_attributor:
                self.edges.append(
                    (self._ctx,
                     f"{minfo.owner}.{minfo.name}.<attributor>",
                     weight))

    def _record_new_edges(self, expr: ast.New) -> None:
        resolved = getattr(expr, "resolved_type", None)
        if not isinstance(resolved, ObjectType) or \
                resolved.class_name not in self.table:
            return
        weight = self._edge_weight()
        info = self.table.get(resolved.class_name)
        # Construction runs every inherited field initializer plus the
        # class's own constructor (see ``Interpreter._construct``).
        current: Optional[ClassInfo] = info
        while current is not None:
            decl = current.decl
            if decl is not None:
                for fdecl in decl.fields:
                    if fdecl.init is not None:
                        self.edges.append(
                            (self._ctx,
                             f"{current.name}.<field {fdecl.name}>",
                             weight))
            current = (self.table.get(current.superclass)
                       if current.superclass else None)
        if info.decl is not None and info.decl.constructor is not None:
            self.edges.append(
                (self._ctx, f"{info.name}.<init>", weight))

    def _attributor_owner(self, info: ClassInfo) -> Optional[str]:
        current: Optional[ClassInfo] = info
        while current is not None:
            decl = current.decl
            if decl is not None and decl.attributor is not None:
                return current.name
            current = (self.table.get(current.superclass)
                       if current.superclass else None)
        return None

    def _record_snapshot_edges(self, class_name: str) -> None:
        # One snapshot runs exactly one attributor, but the object may
        # be any subclass: an edge per distinct reachable attributor.
        weight = self._edge_weight()
        targets: Set[str] = set()
        for info in self._subclasses(class_name):
            owner = self._attributor_owner(info)
            if owner is not None:
                targets.add(owner)
        for owner in sorted(targets):
            self.edges.append(
                (self._ctx, f"{owner}.<attributor>", weight))

    # ------------------------------------------------------------------
    # Expressions

    def _visit_expr(self, expr: ast.Expr,
                    env: Dict[str, ModeFact]) -> Optional[ModeFact]:
        cls = expr.__class__
        fact: Optional[ModeFact] = None
        if cls is ast.Var:
            if expr.resolved_kind == "local":
                fact = env.get(expr.name)
        elif cls is ast.MethodCall:
            fact = self._visit_call(expr, env)
        elif cls is ast.New:
            for arg in expr.args:
                self._visit_expr(arg, env)
            if self._recording:
                self._record_new_edges(expr)
            fact = self._new_fact(expr)
        elif cls is ast.Snapshot:
            fact = self._visit_snapshot(expr, env)
        elif cls is ast.Cast:
            inner = self._visit_expr(expr.expr, env)
            fact = self._cast_fact(expr, inner)
        elif cls is ast.FieldAccess:
            self._visit_expr(expr.obj, env)
        elif cls is ast.MSelect:
            self._visit_expr(expr.expr, env)
            if self._recording:
                self._record_site(
                    MCASE_ELIM, expr,
                    f"mselect(..., {expr.mode_name})", RESIDUAL,
                    "explicit elimination against a run-time mode")
        elif cls is ast.MCaseExpr:
            for branch in expr.branches:
                self._visit_expr(branch.expr, env)
        elif cls is ast.Binary:
            self._visit_expr(expr.left, env)
            self._visit_expr(expr.right, env)
        elif cls is ast.Unary or cls is ast.InstanceOf:
            self._visit_expr(expr.expr, env)
        elif cls is ast.ListLit:
            for element in expr.elements:
                self._visit_expr(element, env)
        # Literals and This carry no facts and no obligations.
        if self._recording and getattr(expr, "implicit_elim", False):
            self._record_site(
                MCASE_ELIM, expr, "implicit mode-case elimination",
                RESIDUAL,
                "eliminated against the enclosing object's run-time "
                "mode")
        return fact

    def _new_fact(self, expr: ast.New) -> Optional[ModeFact]:
        resolved = getattr(expr, "resolved_type", None)
        if not isinstance(resolved, ObjectType):
            return None
        if resolved.class_name not in self.table:
            return None
        info = self.table.get(resolved.class_name)
        if info.params and info.params[0].concrete is not None:
            return ModeFact.exact(info.params[0].concrete)
        if resolved.mode_args and isinstance(resolved.omode, Mode):
            # Constructed at a concrete mode: the object's mode binding
            # is fixed for life (snapshot requires a ?-typed source).
            return ModeFact.exact(resolved.omode)
        return None

    def _cast_fact(self, expr: ast.Cast,
                   inner: Optional[ModeFact]) -> Optional[ModeFact]:
        target = getattr(expr, "resolved_target", None)
        if isinstance(target, ObjectType) and target.mode_args and \
                isinstance(target.omode, Mode):
            # A successful cast to C@mode<m> checks mode equality.
            return ModeFact.exact(target.omode)
        if isinstance(target, ObjectType):
            # Mode-preserving cast: the value is unchanged.
            return inner
        return None

    def _visit_snapshot(self, expr: ast.Snapshot,
                        env: Dict[str, ModeFact]) -> Optional[ModeFact]:
        self._visit_expr(expr.expr, env)
        lo_atom, hi_atom = getattr(expr, "resolved_bounds",
                                   (BOTTOM, TOP))
        class_name = expr.resolved_class_name
        hull = (self._class_hull(class_name)
                if class_name is not None else None)
        lo_concrete = isinstance(lo_atom, Mode)
        hi_concrete = isinstance(hi_atom, Mode)
        if self._recording:
            if class_name is not None and class_name in self.table:
                self._record_snapshot_edges(class_name)
            description = (f"snapshot {class_name or '?'} "
                           f"[{_atom_name(lo_atom)}, "
                           f"{_atom_name(hi_atom)}]")
            if lo_concrete and hi_concrete and lo_atom is BOTTOM \
                    and hi_atom is TOP:
                self._record_site(
                    SNAPSHOT_BOUND, expr, description, ELIDED,
                    "vacuous bounds (bottom/top): every attributed "
                    "mode passes", target_class=class_name)
            elif not (lo_concrete and hi_concrete):
                self._record_site(
                    SNAPSHOT_BOUND, expr, description, RESIDUAL,
                    "bound depends on a mode variable resolved at run "
                    "time", target_class=class_name)
            elif hull is not None and all(
                    self.lattice.clamp(m, lo_atom, hi_atom)
                    for m in hull):
                names = ", ".join(sorted(m.name for m in hull))
                self._record_site(
                    SNAPSHOT_BOUND, expr, description, ELIDED,
                    f"every reachable attributor returns only "
                    f"{{{names}}}, all within the bounds",
                    target_class=class_name)
            else:
                self._record_site(
                    SNAPSHOT_BOUND, expr, description, RESIDUAL,
                    "the attributor may return a mode outside the "
                    "bounds (re-evaluated on every snapshot)",
                    target_class=class_name)
        fact = ModeFact(lo_atom if lo_concrete else BOTTOM,
                        hi_atom if hi_concrete else TOP)
        if hull is not None:
            fact = refine(fact, hull_fact(hull, self.lattice),
                          self.lattice)
        return fact

    def _visit_call(self, expr: ast.MethodCall,
                    env: Dict[str, ModeFact]) -> Optional[ModeFact]:
        receiver_fact: Optional[ModeFact] = None
        if expr.receiver is not None:
            receiver_fact = self._visit_expr(expr.receiver, env)
        for arg in expr.args:
            self._visit_expr(arg, env)
        minfo = expr.resolved_minfo
        rtype = expr.resolved_receiver_type
        if minfo is None or rtype is None:
            # Native / String / List call: no waterfall obligation.
            return None
        if self._recording:
            self._record_call_edges(rtype.class_name, expr.name)
            self._classify_dfall(expr, rtype, minfo, receiver_fact)
        return self._call_result_fact(rtype.class_name, expr.name)

    def _classify_dfall(self, expr: ast.MethodCall, rtype: ObjectType,
                        minfo: MethodInfo,
                        receiver_fact: Optional[ModeFact]) -> None:
        description = f"message {rtype.class_name}.{expr.name}"

        def record(status: str, reason: str) -> None:
            self._record_site(DFALL, expr, description, status, reason,
                              target_class=rtype.class_name)

        if expr.receiver is None or expr.resolved_self_call:
            record(STATIC,
                   "self message: the internal view needs no waterfall "
                   "check")
            return
        if self.table.get(rtype.class_name).transparent:
            record(STATIC,
                   "mode-transparent receiver: runs at the caller's "
                   "mode, no dynamic check")
            return
        mp = minfo.mode_param
        if mp is not None and minfo.has_attributor:
            record(RESIDUAL,
                   "method attributor re-evaluates the guard mode at "
                   "every call")
            return
        if mp is not None and mp.concrete is None:
            record(RESIDUAL,
                   "mode-generic method: guard inferred from arguments "
                   "at run time")
            return
        profile = self._guard_profile(rtype.class_name, expr.name)
        if profile == "varies":
            record(RESIDUAL,
                   "mode characterization varies across subclass "
                   "overrides")
            return
        if profile == "plain":
            guard_fact = receiver_fact
            if guard_fact is None:
                record(RESIDUAL,
                       "mode-variable receiver: the guard depends on "
                       "the instantiation"
                       if isinstance(rtype.omode, str) else
                       "no static fact for the receiver's mode")
                return
        else:
            guard_fact = ModeFact.exact(profile[1])
        sender = self._sender
        if self.lattice.leq(guard_fact.upper, sender.lower):
            record(ELIDED,
                   f"guard <= {guard_fact.upper.name} <= "
                   f"{sender.lower.name} <= sender on every execution")
        else:
            record(RESIDUAL,
                   f"guard in {guard_fact} not provably below sender "
                   f"in {sender}")


def _merge_ints(a: Dict[str, int], b: Dict[str, int]) -> Dict[str, int]:
    """Branch merge for the integer-constant environment: keep only
    names bound to the same value on both paths."""
    return {name: value for name, value in a.items()
            if b.get(name) == value}


def _increment_step(value: ast.Expr, name: str) -> Optional[int]:
    """The step of ``name = name + k`` / ``name = k + name`` (k >= 1),
    or ``None`` when the write is not that idiom."""
    if value.__class__ is not ast.Binary or value.op != "+":
        return None
    left, right = value.left, value.right
    if left.__class__ is ast.Var and left.name == name and \
            right.__class__ is ast.IntLit:
        step = right.value
    elif right.__class__ is ast.Var and right.name == name and \
            left.__class__ is ast.IntLit:
        step = left.value
    else:
        return None
    return step if step >= 1 else None


def _atom_name(atom) -> str:
    if isinstance(atom, Mode):
        if atom is BOTTOM:
            return "_"
        if atom is TOP:
            return "_"
        return atom.name
    return str(atom)


class _Missing:
    pass


_MISSING = _Missing()
