"""The residual-check report: what remains dynamic, and why.

``repro analyze <file>`` renders an :class:`AnalysisReport` — one line
per check obligation with its source span, classification, and reason —
plus the static/elided/residual totals the acceptance tooling and CI
consume via ``--json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.cost import CHECK_COST, CostSummary
from repro.analysis.modeflow import Bound
from repro.analysis.obligations import (ELIDED, RESIDUAL, STATIC,
                                        CheckSite)

__all__ = ["AnalysisReport", "StaticVsObserved", "static_vs_observed"]

#: Fixed order for the status columns.
_STATUSES = (STATIC, ELIDED, RESIDUAL)


@dataclass
class AnalysisReport:
    """All check sites of one program, plus aggregate counts."""

    sites: List[CheckSite] = field(default_factory=list)
    file: Optional[str] = None
    #: The residual-cost rollup (:mod:`repro.analysis.cost`), when the
    #: cost pass ran.
    cost: Optional[CostSummary] = None

    @property
    def counts(self) -> Dict[str, int]:
        out = {status: 0 for status in _STATUSES}
        for site in self.sites:
            out[site.status] = out.get(site.status, 0) + 1
        return out

    def by_kind(self) -> Dict[str, Dict[str, int]]:
        out: Dict[str, Dict[str, int]] = {}
        for site in self.sites:
            bucket = out.setdefault(
                site.kind, {status: 0 for status in _STATUSES})
            bucket[site.status] = bucket.get(site.status, 0) + 1
        return out

    def elided_sites(self) -> List[CheckSite]:
        return [s for s in self.sites if s.status == ELIDED]

    def residual_sites(self) -> List[CheckSite]:
        return [s for s in self.sites if s.status == RESIDUAL]

    def by_class(self) -> Dict[str, Dict[str, object]]:
        """Per-class rollup of check obligations — the advisor's input.

        Sites are grouped by :attr:`CheckSite.owner_class` (the class
        whose mode discipline *causes* the obligation: the receiver of a
        dfall, the snapshotted class of a bound check).  Each bucket
        carries the status counts plus the residual/elided site-ID lists
        so ``repro advise`` can join them against profiler counts on the
        shared ``<kind>@<line>:<column>`` keys.
        """
        out: Dict[str, Dict[str, object]] = {}
        for site in self._sorted():
            bucket = out.setdefault(site.owner_class, {
                "counts": {status: 0 for status in _STATUSES},
                "residual_sites": [],
                "elided_sites": [],
            })
            counts = bucket["counts"]
            counts[site.status] = counts.get(site.status, 0) + 1
            if site.status == RESIDUAL:
                bucket["residual_sites"].append(site.site_id)
            elif site.status == ELIDED:
                bucket["elided_sites"].append(site.site_id)
        return {name: out[name] for name in sorted(out)}

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "file": self.file,
            "counts": self.counts,
            "by_kind": self.by_kind(),
            "by_class": self.by_class(),
            "checks": [site.as_dict() for site in self._sorted()],
        }
        if self.cost is not None:
            out["residual_cost"] = self.cost.as_dict()
        return out

    def _sorted(self) -> List[CheckSite]:
        return sorted(
            self.sites,
            key=lambda s: (s.line if s.line is not None else 0,
                           s.column if s.column is not None else 0,
                           s.kind))

    def render(self) -> str:
        """Human-readable report (the default ``repro analyze`` output)."""
        counts = self.counts
        header = (f"{self.file or '<program>'}: {len(self.sites)} check "
                  f"site(s) - {counts[STATIC]} static, "
                  f"{counts[ELIDED]} elided, {counts[RESIDUAL]} residual")
        if not self.sites:
            return header
        rows = [("line", "kind", "status", "bound", "site", "reason")]
        for site in self._sorted():
            if site.status == RESIDUAL and site.firings is not None:
                bound = "<=" + site.firings.render()
                if site.fuel_capped:
                    bound += "*"
            else:
                bound = "-"
            rows.append((
                str(site.line) if site.line is not None else "-",
                site.kind, site.status, bound,
                f"{site.context}: {site.description}", site.reason))
        widths = [max(len(row[col]) for row in rows)
                  for col in range(5)]
        lines = [header]
        for row in rows:
            lines.append("  " + "  ".join(
                [row[col].ljust(widths[col]) for col in range(5)]
                + [row[5]]).rstrip())
        lines.extend(self._render_cost())
        return "\n".join(lines)

    def _render_cost(self) -> List[str]:
        """The static residual-cost guarantee section."""
        if self.cost is None or not self.cost.program.residual_sites:
            return []
        units = ", ".join(f"{kind}={cost}"
                          for kind, cost in sorted(CHECK_COST.items()))
        lines = ["residual cost bounds "
                 f"(per-firing units: {units}; transient=1):"]
        for name, cls_cost in sorted(self.cost.by_class.items()):
            lines.append(
                f"  {name}: {cls_cost.residual_sites} residual "
                f"site(s), <={cls_cost.firings.render()} firings, "
                f"<={cls_cost.full_units.render()} units full, "
                f"<={cls_cost.transient_units.render()} transient")
        program = self.cost.program
        suffix = ""
        if not program.firings.finite:
            suffix = (" (unbounded loop or recursion; rerun with "
                      "--fuel N for a fuel-capped bound)")
        elif self.cost.fuel is not None:
            suffix = f" (* = capped by --fuel {self.cost.fuel})"
        lines.append(
            f"  program: {program.residual_sites} residual site(s), "
            f"<={program.firings.render()} firings, "
            f"<={program.full_units.render()} units full, "
            f"<={program.transient_units.render()} transient{suffix}")
        return lines


def _locatable(sid: str) -> bool:
    """``kind@line:column`` site ids can be joined against the analysis;
    symbolic ids (``dfall@?``, ``dfall@Crawler.fetch``) cannot."""
    _, sep, loc = sid.partition("@")
    if not sep or ":" not in loc:
        return False
    line, _, column = loc.partition(":")
    return line.isdigit() and column.isdigit()


@dataclass
class StaticVsObserved:
    """Join of the static elision plan with a runtime check profile.

    A *violation* is the thing the whole subsystem exists to catch: a
    check site the analysis classified as fully elided that nonetheless
    fired at runtime, or an executed, source-located check the analysis
    never saw.  Observed sites without source coordinates (runtime-boot
    or embedded-runtime checks) are reported informationally but can
    never be violations — the analysis has nothing to say about them.
    """

    file: Optional[str] = None
    matches: List[Dict[str, object]] = field(default_factory=list)
    violations: List[Dict[str, object]] = field(default_factory=list)
    unlocated: List[Dict[str, object]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations

    def as_dict(self) -> Dict[str, object]:
        return {
            "file": self.file,
            "clean": self.clean,
            "matches": self.matches,
            "violations": self.violations,
            "unlocated": self.unlocated,
        }

    def render(self) -> str:
        name = self.file or "<program>"
        if self.clean:
            header = (f"{name}: static-vs-observed clean - "
                      f"{len(self.matches)} site(s) agree")
        else:
            header = (f"{name}: static-vs-observed FAILED - "
                      f"{len(self.violations)} violation(s)")
        lines = [header]
        for row in self.violations:
            lines.append(f"  VIOLATION {row['site']}: executed "
                         f"{row['executed']}x - {row['reason']}")
        for row in self.unlocated:
            lines.append(f"  note {row['site']}: executed "
                         f"{row['executed']}x (no source span; "
                         "outside the analysis scope)")
        return "\n".join(lines)


def static_vs_observed(report: AnalysisReport, profile) -> StaticVsObserved:
    """Diff analysis predictions against observed check firings.

    ``profile`` is a :class:`repro.obs.prof.Profile` (duck-typed: only
    its ``check_sites`` mapping is read, so merged/deserialized profiles
    work too).  Sound elision means: a site whose every obligation was
    classified ``elided`` must show ``executed == 0`` at runtime.
    Sound cost bounds mean: a residual site with a *finite* static
    firings bound must never fire more often than the bound says.
    """
    predicted: Dict[str, List[str]] = {}
    bounds: Dict[str, Bound] = {}
    for site in report.sites:
        predicted.setdefault(site.site_id, []).append(site.status)
        if site.status == RESIDUAL and site.firings is not None and \
                not site.fuel_capped:
            prior = bounds.get(site.site_id)
            bounds[site.site_id] = (site.firings if prior is None
                                    else prior + site.firings)

    diff = StaticVsObserved(file=report.file)
    for sid in sorted(profile.check_sites):
        observed = profile.check_sites[sid]
        executed = int(observed.get("executed", 0))
        elided = int(observed.get("elided", 0))
        row = {"site": sid, "executed": executed, "elided": elided}
        statuses = predicted.get(sid)
        if statuses is None:
            if not _locatable(sid):
                diff.unlocated.append(row)
            elif executed:
                row["reason"] = "site unknown to the analysis"
                diff.violations.append(row)
            else:
                diff.matches.append(row)
            continue
        row["predicted"] = {
            status: statuses.count(status) for status in _STATUSES
            if status in statuses}
        bound = bounds.get(sid)
        if bound is not None:
            row["bound"] = bound.as_json()
        if executed and all(status == ELIDED for status in statuses):
            row["reason"] = "fired despite being classified elided"
            diff.violations.append(row)
        elif bound is not None and not bound.covers(executed):
            row["reason"] = ("exceeded the static residual bound "
                             f"<={bound.render()}")
            diff.violations.append(row)
        else:
            diff.matches.append(row)
    return diff
