"""The residual-check report: what remains dynamic, and why.

``repro analyze <file>`` renders an :class:`AnalysisReport` — one line
per check obligation with its source span, classification, and reason —
plus the static/elided/residual totals the acceptance tooling and CI
consume via ``--json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.obligations import (ELIDED, RESIDUAL, STATIC,
                                        CheckSite)

__all__ = ["AnalysisReport"]

#: Fixed order for the status columns.
_STATUSES = (STATIC, ELIDED, RESIDUAL)


@dataclass
class AnalysisReport:
    """All check sites of one program, plus aggregate counts."""

    sites: List[CheckSite] = field(default_factory=list)
    file: Optional[str] = None

    @property
    def counts(self) -> Dict[str, int]:
        out = {status: 0 for status in _STATUSES}
        for site in self.sites:
            out[site.status] = out.get(site.status, 0) + 1
        return out

    def by_kind(self) -> Dict[str, Dict[str, int]]:
        out: Dict[str, Dict[str, int]] = {}
        for site in self.sites:
            bucket = out.setdefault(
                site.kind, {status: 0 for status in _STATUSES})
            bucket[site.status] = bucket.get(site.status, 0) + 1
        return out

    def elided_sites(self) -> List[CheckSite]:
        return [s for s in self.sites if s.status == ELIDED]

    def residual_sites(self) -> List[CheckSite]:
        return [s for s in self.sites if s.status == RESIDUAL]

    def as_dict(self) -> Dict[str, object]:
        return {
            "file": self.file,
            "counts": self.counts,
            "by_kind": self.by_kind(),
            "checks": [site.as_dict() for site in self._sorted()],
        }

    def _sorted(self) -> List[CheckSite]:
        return sorted(
            self.sites,
            key=lambda s: (s.line if s.line is not None else 0,
                           s.column if s.column is not None else 0,
                           s.kind))

    def render(self) -> str:
        """Human-readable report (the default ``repro analyze`` output)."""
        counts = self.counts
        header = (f"{self.file or '<program>'}: {len(self.sites)} check "
                  f"site(s) - {counts[STATIC]} static, "
                  f"{counts[ELIDED]} elided, {counts[RESIDUAL]} residual")
        if not self.sites:
            return header
        rows = [("line", "kind", "status", "site", "reason")]
        for site in self._sorted():
            rows.append((
                str(site.line) if site.line is not None else "-",
                site.kind, site.status,
                f"{site.context}: {site.description}", site.reason))
        widths = [max(len(row[col]) for row in rows)
                  for col in range(4)]
        lines = [header]
        for row in rows:
            lines.append("  " + "  ".join(
                [row[col].ljust(widths[col]) for col in range(4)]
                + [row[4]]).rstrip())
        return "\n".join(lines)
