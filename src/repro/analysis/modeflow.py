"""Mode-flow facts: the dataflow domain of the analysis subsystem.

The runtime's dynamic checks all ask questions about an object's
*effective mode* (``ObjectV.effective_mode``).  The dataflow pass
tracks, per local variable, a :class:`ModeFact` — a proof that the
variable's value (when non-null) is an object whose effective mode is a
**concrete** mode lying inside a lattice interval.  Facts come only
from expressions whose mode is *dynamically enforced*:

* ``new C@mode<m>(...)`` — the mode is fixed by construction;
* ``snapshot e [lo, hi]`` — the bound check (executed, or elided
  because it provably passes) guarantees ``lo <= mode <= hi``, and a
  snapshotted object's mode never changes again (later snapshots of
  the same object always copy, see ``values.py``);
* ``(C@mode<m>) e`` — a successful cast checks mode equality;
* a call whose callee (and every subclass override) provably *returns*
  a fact-carrying value (the interprocedural summary).

Declared types and declared mode-parameter bounds are deliberately
**not** trusted: the runtime never re-checks them (only snapshot-site
bounds are enforced), so a fact resting on a declaration would not
entail the dynamic guard.  See docs/ANALYSIS.md for the full soundness
argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from typing import Dict, FrozenSet, Iterable, Optional, Union

from repro.core.modes import BOTTOM, TOP, Mode, ModeLattice

__all__ = ["ModeFact", "join_facts", "join_envs", "glb", "lub",
           "hull_fact", "refine", "Bound", "OMEGA", "ONE", "ZERO"]


@dataclass(frozen=True)
class Bound:
    """A symbolic execution-count bound: a non-negative integer or ω.

    The domain of the residual-cost pass (:mod:`.cost`): how many times
    a program point can execute.  ``count is None`` encodes ω (no
    static bound — an unbounded loop or a reachable call-graph cycle).
    Addition and multiplication are the usual ω-absorbing arithmetic,
    except ``0 * ω = 0``: a point inside an unbounded loop that is
    itself unreachable still never executes.
    """

    count: Optional[int]

    @property
    def finite(self) -> bool:
        return self.count is not None

    def __add__(self, other: "Bound") -> "Bound":
        if self.count is None or other.count is None:
            return OMEGA
        return Bound(self.count + other.count)

    def __mul__(self, other: "Bound") -> "Bound":
        if self.count == 0 or other.count == 0:
            return ZERO
        if self.count is None or other.count is None:
            return OMEGA
        return Bound(self.count * other.count)

    def scaled(self, units: int) -> "Bound":
        """``self * units`` for a plain non-negative int."""
        if units == 0 or self.count == 0:
            return ZERO
        if self.count is None:
            return OMEGA
        return Bound(self.count * units)

    def covers(self, observed: int) -> bool:
        """Is an observed execution count consistent with this bound?"""
        return self.count is None or observed <= self.count

    def capped(self, fuel: Optional[int]) -> "Bound":
        """Replace ω by a finite fuel budget (``repro analyze --fuel``)."""
        if self.count is None and fuel is not None:
            return Bound(fuel)
        return self

    def render(self) -> str:
        return "ω" if self.count is None else str(self.count)

    def as_json(self) -> Union[int, None]:
        """JSON form: the integer, or ``null`` for ω."""
        return self.count

    def __str__(self) -> str:
        return self.render()


#: Shared constants of the bound domain.
OMEGA = Bound(None)
ONE = Bound(1)
ZERO = Bound(0)


@dataclass(frozen=True)
class ModeFact:
    """``lower <= effective_mode <= upper``, with the mode guaranteed to
    be a concrete (non-``?``) member of the lattice at run time."""

    lower: Mode
    upper: Mode

    @classmethod
    def exact(cls, mode: Mode) -> "ModeFact":
        return cls(mode, mode)

    @classmethod
    def unknown_concrete(cls) -> "ModeFact":
        """Some concrete mode, with no interval information."""
        return cls(BOTTOM, TOP)

    @property
    def is_exact(self) -> bool:
        return self.lower is self.upper

    def __str__(self) -> str:
        if self.is_exact:
            return self.lower.name
        return f"[{self.lower.name}, {self.upper.name}]"


def join_facts(a: Optional[ModeFact], b: Optional[ModeFact],
               lattice: ModeLattice) -> Optional[ModeFact]:
    """Control-flow join: the weakest fact implied by both.

    ``None`` (no fact — the value may be null, un-snapshotted, or not
    an object at all) absorbs everything.  Interval joins widen:
    ``meet`` of the lowers, ``join`` of the uppers.
    """
    if a is None or b is None:
        return None
    if a == b:
        return a
    return ModeFact(lattice.meet(a.lower, b.lower),
                    lattice.join(a.upper, b.upper))


def join_envs(a: Dict[str, ModeFact], b: Dict[str, ModeFact],
              lattice: ModeLattice) -> Dict[str, ModeFact]:
    """Join two local-variable fact environments (branch merge)."""
    out: Dict[str, ModeFact] = {}
    for name, fact in a.items():
        other = b.get(name)
        if other is None:
            continue
        joined = join_facts(fact, other, lattice)
        if joined is not None:
            out[name] = joined
    return out


def glb(modes: Iterable[Mode], lattice: ModeLattice) -> Mode:
    return reduce(lattice.meet, modes)


def lub(modes: Iterable[Mode], lattice: ModeLattice) -> Mode:
    return reduce(lattice.join, modes)


def hull_fact(modes: FrozenSet[Mode],
              lattice: ModeLattice) -> ModeFact:
    """The tightest interval containing every mode in ``modes``."""
    return ModeFact(glb(modes, lattice), lub(modes, lattice))


def refine(fact: ModeFact, other: ModeFact,
           lattice: ModeLattice) -> ModeFact:
    """Intersect two facts known to hold simultaneously.

    ``mode >= fact.lower`` and ``mode >= other.lower`` imply
    ``mode >= join(lowers)`` (the mode is an upper bound of both, hence
    at least their least upper bound); dually for the uppers.
    """
    return ModeFact(lattice.join(fact.lower, other.lower),
                    lattice.meet(fact.upper, other.upper))
