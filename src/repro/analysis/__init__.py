"""repro.analysis — static analysis between typechecking and execution.

Three cooperating passes over a ``CheckedProgram``:

* the **check-obligation pass** (:mod:`.obligations`) enumerates every
  dynamic check the runtime would emit — dfall guards, snapshot bound
  checks, mode-case eliminations — with a source span and a reason;
* the **mode-flow pass** (:mod:`.modeflow`, driven by the same walk)
  propagates dynamically-enforced mode intervals through locals and
  method boundaries;
* the **elision planner** (:mod:`.planner`) annotates the AST so the
  interpreter and compiler skip the checks proven to always pass;
* the **residual-cost pass** (:mod:`.cost`) bounds how many times each
  residual check can fire (loop-trip bounds × interprocedural
  activation counts) — the static overhead guarantee ``repro analyze``
  prints and ``static_vs_observed`` validates against profiler counts.

Entry points: :func:`analyze_program` (report only, or ``annotate=True``
to also plan), :func:`plan_elisions` (analyze + annotate, what
``repro run`` uses).  The soundness argument lives in docs/ANALYSIS.md.
"""

from repro.analysis.cost import (CHECK_COST, TRANSIENT_COST, ClassCost,
                                 CostSummary, activation_counts,
                                 attach_cost_bounds)
from repro.analysis.modeflow import (Bound, ModeFact, OMEGA, ONE, ZERO,
                                     join_facts, join_envs)
from repro.analysis.obligations import (CheckSite, ProgramAnalyzer,
                                        DFALL, SNAPSHOT_BOUND,
                                        MCASE_ELIM, STATIC, ELIDED,
                                        RESIDUAL)
from repro.analysis.planner import (analyze_program, apply_assignment,
                                    apply_plan, plan_elisions)
from repro.analysis.report import (AnalysisReport, StaticVsObserved,
                                   static_vs_observed)

__all__ = ["ModeFact", "join_facts", "join_envs", "CheckSite",
           "ProgramAnalyzer", "AnalysisReport", "StaticVsObserved",
           "static_vs_observed", "analyze_program", "apply_plan",
           "apply_assignment", "plan_elisions", "DFALL",
           "SNAPSHOT_BOUND", "MCASE_ELIM", "STATIC", "ELIDED",
           "RESIDUAL", "Bound", "OMEGA", "ONE", "ZERO", "CHECK_COST",
           "TRANSIENT_COST", "ClassCost", "CostSummary",
           "activation_counts", "attach_cost_bounds"]
