"""Static residual-cost bounds: how much can the residual checks cost?

The elision pass (:mod:`.obligations`) decides *which* checks must run;
this pass bounds *how often* they can run, in the style of Klemen et
al., "An Approach to Static Performance Guarantees for Programs with
Run-time Checks" (see PAPERS.md).  The bound for one site is

    ``firings(site) = local_trips(site) * activations(context)``

where ``local_trips`` is the product of the enclosing loops'
trip-count bounds (exact for counted loops, ω otherwise — recorded by
the obligation walk) and ``activations`` is a whole-program bound on
how many times the site's enclosing body can be entered, computed here
by a fixpoint over the call multigraph the walk records:

* the boot invocation contributes one activation of ``Main.main`` and
  one construction of ``Main``;
* a call site contributes ``activations(caller) * weight`` activations
  to every override the dispatch can reach (and to its method
  attributor), with ``weight`` the caller-side loop-trip product;
* ``new C`` contributes to ``C.<init>`` and every inherited field
  initializer; ``snapshot`` contributes to every reachable class
  attributor;
* any reachable call-graph cycle (recursion) makes the whole strongly
  connected component ω.

Firings are then weighted by an abstract per-firing *depth cost*
(:data:`CHECK_COST`) and rolled up per class and per program — the
static overhead guarantee ``repro analyze`` prints.  With ``--fuel N``
every ω factor is replaced by ``N``: each loop trip and each
activation consumes at least one fuel step, so the fuel budget caps
both factors independently (the product is then a weak but sound
bound).

The same per-site bounds feed the runtime oracle: ``repro profile``
counts observed firings under identical site IDs, and
``static_vs_observed`` flags any residual site that fired more often
than its finite static bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.modeflow import OMEGA, ONE, ZERO, Bound
from repro.analysis.obligations import RESIDUAL, ProgramAnalyzer

__all__ = ["CHECK_COST", "TRANSIENT_COST", "ClassCost", "CostSummary",
           "activation_counts", "attach_cost_bounds"]

#: Abstract per-firing depth cost of a full (deep) check.  The units
#: reflect the work the interpreter does per firing: a dfall check
#: derives the guard mode and walks the lattice (2), a snapshot bound
#: check re-runs mode resolution plus two lattice walks and may copy
#: the object (3), a mode-case elimination is one table lookup (1).
CHECK_COST: Dict[str, int] = {
    "dfall": 2,
    "snapshot_bound": 3,
    "mcase_elim": 1,
}

#: Under ``--checks transient`` every collapsed check is a single
#: mode-tag comparison, regardless of kind.
TRANSIENT_COST = 1


@dataclass
class ClassCost:
    """Residual-check cost rollup for one class (or the program)."""

    residual_sites: int = 0
    firings: Bound = ZERO
    full_units: Bound = ZERO
    transient_units: Bound = ZERO

    def add_site(self, firings: Bound, cost_units: int) -> None:
        self.residual_sites += 1
        self.firings = self.firings + firings
        self.full_units = self.full_units + firings.scaled(cost_units)
        self.transient_units = (self.transient_units
                                + firings.scaled(TRANSIENT_COST))

    def as_dict(self) -> Dict[str, object]:
        return {
            "residual_sites": self.residual_sites,
            "firings_bound": self.firings.as_json(),
            "full_units_bound": self.full_units.as_json(),
            "transient_units_bound": self.transient_units.as_json(),
        }


@dataclass
class CostSummary:
    """The program-level residual-cost report section."""

    by_class: Dict[str, ClassCost] = field(default_factory=dict)
    program: ClassCost = field(default_factory=ClassCost)
    fuel: Optional[int] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "unit_costs": {"full": dict(CHECK_COST),
                           "transient": TRANSIENT_COST},
            "fuel": self.fuel,
            "by_class": {name: cost.as_dict()
                         for name, cost in sorted(self.by_class.items())},
            "program": self.program.as_dict(),
        }


# ---------------------------------------------------------------------------
# Activation counts: fixpoint over the recorded call multigraph


def _roots(analyzer: ProgramAnalyzer) -> Dict[str, Bound]:
    """Boot contributions: one ``Main.main`` call plus one ``Main``
    construction (inherited field initializers and the constructor —
    mirrors ``Interpreter.run``)."""
    roots: Dict[str, Bound] = {}
    table = analyzer.table
    if "Main" not in table:
        return roots
    roots["Main.main"] = ONE
    info = table.get("Main")
    current = info
    while current is not None:
        decl = current.decl
        if decl is not None:
            for fdecl in decl.fields:
                if fdecl.init is not None:
                    key = f"{current.name}.<field {fdecl.name}>"
                    roots[key] = roots.get(key, ZERO) + ONE
        current = (table.get(current.superclass)
                   if current.superclass else None)
    if info.decl is not None and info.decl.constructor is not None:
        roots["Main.<init>"] = ONE
    return roots


def _strongly_connected(nodes: List[str],
                        succ: Dict[str, List[str]]) -> List[List[str]]:
    """Iterative Tarjan.  SCCs are emitted callees-first (reverse
    topological order of the condensation)."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Dict[str, bool] = {}
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    for start in nodes:
        if start in index:
            continue
        work: List[Tuple[str, int]] = [(start, 0)]
        while work:
            node, child_i = work[-1]
            if child_i == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            children = succ.get(node, ())
            for i in range(child_i, len(children)):
                child = children[i]
                if child not in index:
                    work[-1] = (node, i + 1)
                    work.append((child, 0))
                    advanced = True
                    break
                if on_stack.get(child):
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if low[node] == index[node]:
                scc: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs


def activation_counts(analyzer: ProgramAnalyzer) -> Dict[str, Bound]:
    """``{context: Bound}`` — how many times each body can be entered
    in one program run."""
    roots = _roots(analyzer)
    edges = analyzer.edges
    nodes: List[str] = []
    seen = set()
    for _, ctx in analyzer._iter_program_bodies():
        if ctx not in seen:
            seen.add(ctx)
            nodes.append(ctx)
    for src, dst, _ in edges:
        for ctx in (src, dst):
            if ctx not in seen:
                seen.add(ctx)
                nodes.append(ctx)
    for ctx in roots:
        if ctx not in seen:
            seen.add(ctx)
            nodes.append(ctx)

    succ: Dict[str, List[str]] = {}
    incoming: Dict[str, List[Tuple[str, Bound]]] = {}
    self_cyclic = set()
    for src, dst, weight in edges:
        succ.setdefault(src, []).append(dst)
        incoming.setdefault(dst, []).append((src, weight))
        if src == dst:
            self_cyclic.add(src)

    sccs = _strongly_connected(nodes, succ)
    scc_id: Dict[str, int] = {}
    for i, scc in enumerate(sccs):
        for node in scc:
            scc_id[node] = i

    counts: Dict[str, Bound] = {node: ZERO for node in nodes}
    # Callers before callees: reverse of Tarjan's emission order.
    for scc in reversed(sccs):
        for node in scc:
            total = roots.get(node, ZERO)
            for src, weight in incoming.get(node, ()):
                if scc_id[src] != scc_id[node]:
                    total = total + counts[src] * weight
            counts[node] = total
        cyclic = len(scc) > 1 or scc[0] in self_cyclic
        if cyclic and any(counts[node] != ZERO for node in scc):
            # A reachable recursion: no static activation bound.
            for node in scc:
                counts[node] = OMEGA
    return counts


# ---------------------------------------------------------------------------
# Attaching bounds to sites


def attach_cost_bounds(analyzer: ProgramAnalyzer,
                       fuel: Optional[int] = None) -> CostSummary:
    """Annotate every recorded site with its activation/firings bounds
    and return the per-class/program rollup.  ``fuel`` (if given)
    replaces ω factors: a loop can trip and a body can activate at
    most once per fuel step, so each factor is independently capped by
    the budget."""
    counts = activation_counts(analyzer)
    summary = CostSummary(fuel=fuel)
    for site in analyzer.sites:
        acts = counts.get(site.context, OMEGA)
        trips = site.local_trips
        capped = False
        if fuel is not None:
            if not trips.finite:
                trips, capped = Bound(fuel), True
            if not acts.finite:
                acts, capped = Bound(fuel), True
        site.activations = acts
        site.firings = trips * acts
        site.fuel_capped = capped
        site.cost_units = CHECK_COST.get(site.kind, 1)
        if site.status == RESIDUAL:
            cls_cost = summary.by_class.setdefault(site.owner_class,
                                                   ClassCost())
            cls_cost.add_site(site.firings, site.cost_units)
            summary.program.add_site(site.firings, site.cost_units)
    return summary
