"""The elision planner: turn ``elided`` verdicts into AST annotations.

The execution engines read two per-node flags (class-level defaults
on the AST nodes, following the ``resolved_kind`` idiom):

* ``MethodCall.elide_dfall`` — skip the dynamic waterfall check in
  ``Interpreter._invoke``;
* ``Snapshot.elide_bound`` — skip the bound check in
  ``Interpreter._snapshot_value``.

The register-bytecode VM consumes the same flags at lowering time by
**opcode selection**: an annotated call lowers to ``CALL_NODFALL``
instead of ``CALL_DFALL``, an annotated snapshot to
``SNAPSHOT_ELIDE`` — the elided check never enters the instruction
stream (``repro disasm`` shows the handoff; see ``docs/VM.md``).

Both flags are inert unless ``InterpOptions.elide_checks`` is on and
the run is neither ``silent`` nor ``baseline`` (those options change
the dynamic semantics the proofs rely on; the interpreter gates them
out, see ``interp.py``).  Planning is deterministic and idempotent for
a given ``CheckedProgram``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.analysis.cost import attach_cost_bounds
from repro.analysis.obligations import (DFALL, ELIDED, RESIDUAL,
                                        SNAPSHOT_BOUND, CheckSite,
                                        ProgramAnalyzer)
from repro.analysis.report import AnalysisReport
from repro.lang.typechecker import CheckedProgram

__all__ = ["analyze_program", "plan_elisions", "apply_plan",
           "apply_assignment"]


def apply_plan(sites: List[CheckSite]) -> int:
    """Annotate the AST for every ``elided`` site; returns the count."""
    applied = 0
    for site in sites:
        if site.status != ELIDED or site.node is None:
            continue
        if site.kind == DFALL:
            site.node.elide_dfall = True
            applied += 1
        elif site.kind == SNAPSHOT_BOUND:
            site.node.elide_bound = True
            applied += 1
    return applied


def apply_assignment(sites: List[CheckSite],
                     pinned: Iterable[str]) -> int:
    """Annotate the AST as if ``pinned`` classes were statically moded.

    This is the advisor's "what if" operator (``repro advise``): pinning
    a ``?``-moded class to a static mode discharges exactly the residual
    obligations *targeting* it — its dfall guards and snapshot bound
    checks become typechecker facts, so the engines may skip them.  The
    attributor still runs (the class still adapts); only the checks that
    re-verify its mode at use sites are discharged.  Sites the planner
    already proved elidable are annotated too, same as ``apply_plan``.

    Returns the number of AST annotations applied.  Like ``apply_plan``,
    the flags are only read when ``InterpOptions.elide_checks`` is on.
    """
    pinned = set(pinned)
    applied = apply_plan(sites)
    for site in sites:
        if site.status != RESIDUAL or site.node is None:
            continue
        if site.owner_class not in pinned:
            continue
        if site.kind == DFALL:
            site.node.elide_dfall = True
            applied += 1
        elif site.kind == SNAPSHOT_BOUND:
            site.node.elide_bound = True
            applied += 1
    return applied


def analyze_program(checked: CheckedProgram, *, annotate: bool = False,
                    file: str = None,
                    fuel: Optional[int] = None) -> AnalysisReport:
    """Run the obligation + mode-flow + residual-cost passes.

    With ``annotate=True`` the elision plan is also applied to the AST
    (what ``plan_elisions`` and ``repro run`` do); without it the
    report is purely informational (what ``repro analyze`` does).
    ``fuel`` caps ω cost-bound factors by the runtime fuel budget
    (``repro analyze --fuel``).
    """
    analyzer = ProgramAnalyzer(checked)
    sites = analyzer.analyze()
    cost = attach_cost_bounds(analyzer, fuel=fuel)
    if annotate:
        apply_plan(sites)
    return AnalysisReport(sites=sites, file=file, cost=cost)


def plan_elisions(checked: CheckedProgram) -> AnalysisReport:
    """Analyze and annotate in one step (the ``repro run`` path)."""
    return analyze_program(checked, annotate=True)
