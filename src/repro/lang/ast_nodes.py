"""Abstract syntax for the ENT surface language.

The grammar follows the paper's formal core (Featherweight Java plus the
ENT-specific forms: ``modes`` declarations, mode-annotated classes and
methods, attributors, ``snapshot``, ``mcase`` and mode-case elimination),
extended with the imperative conveniences the paper's listings use freely:
statements, locals, assignment, conditionals, loops, ``foreach``,
``try``/``catch`` over ``EnergyException``, and primitive types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.errors import SourceSpan

# ---------------------------------------------------------------------------
# Type syntax


@dataclass
class TypeNode:
    """Base class for surface type syntax."""

    span: Optional[SourceSpan] = field(default=None, kw_only=True)


@dataclass
class PrimTypeNode(TypeNode):
    """``int``, ``double``, ``boolean``, ``String``, ``void`` or ``mode``."""

    name: str = ""


@dataclass
class ModeArgNode:
    """One entry in a use-site ``@mode<...>`` argument list.

    ``dynamic`` renders ``?``; otherwise ``name`` is a mode constant or a
    mode variable in scope (resolved during typechecking).
    """

    dynamic: bool = False
    name: Optional[str] = None
    span: Optional[SourceSpan] = field(default=None, kw_only=True)


@dataclass
class ClassTypeNode(TypeNode):
    """``C`` or ``C@mode<...>``.  ``mode_args is None`` means elided."""

    name: str = ""
    mode_args: Optional[List[ModeArgNode]] = None


@dataclass
class MCaseTypeNode(TypeNode):
    """``mcase<T>``."""

    element: TypeNode = field(default_factory=PrimTypeNode)


# ---------------------------------------------------------------------------
# Mode parameter syntax (declaration sites)


@dataclass
class ModeParamNode:
    """One declaration-site mode parameter.

    Forms accepted by the parser::

        ?                    dynamic, anonymous internal variable
        ?X                   dynamic, internal variable X
        X                    static generic variable X
        m                    concrete mode m (only legal as first param)
        lo <= X <= hi        bounded variants of the above (also ?lo<=X<=hi)
    """

    dynamic: bool = False
    var: Optional[str] = None       # variable name, if any
    concrete: Optional[str] = None  # concrete mode name, if fixed
    lower: Optional[str] = None     # bound names; None means bottom/top
    upper: Optional[str] = None
    span: Optional[SourceSpan] = field(default=None, kw_only=True)


# ---------------------------------------------------------------------------
# Expressions


@dataclass
class Expr:
    span: Optional[SourceSpan] = field(default=None, kw_only=True)


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class StringLit(Expr):
    value: str = ""


@dataclass
class BoolLit(Expr):
    value: bool = False


@dataclass
class NullLit(Expr):
    pass


@dataclass
class Var(Expr):
    """An identifier.  May resolve to a local, a parameter, an implicit
    field of ``this``, a mode constant (inside attributors / mcase code),
    or a native static class (e.g. ``Ext``)."""

    name: str = ""

    # The typechecker overwrites this with an instance attribute
    # ("local" / "field" / "mode" / "native").  The class-level default
    # lets the interpreter's hot path read ``expr.resolved_kind``
    # directly instead of paying for ``getattr`` with a fallback.
    resolved_kind = None


@dataclass
class This(Expr):
    pass


@dataclass
class FieldAccess(Expr):
    obj: Expr = field(default_factory=This)
    name: str = ""


@dataclass
class MethodCall(Expr):
    receiver: Optional[Expr] = None  # None => implicit this
    name: str = ""
    args: List[Expr] = field(default_factory=list)

    # Typechecker annotations (instance attributes overwrite the
    # class-level defaults, the ``Var.resolved_kind`` idiom): the
    # receiver's static type, the resolved method, and whether the call
    # is statically a self message.  ``runtime_mode_check`` marks calls
    # whose guard mode is only known at run time (method attributor /
    # generic method at ``?``).
    resolved_receiver_type = None
    resolved_minfo = None
    resolved_self_call = False
    runtime_mode_check = False
    # Set by repro.analysis.planner when the dfall check at this site is
    # proven to always hold; the interpreter/compiler skip it when
    # ``InterpOptions.elide_checks`` is on.
    elide_dfall = False


@dataclass
class New(Expr):
    class_name: str = ""
    mode_args: Optional[List[ModeArgNode]] = None
    args: List[Expr] = field(default_factory=list)


@dataclass
class Cast(Expr):
    target: TypeNode = field(default_factory=PrimTypeNode)
    expr: Expr = field(default_factory=NullLit)


@dataclass
class SnapshotBound:
    """One end of a ``snapshot e [lo, hi]`` range.

    ``name is None`` means the bound was written ``_`` (unbounded); the
    name may be a mode constant or a mode variable in scope.
    """

    name: Optional[str] = None
    span: Optional[SourceSpan] = field(default=None, kw_only=True)


@dataclass
class Snapshot(Expr):
    expr: Expr = field(default_factory=NullLit)
    lower: Optional[SnapshotBound] = None
    upper: Optional[SnapshotBound] = None

    # Typechecker annotation: the snapshotted expression's class name.
    resolved_class_name = None
    # Set by repro.analysis.planner when the bound check is proven to
    # always pass (vacuous bounds, or the attributor can only return
    # modes inside the bounds).
    elide_bound = False


@dataclass
class MCaseBranch:
    mode_name: Optional[str] = None  # None => default branch
    expr: Expr = field(default_factory=NullLit)
    span: Optional[SourceSpan] = field(default=None, kw_only=True)


@dataclass
class MCaseExpr(Expr):
    """``mcase<T>{ m1: e1; ...; default: e }`` (element type optional when
    the context determines it, e.g. an mcase-typed field initializer)."""

    element: Optional[TypeNode] = None
    branches: List[MCaseBranch] = field(default_factory=list)


@dataclass
class MSelect(Expr):
    """Explicit mode-case elimination ``mselect(e, m)`` — the paper's
    ``e ◃ η``.  ``mode_name`` may be a constant or a variable in scope."""

    expr: Expr = field(default_factory=NullLit)
    mode_name: str = ""


@dataclass
class Binary(Expr):
    op: str = "+"
    left: Expr = field(default_factory=NullLit)
    right: Expr = field(default_factory=NullLit)


@dataclass
class Unary(Expr):
    op: str = "-"
    expr: Expr = field(default_factory=NullLit)


@dataclass
class ListLit(Expr):
    """``[e1, ..., en]`` — builds a native ``List``."""

    elements: List[Expr] = field(default_factory=list)


@dataclass
class InstanceOf(Expr):
    expr: Expr = field(default_factory=NullLit)
    class_name: str = ""


# ---------------------------------------------------------------------------
# Statements


@dataclass
class Stmt:
    span: Optional[SourceSpan] = field(default=None, kw_only=True)


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class LocalVarDecl(Stmt):
    declared: TypeNode = field(default_factory=PrimTypeNode)
    name: str = ""
    init: Optional[Expr] = None


@dataclass
class Assign(Stmt):
    target: Expr = field(default_factory=Var)  # Var or FieldAccess
    value: Expr = field(default_factory=NullLit)

    # Set by the typechecker when the target's declared type is an
    # mcase type (the RHS must then evaluate un-eliminated); class-level
    # default for getattr-free hot-path reads, like ``Var.resolved_kind``.
    wants_mcase = False


@dataclass
class ExprStmt(Stmt):
    expr: Expr = field(default_factory=NullLit)


@dataclass
class If(Stmt):
    cond: Expr = field(default_factory=BoolLit)
    then: Stmt = field(default_factory=Block)
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr = field(default_factory=BoolLit)
    body: Stmt = field(default_factory=Block)


@dataclass
class Foreach(Stmt):
    var_type: TypeNode = field(default_factory=PrimTypeNode)
    var_name: str = ""
    iterable: Expr = field(default_factory=NullLit)
    body: Stmt = field(default_factory=Block)


@dataclass
class Return(Stmt):
    expr: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class TryCatch(Stmt):
    """``try { ... } catch (EnergyException x) { ... }``."""

    body: Stmt = field(default_factory=Block)
    exc_class: str = "EnergyException"
    exc_var: str = "e"
    handler: Stmt = field(default_factory=Block)


@dataclass
class Throw(Stmt):
    expr: Expr = field(default_factory=NullLit)


# ---------------------------------------------------------------------------
# Declarations


@dataclass
class FieldDecl:
    declared: TypeNode = field(default_factory=PrimTypeNode)
    name: str = ""
    init: Optional[Expr] = None
    span: Optional[SourceSpan] = field(default=None, kw_only=True)


@dataclass
class AttributorDecl:
    """``attributor { ... }`` — body returns a mode value."""

    body: Block = field(default_factory=Block)
    span: Optional[SourceSpan] = field(default=None, kw_only=True)


@dataclass
class ParamDecl:
    declared: TypeNode = field(default_factory=PrimTypeNode)
    name: str = ""
    span: Optional[SourceSpan] = field(default=None, kw_only=True)


@dataclass
class MethodDecl:
    name: str = ""
    params: List[ParamDecl] = field(default_factory=list)
    return_type: TypeNode = field(default_factory=PrimTypeNode)
    body: Block = field(default_factory=Block)
    #: Method-level mode characterization: ``@mode<m>`` (override) or
    #: ``@mode<X>`` / ``@mode<?X>`` (mode-generic / dynamic method).
    mode_param: Optional[ModeParamNode] = None
    #: Method-level attributor (Listing 3's ``saveImages``).
    attributor: Optional[AttributorDecl] = None
    span: Optional[SourceSpan] = field(default=None, kw_only=True)


@dataclass
class ConstructorDecl:
    params: List[ParamDecl] = field(default_factory=list)
    body: Block = field(default_factory=Block)
    span: Optional[SourceSpan] = field(default=None, kw_only=True)


@dataclass
class ClassDecl:
    name: str = ""
    #: First mode parameter (None => unannotated class).
    mode_param: Optional[ModeParamNode] = None
    #: Extra generic mode parameters after the first.
    extra_params: List[ModeParamNode] = field(default_factory=list)
    superclass: str = "Object"
    #: Use-site mode arguments for the superclass (``extends D@mode<X>``).
    super_mode_args: Optional[List[ModeArgNode]] = None
    fields: List[FieldDecl] = field(default_factory=list)
    methods: List[MethodDecl] = field(default_factory=list)
    constructor: Optional[ConstructorDecl] = None
    attributor: Optional[AttributorDecl] = None
    span: Optional[SourceSpan] = field(default=None, kw_only=True)


@dataclass
class ModesDecl:
    """``modes { a <= b; c; }`` — ordering pairs plus bare mode names."""

    pairs: List[Tuple[str, str]] = field(default_factory=list)
    singletons: List[str] = field(default_factory=list)
    span: Optional[SourceSpan] = field(default=None, kw_only=True)


@dataclass
class Program:
    modes: List[ModesDecl] = field(default_factory=list)
    classes: List[ClassDecl] = field(default_factory=list)

    def find_class(self, name: str) -> Optional[ClassDecl]:
        for cls in self.classes:
            if cls.name == name:
                return cls
        return None
