"""Token definitions for the ENT surface language."""

from __future__ import annotations

import enum
from typing import Optional

from repro.core.errors import SourceSpan


class TokenKind(enum.Enum):
    # Literals and identifiers
    IDENT = "IDENT"
    INT = "INT"
    FLOAT = "FLOAT"
    STRING = "STRING"

    # Keywords
    KW_MODES = "modes"
    KW_CLASS = "class"
    KW_EXTENDS = "extends"
    KW_ATTRIBUTOR = "attributor"
    KW_SNAPSHOT = "snapshot"
    KW_MCASE = "mcase"
    KW_MSELECT = "mselect"
    KW_NEW = "new"
    KW_RETURN = "return"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_WHILE = "while"
    KW_FOREACH = "foreach"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    KW_TRY = "try"
    KW_CATCH = "catch"
    KW_THROW = "throw"
    KW_THIS = "this"
    KW_NULL = "null"
    KW_TRUE = "true"
    KW_FALSE = "false"
    KW_DEFAULT = "default"
    KW_VOID = "void"
    KW_INT = "int"
    KW_DOUBLE = "double"
    KW_BOOLEAN = "boolean"
    KW_STRING_TYPE = "String"
    KW_MODE_TYPE = "mode"
    KW_INSTANCEOF = "instanceof"

    # Punctuation and operators
    LBRACE = "{"
    RBRACE = "}"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    SEMI = ";"
    COMMA = ","
    DOT = "."
    COLON = ":"
    AT = "@"
    QUESTION = "?"
    UNDERSCORE = "_"
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    EQ = "=="
    NE = "!="
    AND = "&&"
    OR = "||"
    NOT = "!"

    EOF = "EOF"


#: Reserved words mapped to their token kinds.
KEYWORDS = {
    "modes": TokenKind.KW_MODES,
    "class": TokenKind.KW_CLASS,
    "extends": TokenKind.KW_EXTENDS,
    "attributor": TokenKind.KW_ATTRIBUTOR,
    "snapshot": TokenKind.KW_SNAPSHOT,
    "mcase": TokenKind.KW_MCASE,
    "mselect": TokenKind.KW_MSELECT,
    "new": TokenKind.KW_NEW,
    "return": TokenKind.KW_RETURN,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "while": TokenKind.KW_WHILE,
    "foreach": TokenKind.KW_FOREACH,
    "break": TokenKind.KW_BREAK,
    "continue": TokenKind.KW_CONTINUE,
    "try": TokenKind.KW_TRY,
    "catch": TokenKind.KW_CATCH,
    "throw": TokenKind.KW_THROW,
    "this": TokenKind.KW_THIS,
    "null": TokenKind.KW_NULL,
    "true": TokenKind.KW_TRUE,
    "false": TokenKind.KW_FALSE,
    "default": TokenKind.KW_DEFAULT,
    "void": TokenKind.KW_VOID,
    "int": TokenKind.KW_INT,
    "double": TokenKind.KW_DOUBLE,
    "boolean": TokenKind.KW_BOOLEAN,
    "String": TokenKind.KW_STRING_TYPE,
    "mode": TokenKind.KW_MODE_TYPE,
    "instanceof": TokenKind.KW_INSTANCEOF,
}


class Token:
    """One lexed token.  A ``__slots__`` class (not a dataclass) because
    the lexer constructs thousands of these per compile."""

    __slots__ = ("kind", "text", "span", "value")

    def __init__(self, kind: TokenKind, text: str, span: SourceSpan,
                 value: Optional[object] = None) -> None:
        self.kind = kind
        self.text = text
        self.span = span
        self.value = value  # decoded literal value, if any

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Token):
            return NotImplemented
        return (self.kind == other.kind and self.text == other.text
                and self.span == other.span and self.value == other.value)

    def __repr__(self) -> str:
        return (f"Token(kind={self.kind!r}, text={self.text!r}, "
                f"span={self.span!r}, value={self.value!r})")

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})@{self.span}"
