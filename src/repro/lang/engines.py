"""Execution-engine registry for the ENT interpreter.

Four engines execute typechecked programs with identical observable
behaviour (output, stats, exceptions — everything except ``steps``):

``walk``
    The reference tree-walking interpreter.  Slowest; easiest to audit
    against the paper's semantics.
``compiled``
    The closure compiler (PR 3): bodies are pre-compiled to nested
    Python closures.
``vm``
    The register-bytecode VM (``repro.lang.bytecode`` +
    ``repro.lang.vm``).  Dynamic checks are explicit, counted
    instructions.  See ``docs/VM.md``.
``jit``
    The VM plus the trace-JIT tier (``repro.lang.jit``): hot bodies
    compile to specialized Python with receiver-class guards and
    planner-proven checks elided, deoptimizing back to the VM when a
    guard fails.  Fastest on hot code; identical observables.

``resolve_engine`` is the single place the deprecated ``--compile``
boolean is folded into the engine choice.
"""

from __future__ import annotations

from typing import Optional

ENGINES = ("walk", "compiled", "vm", "jit")

DEFAULT_ENGINE = "walk"

#: Stable profiler-label families, shared by every engine.  The VM
#: emits ``op.<OPNAME>`` labels, the walk/compiled engines
#: ``node.<NodeClass>``; all engines share ``call.<Class>.<method>``,
#: ``check.<kind>@<line>:<column>``, ``native.<cls>.<method>`` and
#: ``attributor.<Class>`` — the cost model (``repro.advise``) resolves
#: labels to per-architecture cost keys through this vocabulary.
LABEL_KINDS = ("op", "node", "call", "check", "native", "attributor")


def label_kind(label: str) -> str:
    """First segment of a profiler label if it is a known family,
    ``'default'`` otherwise — the cost model's coarse fallback key."""
    head = label.split(".", 1)[0].split("@", 1)[0]
    return head if head in LABEL_KINDS else "default"


def resolve_engine(engine: Optional[str] = None,
                   compile_flag: bool = False) -> str:
    """Pick the engine: an explicit ``engine`` wins, the legacy
    ``compile_flag`` maps to ``compiled``, otherwise the default."""
    if engine is not None:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r} "
                f"(expected one of {', '.join(ENGINES)})")
        return engine
    return "compiled" if compile_flag else DEFAULT_ENGINE
