"""Native library surface available to ENT programs.

Three static classes are visible by name inside any ENT method body:

* ``Ext`` — the paper's external-context utility: battery level and CPU
  temperature queries, answered by the attached platform simulator.
* ``Sys`` — effectful primitives: printing, sleeping, and the workload
  hooks (``work``/``io``/``net``) that drive the energy model, plus the
  simulation clock and a seeded RNG.
* ``Math`` — the usual numeric helpers.

Two value kinds carry methods: the native ``List`` (type-erased, Java
1.4-collections style — elements type as ``Any`` and are cast-checked at
run time) and ``String``.

The ``*_return`` functions give the typechecker signatures; the
``call_*`` functions implement the run-time behaviour against an
interpreter instance (for the platform, output buffer, and RNG).
"""

from __future__ import annotations

import math
from typing import List as PyList, Optional, Sequence

from repro.core.errors import EntRuntimeError
from repro.lang import types as ty
from repro.lang.types import Type

__all__ = [
    "NATIVE_STATIC_CLASSES",
    "native_static_return",
    "native_value_method_return",
    "call_native_static",
    "call_list_method",
    "call_string_method",
]

NATIVE_STATIC_CLASSES = frozenset({"Ext", "Sys", "Math"})

_NUMBER = (ty.INT, ty.DOUBLE)


def _numeric(args: Sequence[Type]) -> bool:
    return all(a in _NUMBER or a == ty.ANY for a in args)


# ---------------------------------------------------------------------------
# Static signatures

#: (class, method) -> (arity, arg kind, return type).  Kind "num" requires
#: numeric arguments; "any" accepts anything.
_STATIC_SIGNATURES = {
    ("Ext", "battery"): (0, "any", ty.DOUBLE),
    ("Ext", "temperature"): (0, "any", ty.DOUBLE),
    ("Sys", "print"): (1, "any", ty.VOID),
    ("Sys", "sleep"): (1, "num", ty.VOID),
    ("Sys", "work"): (1, "num", ty.VOID),
    ("Sys", "io"): (1, "num", ty.VOID),
    ("Sys", "net"): (1, "num", ty.VOID),
    ("Sys", "time"): (0, "any", ty.DOUBLE),
    ("Sys", "rand"): (0, "any", ty.DOUBLE),
    ("Sys", "randInt"): (1, "num", ty.INT),
    ("Sys", "str"): (1, "any", ty.STRING),
    ("Sys", "parseInt"): (1, "any", ty.INT),
    ("Math", "min"): (2, "num", ty.DOUBLE),
    ("Math", "max"): (2, "num", ty.DOUBLE),
    ("Math", "abs"): (1, "num", ty.DOUBLE),
    ("Math", "floor"): (1, "num", ty.INT),
    ("Math", "ceil"): (1, "num", ty.INT),
    ("Math", "sqrt"): (1, "num", ty.DOUBLE),
    ("Math", "pow"): (2, "num", ty.DOUBLE),
    ("Math", "log"): (1, "num", ty.DOUBLE),
}

#: Math functions that preserve int-ness when every argument is int.
_INT_PRESERVING = {("Math", "min"), ("Math", "max"), ("Math", "abs")}


def native_static_return(class_name: str, method: str,
                         arg_types: Sequence[Type]) -> Optional[Type]:
    """Signature lookup for ``Class.method(args)``; None if unknown."""
    sig = _STATIC_SIGNATURES.get((class_name, method))
    if sig is None:
        return None
    arity, kind, result = sig
    if len(arg_types) != arity:
        return None
    if kind == "num" and not _numeric(arg_types):
        return None
    if (class_name, method) in _INT_PRESERVING and all(
            a == ty.INT for a in arg_types):
        return ty.INT
    return result


_LIST_SIGNATURES = {
    "add": (1, ty.VOID),
    "addAll": (1, ty.VOID),
    "get": (1, ty.ANY),
    "set": (2, ty.VOID),
    "size": (0, ty.INT),
    "remove": (1, ty.ANY),
    "contains": (1, ty.BOOLEAN),
    "indexOf": (1, ty.INT),
    "isEmpty": (0, ty.BOOLEAN),
    "clear": (0, ty.VOID),
}

_STRING_SIGNATURES = {
    "length": (0, ty.INT),
    "substring": (2, ty.STRING),
    "charAt": (1, ty.STRING),
    "contains": (1, ty.BOOLEAN),
    "startsWith": (1, ty.BOOLEAN),
    "endsWith": (1, ty.BOOLEAN),
    "indexOf": (1, ty.INT),
    "split": (1, ty.LIST),
    "toLowerCase": (0, ty.STRING),
    "toUpperCase": (0, ty.STRING),
    "equals": (1, ty.BOOLEAN),
    "hashCode": (0, ty.INT),
}


def native_value_method_return(kind: str, method: str,
                               arg_types: Sequence[Type]) -> Optional[Type]:
    """Signature lookup for methods on native values ("List"/"String")."""
    table = _LIST_SIGNATURES if kind == "List" else _STRING_SIGNATURES
    sig = table.get(method)
    if sig is None:
        return None
    arity, result = sig
    if len(arg_types) != arity:
        return None
    return result


# ---------------------------------------------------------------------------
# Runtime behaviour


def _trace_read(interp, platform, signal: str, value: float) -> None:
    """Record an ``Ext`` read for platforms that don't trace their own.

    Platform simulators with a tracer attached emit
    ``PlatformReadEvent`` themselves; this covers bare stubs like the
    interpreter's ``NullPlatform``.
    """
    tracer = interp.tracer
    if not tracer.enabled:
        return
    platform_tracer = getattr(platform, "tracer", None)
    if platform_tracer is not None and platform_tracer.enabled:
        return
    from repro.obs.events import PlatformReadEvent
    tracer.emit(PlatformReadEvent(ts=tracer.now(), signal=signal,
                                  value=value))


def _as_number(value: object, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise EntRuntimeError(f"{what} requires a number, got {value!r}")
    return value


def _as_int(value: object, what: str) -> int:
    number = _as_number(value, what)
    return int(number)


def call_native_static(interp, class_name: str, method: str,
                       args: PyList[object]) -> object:
    """Execute a native static call against an interpreter instance."""
    key = (class_name, method)
    platform = interp.platform
    if key == ("Ext", "battery"):
        value = float(platform.battery_fraction())
        _trace_read(interp, platform, "battery", value)
        return value
    if key == ("Ext", "temperature"):
        value = float(platform.cpu_temperature())
        _trace_read(interp, platform, "temperature", value)
        return value
    if key == ("Sys", "print"):
        interp.output.append(interp.render(args[0]))
        return None
    if key == ("Sys", "sleep"):
        platform.sleep(_as_number(args[0], "Sys.sleep") / 1000.0)
        return None
    if key == ("Sys", "work"):
        platform.cpu_work(_as_number(args[0], "Sys.work"))
        return None
    if key == ("Sys", "io"):
        platform.io_bytes(_as_number(args[0], "Sys.io"))
        return None
    if key == ("Sys", "net"):
        platform.net_bytes(_as_number(args[0], "Sys.net"))
        return None
    if key == ("Sys", "time"):
        return float(platform.now())
    if key == ("Sys", "rand"):
        return interp.rng.random()
    if key == ("Sys", "randInt"):
        bound = _as_int(args[0], "Sys.randInt")
        if bound <= 0:
            raise EntRuntimeError("Sys.randInt requires a positive bound")
        return interp.rng.randrange(bound)
    if key == ("Sys", "str"):
        return interp.render(args[0])
    if key == ("Sys", "parseInt"):
        if not isinstance(args[0], str):
            raise EntRuntimeError("Sys.parseInt requires a String")
        try:
            return int(args[0].strip())
        except ValueError:
            raise EntRuntimeError(
                f"Sys.parseInt: not an integer: {args[0]!r}") from None
    if class_name == "Math":
        return _call_math(method, args)
    raise EntRuntimeError(
        f"unknown native method {class_name}.{method}")  # pragma: no cover


def _call_math(method: str, args: PyList[object]) -> object:
    nums = [_as_number(a, f"Math.{method}") for a in args]
    # Mirror the static signatures: int-preserving only when every
    # argument is an int (Java's overload resolution).
    all_int = all(isinstance(n, int) for n in nums)

    def numeric(value):
        return value if all_int else float(value)

    if method == "min":
        return numeric(min(nums))
    if method == "max":
        return numeric(max(nums))
    if method == "abs":
        return numeric(abs(nums[0]))
    if method == "floor":
        return math.floor(nums[0])
    if method == "ceil":
        return math.ceil(nums[0])
    if method == "sqrt":
        if nums[0] < 0:
            raise EntRuntimeError("Math.sqrt of a negative number")
        return math.sqrt(nums[0])
    if method == "pow":
        return float(nums[0] ** nums[1])
    if method == "log":
        if nums[0] <= 0:
            raise EntRuntimeError("Math.log of a non-positive number")
        return math.log(nums[0])
    raise EntRuntimeError(f"unknown Math method {method}")  # pragma: no cover


def call_list_method(interp, lst: PyList[object], method: str,
                     args: PyList[object]) -> object:
    if method == "add":
        lst.append(args[0])
        return None
    if method == "addAll":
        other = args[0]
        if not isinstance(other, list):
            raise EntRuntimeError("List.addAll requires a List")
        lst.extend(other)
        return None
    if method == "get":
        index = _as_int(args[0], "List.get")
        if not 0 <= index < len(lst):
            raise EntRuntimeError(
                f"List.get index {index} out of range (size {len(lst)})")
        return lst[index]
    if method == "set":
        index = _as_int(args[0], "List.set")
        if not 0 <= index < len(lst):
            raise EntRuntimeError(
                f"List.set index {index} out of range (size {len(lst)})")
        lst[index] = args[1]
        return None
    if method == "size":
        return len(lst)
    if method == "remove":
        index = _as_int(args[0], "List.remove")
        if not 0 <= index < len(lst):
            raise EntRuntimeError(
                f"List.remove index {index} out of range (size {len(lst)})")
        return lst.pop(index)
    if method == "contains":
        return any(interp.values_equal(item, args[0]) for item in lst)
    if method == "indexOf":
        for i, item in enumerate(lst):
            if interp.values_equal(item, args[0]):
                return i
        return -1
    if method == "isEmpty":
        return not lst
    if method == "clear":
        lst.clear()
        return None
    raise EntRuntimeError(f"unknown List method {method}")  # pragma: no cover


def call_string_method(interp, string: str, method: str,
                       args: PyList[object]) -> object:
    if method == "length":
        return len(string)
    if method == "substring":
        start = _as_int(args[0], "String.substring")
        end = _as_int(args[1], "String.substring")
        if not 0 <= start <= end <= len(string):
            raise EntRuntimeError(
                f"String.substring({start}, {end}) out of range for "
                f"length {len(string)}")
        return string[start:end]
    if method == "charAt":
        index = _as_int(args[0], "String.charAt")
        if not 0 <= index < len(string):
            raise EntRuntimeError(
                f"String.charAt index {index} out of range")
        return string[index]
    if method == "contains":
        return str(args[0]) in string
    if method == "startsWith":
        return string.startswith(str(args[0]))
    if method == "endsWith":
        return string.endswith(str(args[0]))
    if method == "indexOf":
        return string.find(str(args[0]))
    if method == "split":
        separator = str(args[0])
        if not separator:
            raise EntRuntimeError("String.split separator cannot be empty")
        return list(string.split(separator))
    if method == "toLowerCase":
        return string.lower()
    if method == "toUpperCase":
        return string.upper()
    if method == "equals":
        return isinstance(args[0], str) and string == args[0]
    if method == "hashCode":
        # Java's String.hashCode, for deterministic workloads.
        h = 0
        for ch in string:
            h = (31 * h + ord(ch)) & 0xFFFFFFFF
        if h >= 0x80000000:
            h -= 0x100000000
        return h
    raise EntRuntimeError(
        f"unknown String method {method}")  # pragma: no cover
