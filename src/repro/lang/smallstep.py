"""Small-step reference semantics for the ENT kernel (paper Figure 5).

The paper defines ENT's operational semantics as a substitution-based
small-step relation ``e =m=> e'`` over Featherweight-Java-style pure
expressions, with three ENT-specific runtime forms:

* ``cl(m, e)`` — a closure: ``e`` reducing under mode ``m``;
* ``obj(α, c⟨µ, ι⟩, v̄)`` — an object value;
* ``check(e, m1, m2, o)`` — the pending snapshot bound check.

This module implements that relation directly, as a *reference*
semantics for the kernel fragment (classes whose constructors only
assign their parameters to fields and whose methods and attributors are
single ``return e;`` bodies).  The production interpreter
(:mod:`repro.lang.interp`) is big-step and environment-based; property
tests reduce kernel programs under both and require identical outcomes,
giving executable evidence for the paper's Theorem 1 story on the exact
formal system.

Reduction rules implemented (selected forms from Figure 5):

* **R-Msg** — ``o.md(v̄) =m=> cl(µ, e{v̄/x̄}{o/this})`` if ``dfall(o, m)``
  (with method-level mode overrides standing in for µ when present);
* **R-Snapshot** — ``snapshot o [m1,m2] =m=> check(abody{o/this}, m1,
  m2, o)`` when ``omode(o) = ?``;
* **R-Check** — ``check(m', m1, m2, o) =m=> obj(α', c⟨m',ι⟩, v̄)`` if
  ``m1 <= m' <= m2`` (fresh shallow copy), else a *bad check*;
* **R-Cast**, **R-Field**, **R-MCase/R-Elim**, **R-Cl** (``cl(m, v) =>
  v``), plus the usual congruence (evaluation-context) rules,
  left-to-right, innermost-first.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.errors import (BadCastError, EnergyException,
                               EntRuntimeError, FuelExhausted, StuckError)
from repro.core.modes import BOTTOM, TOP, Mode, ModeLattice
from repro.lang import ast_nodes as ast
from repro.lang import types as ty
from repro.lang.typechecker import CheckedProgram
from repro.lang.types import DYN, ClassInfo, MethodInfo, ObjectType

__all__ = ["SmallStepMachine", "SSObject", "Closure", "Check",
           "KernelError", "run_kernel", "extract_kernel_body"]

_alpha = itertools.count(1)


class KernelError(EntRuntimeError):
    """The program is outside the kernel fragment."""


@dataclass
class SSObject:
    """``obj(α, c⟨µ, ι⟩, v̄)``: an object value."""

    alpha: int
    info: ClassInfo
    #: Mode arguments; the first is ``µ`` (None encodes ``?``).
    mode_args: Tuple[Optional[Mode], ...]
    fields: Dict[str, object]
    snapshotted: bool = False

    @property
    def omode(self) -> Optional[Mode]:
        return self.mode_args[0] if self.mode_args else None

    def __repr__(self) -> str:
        tag = self.omode.name if self.omode else "?"
        return f"obj({self.alpha}, {self.info.name}<{tag}>)"


@dataclass
class MCaseValue:
    branches: Dict[Mode, object]
    default: Optional[object] = None
    has_default: bool = False


#: A runtime value embedded back into expression position.
@dataclass
class ValueExpr(ast.Expr):
    value: object = None


@dataclass
class Closure(ast.Expr):
    """``cl(m, e)``."""

    mode: Mode = TOP
    body: ast.Expr = dc_field(default_factory=ast.NullLit)


@dataclass
class Check(ast.Expr):
    """``check(e, m1, m2, o)``."""

    body: ast.Expr = dc_field(default_factory=ast.NullLit)
    lower: Mode = BOTTOM
    upper: Mode = TOP
    target: Optional[SSObject] = None


def _is_value(expr: ast.Expr) -> bool:
    return isinstance(expr, ValueExpr)


def extract_kernel_body(decl) -> ast.Expr:
    """The single ``return e;`` body of a kernel method/attributor."""
    stmts = decl.body.stmts if isinstance(decl, ast.MethodDecl) else \
        decl.body.stmts
    if len(stmts) != 1 or not isinstance(stmts[0], ast.Return) or \
            stmts[0].expr is None:
        raise KernelError(
            "kernel methods must consist of a single 'return e;'")
    return stmts[0].expr


def _substitute(expr: ast.Expr, env: Dict[str, object],
                this_value: Optional[SSObject]) -> ast.Expr:
    """Capture-free substitution ``e{v̄/x̄}{o/this}``.

    Variables not in the map are left untouched (they may be mode
    literals, resolved at reduction time).
    """
    if isinstance(expr, (ValueExpr, Closure, Check)):
        return expr
    if isinstance(expr, ast.Var):
        if expr.name in env:
            return ValueExpr(value=env[expr.name], span=expr.span)
        # Implicit this-field read (the concrete syntax allows `n` for
        # `this.n`; the formal system writes the latter).
        if this_value is not None and expr.name in this_value.fields:
            access = ast.FieldAccess(obj=ValueExpr(value=this_value),
                                     name=expr.name, span=expr.span)
            access.implicit_elim = bool(getattr(expr, "implicit_elim",
                                                False))
            return access
        return expr
    if isinstance(expr, ast.This):
        if this_value is None:
            raise KernelError("free 'this' outside an object")
        return ValueExpr(value=this_value, span=expr.span)
    if isinstance(expr, ast.FieldAccess):
        clone = ast.FieldAccess(
            obj=_substitute(expr.obj, env, this_value), name=expr.name,
            span=expr.span)
        clone.implicit_elim = bool(getattr(expr, "implicit_elim", False))
        return clone
    if isinstance(expr, ast.MethodCall):
        receiver = (None if expr.receiver is None
                    else _substitute(expr.receiver, env, this_value))
        if receiver is None:
            if this_value is None:
                raise KernelError("implicit this-call outside an object")
            receiver = ValueExpr(value=this_value)
        return ast.MethodCall(
            receiver=receiver, name=expr.name,
            args=[_substitute(a, env, this_value) for a in expr.args],
            span=expr.span)
    if isinstance(expr, ast.New):
        clone = ast.New(class_name=expr.class_name,
                        mode_args=expr.mode_args,
                        args=[_substitute(a, env, this_value)
                              for a in expr.args],
                        span=expr.span)
        clone.resolved_type = getattr(expr, "resolved_type", None)
        return clone
    if isinstance(expr, ast.Cast):
        clone = ast.Cast(target=expr.target,
                         expr=_substitute(expr.expr, env, this_value),
                         span=expr.span)
        clone.resolved_target = getattr(expr, "resolved_target", None)
        return clone
    if isinstance(expr, ast.Snapshot):
        clone = ast.Snapshot(
            expr=_substitute(expr.expr, env, this_value),
            lower=expr.lower, upper=expr.upper, span=expr.span)
        clone.resolved_bounds = getattr(expr, "resolved_bounds",
                                        (BOTTOM, TOP))
        return clone
    if isinstance(expr, ast.MCaseExpr):
        return ast.MCaseExpr(
            element=expr.element,
            branches=[ast.MCaseBranch(
                mode_name=b.mode_name,
                expr=_substitute(b.expr, env, this_value), span=b.span)
                for b in expr.branches],
            span=expr.span)
    if isinstance(expr, ast.MSelect):
        clone = ast.MSelect(
            expr=_substitute(expr.expr, env, this_value),
            mode_name=expr.mode_name, span=expr.span)
        clone.resolved_mode = getattr(expr, "resolved_mode",
                                      expr.mode_name)
        return clone
    if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.StringLit,
                         ast.BoolLit, ast.NullLit)):
        return expr
    if isinstance(expr, ast.Binary):
        return ast.Binary(op=expr.op,
                          left=_substitute(expr.left, env, this_value),
                          right=_substitute(expr.right, env, this_value),
                          span=expr.span)
    if isinstance(expr, ast.Unary):
        return ast.Unary(op=expr.op,
                         expr=_substitute(expr.expr, env, this_value),
                         span=expr.span)
    raise KernelError(
        f"expression form {type(expr).__name__} is outside the kernel")


class SmallStepMachine:
    """Reduces kernel expressions under the Figure 5 relation."""

    def __init__(self, checked: CheckedProgram,
                 fuel: int = 100_000) -> None:
        self.checked = checked
        self.table = checked.table
        self.lattice: ModeLattice = checked.lattice
        self.fuel = fuel
        self.steps_taken = 0
        #: Reduction trace of rule names (for tests/diagnostics).
        self.trace: List[str] = []

    # ------------------------------------------------------------------

    def boot(self) -> ast.Expr:
        """``boot(P) = cl(⊤, mbody(main, Main⟨⊤⟩))``."""
        info = self.table.get("Main")
        minfo = info.methods.get("main")
        if minfo is None:
            raise KernelError("no Main.main")
        body = extract_kernel_body(minfo.decl)
        main_obj = SSObject(next(_alpha), info, (TOP,), {})
        return Closure(mode=TOP,
                       body=_substitute(body, {}, main_obj))

    def run(self) -> object:
        """Reduce the boot configuration to a value."""
        expr = self.boot()
        while not _is_value(expr):
            expr = self.step(expr, TOP)
        return expr.value

    # ------------------------------------------------------------------

    def _record(self, rule: str) -> None:
        self.trace.append(rule)
        self.steps_taken += 1
        if self.steps_taken > self.fuel:
            raise FuelExhausted(f"exceeded {self.fuel} reduction steps")

    def step(self, expr: ast.Expr, mode: Mode) -> ast.Expr:
        """One reduction step of ``expr`` under the current mode."""
        if _is_value(expr):
            raise StuckError("cannot step a value")

        # --- closures -------------------------------------------------
        if isinstance(expr, Closure):
            if _is_value(expr.body):
                self._record("R-Cl")
                return expr.body
            return Closure(mode=expr.mode,
                           body=self.step(expr.body, expr.mode),
                           span=expr.span)

        # --- pending snapshot checks ----------------------------------
        if isinstance(expr, Check):
            if _is_value(expr.body):
                return self._reduce_check(expr)
            # Attributors are invoked externally: reduce under BOTTOM.
            return Check(body=self.step(expr.body, BOTTOM),
                         lower=expr.lower, upper=expr.upper,
                         target=expr.target, span=expr.span)

        # --- literals -------------------------------------------------
        if isinstance(expr, ast.IntLit):
            self._record("R-Lit")
            return ValueExpr(value=expr.value)
        if isinstance(expr, ast.FloatLit):
            self._record("R-Lit")
            return ValueExpr(value=expr.value)
        if isinstance(expr, ast.StringLit):
            self._record("R-Lit")
            return ValueExpr(value=expr.value)
        if isinstance(expr, ast.BoolLit):
            self._record("R-Lit")
            return ValueExpr(value=expr.value)
        if isinstance(expr, ast.NullLit):
            self._record("R-Lit")
            return ValueExpr(value=None)
        if isinstance(expr, ast.Var):
            mode_value = Mode(expr.name)
            if mode_value in self.lattice:
                self._record("R-ModeLit")
                return ValueExpr(value=mode_value)
            raise StuckError(f"free variable {expr.name!r}")

        # --- congruence + redexes --------------------------------------
        if isinstance(expr, ast.FieldAccess):
            if not _is_value(expr.obj):
                clone = ast.FieldAccess(obj=self.step(expr.obj, mode),
                                        name=expr.name, span=expr.span)
                clone.implicit_elim = bool(getattr(expr, "implicit_elim",
                                                   False))
                return clone
            return self._reduce_field(expr)
        if isinstance(expr, ast.MethodCall):
            return self._step_call(expr, mode)
        if isinstance(expr, ast.New):
            return self._step_new(expr, mode)
        if isinstance(expr, ast.Cast):
            if not _is_value(expr.expr):
                clone = ast.Cast(target=expr.target,
                                 expr=self.step(expr.expr, mode),
                                 span=expr.span)
                clone.resolved_target = getattr(expr, "resolved_target",
                                                None)
                return clone
            return self._reduce_cast(expr)
        if isinstance(expr, ast.Snapshot):
            if not _is_value(expr.expr):
                clone = ast.Snapshot(expr=self.step(expr.expr, mode),
                                     lower=expr.lower, upper=expr.upper,
                                     span=expr.span)
                clone.resolved_bounds = getattr(expr, "resolved_bounds",
                                                (BOTTOM, TOP))
                return clone
            return self._reduce_snapshot(expr)
        if isinstance(expr, ast.MCaseExpr):
            return self._step_mcase(expr, mode)
        if isinstance(expr, ast.MSelect):
            if not _is_value(expr.expr):
                clone = ast.MSelect(expr=self.step(expr.expr, mode),
                                    mode_name=expr.mode_name,
                                    span=expr.span)
                clone.resolved_mode = getattr(expr, "resolved_mode",
                                              expr.mode_name)
                return clone
            return self._reduce_mselect(expr)
        if isinstance(expr, ast.Binary):
            return self._step_binary(expr, mode)
        if isinstance(expr, ast.Unary):
            if not _is_value(expr.expr):
                return ast.Unary(op=expr.op,
                                 expr=self.step(expr.expr, mode),
                                 span=expr.span)
            return self._reduce_unary(expr)
        raise KernelError(
            f"expression form {type(expr).__name__} is outside the "
            f"kernel")

    # ------------------------------------------------------------------
    # Redexes

    def _reduce_field(self, expr: ast.FieldAccess) -> ast.Expr:
        obj = expr.obj.value
        if not isinstance(obj, SSObject):
            raise StuckError(f"field access on non-object {obj!r}")
        if expr.name not in obj.fields:
            raise StuckError(
                f"object of {obj.info.name} has no field {expr.name!r}")
        self._record("R-Field")
        value = obj.fields[expr.name]
        # Implicit mode-case elimination on the enclosing object's mode.
        if isinstance(value, MCaseValue) and getattr(
                expr, "implicit_elim", False):
            return ValueExpr(value=self._eliminate(value, obj.omode))
        return ValueExpr(value=value)

    def _method_lookup(self, info: ClassInfo,
                       name: str) -> Optional[MethodInfo]:
        current: Optional[ClassInfo] = info
        while current is not None:
            if name in current.methods:
                return current.methods[name]
            current = (self.table.get(current.superclass)
                       if current.superclass else None)
        return None

    def _step_call(self, expr: ast.MethodCall, mode: Mode) -> ast.Expr:
        assert expr.receiver is not None, "kernel calls are explicit"
        if not _is_value(expr.receiver):
            return ast.MethodCall(receiver=self.step(expr.receiver, mode),
                                  name=expr.name, args=expr.args,
                                  span=expr.span)
        for index, arg in enumerate(expr.args):
            if not _is_value(arg):
                args = list(expr.args)
                args[index] = self.step(arg, mode)
                return ast.MethodCall(receiver=expr.receiver,
                                      name=expr.name, args=args,
                                      span=expr.span)
        # R-Msg.
        obj = expr.receiver.value
        if not isinstance(obj, SSObject):
            raise StuckError(f"message to non-object {obj!r}")
        minfo = self._method_lookup(obj.info, expr.name)
        if minfo is None or minfo.decl is None:
            raise StuckError(
                f"no method {expr.name!r} on {obj.info.name}")
        # dfall(o, m): the guard is the method override when present.
        guard: Optional[Mode]
        closure_mode: Mode
        if minfo.mode_param is not None and \
                minfo.mode_param.concrete is not None:
            guard = closure_mode = minfo.mode_param.concrete
        else:
            guard = obj.omode
            closure_mode = guard if guard is not None else mode
        if guard is None:
            raise StuckError(
                f"dfall violated: messaging dynamic object "
                f"{obj!r} ({expr.name})")
        if not self.lattice.leq(guard, mode):
            raise EnergyException(
                f"dfall violated: {guard.name} > {mode.name} "
                f"({obj.info.name}.{expr.name})", mode=guard, upper=mode)
        body = extract_kernel_body(minfo.decl)
        env = dict(zip(minfo.param_names,
                       [a.value for a in expr.args]))
        self._record("R-Msg")
        return Closure(mode=closure_mode,
                       body=_substitute(body, env, obj))

    def _step_new(self, expr: ast.New, mode: Mode) -> ast.Expr:
        for index, arg in enumerate(expr.args):
            if not _is_value(arg):
                args = list(expr.args)
                args[index] = self.step(arg, mode)
                clone = ast.New(class_name=expr.class_name,
                                mode_args=expr.mode_args, args=args,
                                span=expr.span)
                clone.resolved_type = getattr(expr, "resolved_type", None)
                return clone
        resolved = getattr(expr, "resolved_type", None)
        if not isinstance(resolved, ObjectType):
            raise KernelError("new-expression was not typechecked")
        info = self.table.get(resolved.class_name)
        mode_args = tuple(
            atom if isinstance(atom, Mode)
            else None for atom in resolved.mode_args)
        fields = self._kernel_fields(info, [a.value for a in expr.args])
        self._record("R-New")
        return ValueExpr(value=SSObject(next(_alpha), info, mode_args,
                                        fields))

    def _kernel_fields(self, info: ClassInfo,
                       args: List[object]) -> Dict[str, object]:
        """FJ-style construction: the constructor assigns its parameters
        to fields (validated), or there is no constructor."""
        field_names = [f.name for f in self.table.all_fields(info.name)]
        fields: Dict[str, object] = {name: None for name in field_names}
        # Mode-case field initializers are part of the kernel.
        for finfo in self.table.all_fields(info.name):
            decl = finfo.decl
            if decl is not None and decl.init is not None:
                if not isinstance(decl.init, ast.MCaseExpr):
                    raise KernelError(
                        "kernel field initializers must be mcase "
                        "literals")
                fields[finfo.name] = self._mcase_literal(decl.init)
        ctor = info.decl.constructor if info.decl is not None else None
        if ctor is None:
            if args:
                raise StuckError(f"{info.name} takes no arguments")
            return fields
        if len(args) != len(ctor.params):
            raise StuckError(f"constructor arity mismatch on "
                             f"{info.name}")
        params = {p.name: v for p, v in zip(ctor.params, args)}
        for stmt in ctor.body.stmts:
            ok = (isinstance(stmt, ast.Assign)
                  and isinstance(stmt.value, ast.Var)
                  and stmt.value.name in params)
            if ok and isinstance(stmt.target, ast.Var):
                fields[stmt.target.name] = params[stmt.value.name]
            elif ok and isinstance(stmt.target, ast.FieldAccess) and \
                    isinstance(stmt.target.obj, ast.This):
                fields[stmt.target.name] = params[stmt.value.name]
            else:
                raise KernelError(
                    "kernel constructors may only assign parameters "
                    "to fields")
        return fields

    def _mcase_literal(self, expr: ast.MCaseExpr) -> MCaseValue:
        branches: Dict[Mode, object] = {}
        default = None
        has_default = False
        for branch in expr.branches:
            value = self._literal_value(branch.expr)
            if branch.mode_name is None:
                default, has_default = value, True
            else:
                branches[Mode(branch.mode_name)] = value
        return MCaseValue(branches, default, has_default)

    @staticmethod
    def _literal_value(expr: ast.Expr) -> object:
        if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.StringLit,
                             ast.BoolLit)):
            return expr.value
        if isinstance(expr, ast.NullLit):
            return None
        raise KernelError("kernel mcase branches must be literals")

    def _reduce_cast(self, expr: ast.Cast) -> ast.Expr:
        value = expr.expr.value
        target = getattr(expr, "resolved_target", None)
        self._record("R-Cast")
        if isinstance(target, ObjectType):
            if value is None:
                return ValueExpr(value=None)
            if not isinstance(value, SSObject) or not \
                    self.table.is_subclass(value.info.name,
                                           target.class_name):
                raise BadCastError(f"bad cast to {target}")
            target_mode = (target.omode if isinstance(target.omode, Mode)
                           else None)
            if target.omode is not DYN and target_mode is not None and \
                    value.omode != target_mode:
                raise BadCastError(
                    f"bad cast: mode {value.omode} vs {target_mode}")
            return ValueExpr(value=value)
        if target == ty.INT and isinstance(value, (int, float)) \
                and not isinstance(value, bool):
            return ValueExpr(value=int(value))
        if target == ty.DOUBLE and isinstance(value, (int, float)) \
                and not isinstance(value, bool):
            return ValueExpr(value=float(value))
        raise BadCastError(f"bad cast of {value!r}")

    def _reduce_snapshot(self, expr: ast.Snapshot) -> ast.Expr:
        obj = expr.expr.value
        if not isinstance(obj, SSObject):
            raise StuckError(f"snapshot of non-object {obj!r}")
        if obj.omode is not None:
            raise StuckError("snapshot of a non-dynamic object")
        attributor = None
        current: Optional[ClassInfo] = obj.info
        while current is not None and attributor is None:
            if current.decl is not None and current.decl.attributor:
                attributor = current.decl.attributor
            current = (self.table.get(current.superclass)
                       if current.superclass else None)
        if attributor is None:
            raise StuckError(f"{obj.info.name} has no attributor")
        body = extract_kernel_body(attributor)
        bounds = getattr(expr, "resolved_bounds", (BOTTOM, TOP))
        lower = bounds[0] if isinstance(bounds[0], Mode) else BOTTOM
        upper = bounds[1] if isinstance(bounds[1], Mode) else TOP
        self._record("R-Snapshot")
        return Check(body=_substitute(body, {}, obj), lower=lower,
                     upper=upper, target=obj)

    def _reduce_check(self, expr: Check) -> ast.Expr:
        mode = expr.body.value
        if not isinstance(mode, Mode):
            raise StuckError(f"attributor produced non-mode {mode!r}")
        if not (self.lattice.leq(expr.lower, mode)
                and self.lattice.leq(mode, expr.upper)):
            raise EnergyException(
                f"bad check: {mode.name} outside "
                f"[{expr.lower.name}, {expr.upper.name}]",
                mode=mode, lower=expr.lower, upper=expr.upper)
        source = expr.target
        assert source is not None
        self._record("R-Check")
        copy = SSObject(next(_alpha), source.info,
                        (mode,) + source.mode_args[1:],
                        dict(source.fields), snapshotted=True)
        return ValueExpr(value=copy)

    def _step_mcase(self, expr: ast.MCaseExpr, mode: Mode) -> ast.Expr:
        for index, branch in enumerate(expr.branches):
            if not _is_value(branch.expr):
                branches = list(expr.branches)
                branches[index] = ast.MCaseBranch(
                    mode_name=branch.mode_name,
                    expr=self.step(branch.expr, mode), span=branch.span)
                return ast.MCaseExpr(element=expr.element,
                                     branches=branches, span=expr.span)
        branches: Dict[Mode, object] = {}
        default = None
        has_default = False
        for branch in expr.branches:
            if branch.mode_name is None:
                default, has_default = branch.expr.value, True
            else:
                branches[Mode(branch.mode_name)] = branch.expr.value
        self._record("R-MCase")
        return ValueExpr(value=MCaseValue(branches, default, has_default))

    def _eliminate(self, value: MCaseValue,
                   mode: Optional[Mode]) -> object:
        if mode is None:
            raise EnergyException(
                "cannot eliminate a mode case against ?")
        if mode in value.branches:
            return value.branches[mode]
        if value.has_default:
            return value.default
        raise EntRuntimeError(f"no branch for {mode.name}")

    def _reduce_mselect(self, expr: ast.MSelect) -> ast.Expr:
        value = expr.expr.value
        if not isinstance(value, MCaseValue):
            raise StuckError(f"mselect of non-mcase {value!r}")
        atom = getattr(expr, "resolved_mode", expr.mode_name)
        mode = atom if isinstance(atom, Mode) else Mode(str(atom))
        self._record("R-Elim")
        return ValueExpr(value=self._eliminate(value, mode))

    def _step_binary(self, expr: ast.Binary, mode: Mode) -> ast.Expr:
        if not _is_value(expr.left):
            return ast.Binary(op=expr.op,
                              left=self.step(expr.left, mode),
                              right=expr.right, span=expr.span)
        if not _is_value(expr.right):
            return ast.Binary(op=expr.op, left=expr.left,
                              right=self.step(expr.right, mode),
                              span=expr.span)
        left, right = expr.left.value, expr.right.value
        self._record("R-Op")
        ops = {
            "+": lambda: left + right,
            "-": lambda: left - right,
            "*": lambda: left * right,
            "/": lambda: int(left / right)
            if isinstance(left, int) and isinstance(right, int)
            else left / right,
            "%": lambda: left - int(left / right) * right
            if isinstance(left, int) and isinstance(right, int)
            else left % right,
            "<": lambda: left < right,
            "<=": lambda: left <= right,
            ">": lambda: left > right,
            ">=": lambda: left >= right,
            "==": lambda: (left is right
                           if isinstance(left, SSObject)
                           or isinstance(right, SSObject)
                           else left == right),
            "!=": lambda: not (left is right
                               if isinstance(left, SSObject)
                               or isinstance(right, SSObject)
                               else left == right),
            "&&": lambda: left and right,
            "||": lambda: left or right,
        }
        if expr.op not in ops:
            raise KernelError(f"operator {expr.op!r} outside the kernel")
        if expr.op in ("/", "%") and right == 0:
            raise EntRuntimeError("division by zero")
        try:
            return ValueExpr(value=ops[expr.op]())
        except TypeError as exc:
            raise StuckError(f"ill-typed operands: {exc}") from None

    def _reduce_unary(self, expr: ast.Unary) -> ast.Expr:
        value = expr.expr.value
        self._record("R-Op")
        if expr.op == "-" and isinstance(value, (int, float)) and \
                not isinstance(value, bool):
            return ValueExpr(value=-value)
        if expr.op == "!" and isinstance(value, bool):
            return ValueExpr(value=not value)
        raise StuckError(f"ill-typed unary {expr.op!r} on {value!r}")


def run_kernel(checked_or_source: Union[CheckedProgram, str],
               fuel: int = 100_000) -> Tuple[object, SmallStepMachine]:
    """Reduce a kernel program to a value under the small-step relation."""
    if isinstance(checked_or_source, str):
        from repro.lang.typechecker import check_program
        checked = check_program(checked_or_source)
    else:
        checked = checked_or_source
    machine = SmallStepMachine(checked, fuel=fuel)
    return machine.run(), machine
