"""Closure compilation for the ENT interpreter.

A classic tree-walking-interpreter optimization (see e.g. "A fast
closure-based interpreter"): each AST node is translated **once** into
a Python closure ``code(frame) -> value``, eliminating the per-step
``isinstance`` dispatch of the tree walk.  Semantics are *not*
duplicated — the closures call straight back into the same
:class:`~repro.lang.interp.Interpreter` helpers (`_invoke`,
`_construct`, `_eval_snapshot`-equivalents, natives), so the mode
machinery lives in exactly one place.  Differential tests run every
program under both execution engines.

Enable with ``InterpOptions(compile=True)`` or the CLI flag
``--compile``; `bench_lang_pipeline.py` tracks the speedup.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.errors import EnergyException, StuckError
from repro.core.modes import Mode
from repro.lang import ast_nodes as ast
from repro.lang import types as ty
from repro.lang.natives import (NATIVE_STATIC_CLASSES, call_list_method,
                                call_native_static, call_string_method)
from repro.lang.values import MCaseV, ObjectV

__all__ = ["compile_block", "compile_expr"]

#: Compiled code: frame -> value.
Code = Callable


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


# The interpreter's _ReturnSignal is reused so compiled and walked
# frames compose (a compiled method may call a walked one and vice
# versa).


def _cache(interp) -> Dict[int, Code]:
    store = getattr(interp, "_compiled_cache", None)
    if store is None:
        store = {}
        interp._compiled_cache = store
    return store


def compile_block(interp, block: ast.Block) -> Code:
    """Compile a statement block (cached per AST node)."""
    cache = _cache(interp)
    code = cache.get(id(block))
    if code is None:
        code = _compile_block(interp, block)
        cache[id(block)] = code
    return code


def _compile_block(interp, block: ast.Block) -> Code:
    stmts = [_compile_stmt(interp, stmt) for stmt in block.stmts]

    def run(frame):
        frame.push()
        try:
            for stmt in stmts:
                stmt(frame)
        finally:
            frame.pop()

    return run


def _compile_stmt(interp, stmt: ast.Stmt) -> Code:
    from repro.lang.interp import _ReturnSignal

    tick = interp._tick
    if isinstance(stmt, ast.Block):
        return _compile_block(interp, stmt)

    if isinstance(stmt, ast.LocalVarDecl):
        name = stmt.name
        wants = isinstance(getattr(stmt, "resolved_type", None),
                           ty.MCaseType)
        if stmt.init is not None:
            init = compile_expr(interp, stmt.init, want_mcase=wants)

            def run(frame):
                tick()
                frame.declare(name, init(frame))
        else:
            default = interp._default_value(
                getattr(stmt, "resolved_type", ty.NULL))

            def run(frame):
                tick()
                frame.declare(name, default)
        return run

    if isinstance(stmt, ast.Assign):
        wants = bool(getattr(stmt, "wants_mcase", False))
        value_code = compile_expr(interp, stmt.value, want_mcase=wants)
        target = stmt.target
        if isinstance(target, ast.Var):
            name = target.name

            def run(frame):
                tick()
                value = value_code(frame)
                if frame.assign(name, value):
                    return
                if frame.this_obj is not None and \
                        name in frame.this_obj.fields:
                    frame.this_obj.set_field(name, value)
                    return
                raise StuckError(f"unknown variable {name!r}")
            return run
        assert isinstance(target, ast.FieldAccess)
        obj_code = compile_expr(interp, target.obj)
        field_name = target.name

        def run(frame):
            tick()
            obj = obj_code(frame)
            if not isinstance(obj, ObjectV):
                raise StuckError(f"cannot assign field of {obj!r}")
            obj.set_field(field_name, value_code(frame))
        return run

    if isinstance(stmt, ast.ExprStmt):
        expr_code = compile_expr(interp, stmt.expr)

        def run(frame):
            tick()
            expr_code(frame)
        return run

    if isinstance(stmt, ast.If):
        cond = compile_expr(interp, stmt.cond)
        then = _compile_stmt(interp, stmt.then)
        otherwise = (None if stmt.otherwise is None
                     else _compile_stmt(interp, stmt.otherwise))
        truth = interp._truth

        def run(frame):
            tick()
            if truth(cond(frame)):
                then(frame)
            elif otherwise is not None:
                otherwise(frame)
        return run

    if isinstance(stmt, ast.While):
        cond = compile_expr(interp, stmt.cond)
        body = _compile_stmt(interp, stmt.body)
        truth = interp._truth

        def run(frame):
            tick()
            while truth(cond(frame)):
                try:
                    body(frame)
                except _Break:
                    break
                except _Continue:
                    continue
        return run

    if isinstance(stmt, ast.Foreach):
        iterable = compile_expr(interp, stmt.iterable)
        body = _compile_stmt(interp, stmt.body)
        var_name = stmt.var_name

        def run(frame):
            tick()
            values = iterable(frame)
            if not isinstance(values, list):
                raise StuckError("foreach requires a List")
            for element in list(values):
                frame.push()
                try:
                    frame.declare(var_name, element)
                    body(frame)
                except _Break:
                    frame.pop()
                    break
                except _Continue:
                    frame.pop()
                    continue
                else:
                    frame.pop()
        return run

    if isinstance(stmt, ast.Return):
        if stmt.expr is None:
            def run(frame):
                tick()
                raise _ReturnSignal(None)
        else:
            expr_code = compile_expr(interp, stmt.expr)

            def run(frame):
                tick()
                raise _ReturnSignal(expr_code(frame))
        return run

    if isinstance(stmt, ast.Break):
        def run(frame):
            tick()
            raise _Break()
        return run

    if isinstance(stmt, ast.Continue):
        def run(frame):
            tick()
            raise _Continue()
        return run

    if isinstance(stmt, ast.TryCatch):
        body = _compile_stmt(interp, stmt.body)
        handler = _compile_stmt(interp, stmt.handler)
        exc_var = stmt.exc_var

        def run(frame):
            tick()
            try:
                body(frame)
            except EnergyException as exc:
                frame.push()
                try:
                    frame.declare(exc_var, str(exc))
                    handler(frame)
                finally:
                    frame.pop()
        return run

    if isinstance(stmt, ast.Throw):
        expr_code = compile_expr(interp, stmt.expr)
        render = interp.render

        def run(frame):
            tick()
            interp.stats.energy_exceptions += 1
            raise EnergyException(render(expr_code(frame)))
        return run

    raise StuckError(  # pragma: no cover
        f"cannot compile statement {type(stmt).__name__}")


# ---------------------------------------------------------------------------
# Expressions


def compile_expr(interp, expr: ast.Expr,
                 want_mcase: bool = False) -> Code:
    """Compile one expression.

    Unlike the tree walk, compiled code charges fuel per *statement*
    rather than per expression node — still a divergence bound (every
    loop body and method body is made of statements), at a fraction of
    the bookkeeping cost.
    """
    raw = _compile_expr_raw(interp, expr)
    if want_mcase:
        return raw

    eliminate = interp._eliminate

    def run(frame):
        value = raw(frame)
        if isinstance(value, MCaseV):
            return eliminate(value, expr, frame)
        return value

    return run


def _compile_expr_raw(interp, expr: ast.Expr) -> Code:
    if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.StringLit,
                         ast.BoolLit)):
        value = expr.value
        return lambda frame: value
    if isinstance(expr, ast.NullLit):
        return lambda frame: None
    if isinstance(expr, ast.This):
        return lambda frame: frame.this_obj

    if isinstance(expr, ast.Var):
        return _compile_var(interp, expr)

    if isinstance(expr, ast.FieldAccess):
        obj_code = compile_expr(interp, expr.obj)
        name = expr.name

        def run(frame):
            obj = obj_code(frame)
            if isinstance(obj, ObjectV):
                value = obj.get_field(name)
                if isinstance(value, MCaseV):
                    expr._owner_mode = obj.effective_mode
                return value
            raise StuckError(f"cannot access field {name!r} of {obj!r}")
        return run

    if isinstance(expr, ast.MethodCall):
        return _compile_call(interp, expr)

    if isinstance(expr, ast.New):
        return _compile_new(interp, expr)

    if isinstance(expr, ast.Cast):
        inner = compile_expr(interp, expr.expr)
        # Reuse the interpreter's cast logic through a tiny shim node.
        def run(frame):
            shim = ast.Cast(target=expr.target,
                            expr=_Precomputed(inner(frame)),
                            span=expr.span)
            shim.resolved_target = getattr(expr, "resolved_target", None)
            return interp._eval_cast(shim, frame)
        return run

    if isinstance(expr, ast.Snapshot):
        inner = compile_expr(interp, expr.expr)

        def run(frame):
            shim = ast.Snapshot(expr=_Precomputed(inner(frame)),
                                lower=expr.lower, upper=expr.upper,
                                span=expr.span)
            shim.resolved_bounds = getattr(expr, "resolved_bounds",
                                           None) or \
                (interp.lattice.require(Mode("$bottom")),
                 interp.lattice.require(Mode("$top")))
            return interp._eval_snapshot(shim, frame)
        return run

    if isinstance(expr, ast.MCaseExpr):
        compiled = [(None if b.mode_name is None else Mode(b.mode_name),
                     compile_expr(interp, b.expr))
                    for b in expr.branches]

        def run(frame):
            branches = {}
            default = MCaseV._MISSING
            for mode, code in compiled:
                value = code(frame)
                if mode is None:
                    default = value
                else:
                    branches[mode] = value
            if default is MCaseV._MISSING:
                return MCaseV(branches)
            return MCaseV(branches, default)
        return run

    if isinstance(expr, ast.MSelect):
        inner = compile_expr(interp, expr.expr, want_mcase=True)
        atom = getattr(expr, "resolved_mode", expr.mode_name)

        def run(frame):
            value = inner(frame)
            if not isinstance(value, MCaseV):
                raise StuckError(f"mselect on non-mcase {value!r}")
            mode = interp._resolve_atom(atom, frame)
            interp.stats.mcase_elims += 1
            if interp.tracer.enabled:
                from repro.obs.events import MCaseElimEvent, mode_name
                interp.tracer.emit(MCaseElimEvent(
                    ts=interp.tracer.now(), mode=mode_name(mode),
                    source="interp"))
            return value.select(mode)
        return run

    if isinstance(expr, ast.Binary):
        return _compile_binary(interp, expr)

    if isinstance(expr, ast.Unary):
        inner = compile_expr(interp, expr.expr)
        if expr.op == "-":
            is_number = interp._is_number

            def run(frame):
                value = inner(frame)
                if is_number(value):
                    return -value
                raise StuckError(f"cannot negate {value!r}")
            return run
        truth = interp._truth
        return lambda frame: not truth(inner(frame))

    if isinstance(expr, ast.ListLit):
        elements = [compile_expr(interp, e) for e in expr.elements]
        return lambda frame: [code(frame) for code in elements]

    if isinstance(expr, ast.InstanceOf):
        inner = compile_expr(interp, expr.expr)
        class_name = expr.class_name
        is_subclass = interp.table.is_subclass

        def run(frame):
            value = inner(frame)
            return (isinstance(value, ObjectV)
                    and is_subclass(value.class_info.name, class_name))
        return run

    raise StuckError(  # pragma: no cover
        f"cannot compile expression {type(expr).__name__}")


class _Precomputed(ast.Expr):
    """An already-evaluated operand handed to interpreter helpers."""

    def __init__(self, value: object) -> None:
        super().__init__()
        self.value = value


# Teach the interpreter to evaluate the shim leaf.
def _install_precomputed_support() -> None:
    from repro.lang import interp as interp_module

    original = interp_module.Interpreter._eval_raw

    def eval_raw(self, expr, frame, want_mcase):
        if isinstance(expr, _Precomputed):
            return expr.value
        return original(self, expr, frame, want_mcase)

    if getattr(interp_module.Interpreter, "_precomputed_patched",
               False):  # pragma: no cover
        return
    interp_module.Interpreter._eval_raw = eval_raw
    interp_module.Interpreter._precomputed_patched = True


_install_precomputed_support()


def _compile_var(interp, expr: ast.Var) -> Code:
    from repro.lang.interp import _NativeRef

    name = expr.name
    lattice = interp.lattice

    def run(frame):
        found, value = frame.lookup(name)
        if found:
            return value
        this_obj = frame.this_obj
        if this_obj is not None and name in this_obj.fields:
            value = this_obj.fields[name]
            if isinstance(value, MCaseV):
                expr._owner_mode = this_obj.effective_mode
            return value
        try:
            mode = Mode(name)
        except Exception:
            mode = None
        if mode is not None and mode in lattice:
            return mode
        if name in NATIVE_STATIC_CLASSES:
            return _NativeRef(name)
        raise StuckError(f"unknown variable {name!r}")

    return run


def _compile_call(interp, expr: ast.MethodCall) -> Code:
    from repro.lang.interp import _NativeRef

    name = expr.name
    # Two variants per argument: eliminating (the default) and raw (for
    # mcase-typed parameters); selected per resolved method at run time.
    arg_codes = [compile_expr(interp, a) for a in expr.args]
    arg_codes_raw = [compile_expr(interp, a, want_mcase=True)
                     for a in expr.args]
    receiver_code = (None if expr.receiver is None
                     else compile_expr(interp, expr.receiver))
    receiver_is_this = isinstance(expr.receiver, ast.This)
    find_method = interp._find_method
    invoke = interp._invoke
    span = expr.span

    def run(frame):
        if receiver_code is None:
            receiver = frame.this_obj
            self_call = True
        else:
            receiver = receiver_code(frame)
            self_call = receiver_is_this or receiver is frame.this_obj
        if isinstance(receiver, ObjectV):
            minfo = find_method(receiver.class_info, name)
            if minfo is None:
                raise StuckError(
                    f"no method {name!r} on "
                    f"{receiver.class_info.name}")
            args = []
            for index, ptype in enumerate(minfo.param_types):
                if isinstance(ptype, ty.MCaseType):
                    args.append(arg_codes_raw[index](frame))
                else:
                    args.append(arg_codes[index](frame))
            return invoke(receiver, minfo, args, frame,
                          self_call=self_call, span=span)
        args = [code(frame) for code in arg_codes]
        if isinstance(receiver, _NativeRef):
            return call_native_static(interp, receiver.name, name, args)
        if isinstance(receiver, str):
            return call_string_method(interp, receiver, name, args)
        if isinstance(receiver, list):
            return call_list_method(interp, receiver, name, args)
        if receiver is None:
            raise StuckError(f"null receiver for method {name!r}")
        raise StuckError(f"cannot invoke {name!r} on {receiver!r}")

    return run


def _compile_new(interp, expr: ast.New) -> Code:
    resolved = getattr(expr, "resolved_type", None)
    if resolved == ty.LIST:
        return lambda frame: []
    if resolved is None:
        raise StuckError("new-expression was not typechecked")
    info = interp.table.get(resolved.class_name)
    mode_args = resolved.mode_args
    arg_codes = [compile_expr(interp, a) for a in expr.args]
    construct = interp._construct
    span = expr.span

    def run(frame):
        args = [code(frame) for code in arg_codes]
        return construct(info, mode_args, args, frame, span)

    return run


_NUMERIC_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _compile_binary(interp, expr: ast.Binary) -> Code:
    op = expr.op
    truth = interp._truth
    if op == "&&":
        left = compile_expr(interp, expr.left)
        right = compile_expr(interp, expr.right)
        return lambda frame: (truth(left(frame))
                              and truth(right(frame)))
    if op == "||":
        left = compile_expr(interp, expr.left)
        right = compile_expr(interp, expr.right)
        return lambda frame: (truth(left(frame))
                              or truth(right(frame)))
    left = compile_expr(interp, expr.left)
    right = compile_expr(interp, expr.right)
    if op in ("==", "!="):
        equal = interp.values_equal
        if op == "==":
            return lambda frame: equal(left(frame), right(frame))
        return lambda frame: not equal(left(frame), right(frame))

    # Route the remaining operators through the interpreter's checked
    # implementation via a shim, preserving exact semantics (string
    # concatenation, truncating division, error messages).
    def run(frame):
        shim = ast.Binary(op=op, left=_Precomputed(left(frame)),
                          right=_Precomputed(right(frame)),
                          span=expr.span)
        return interp._eval_binary(shim, frame)

    if op in _NUMERIC_OPS:
        fast = _NUMERIC_OPS[op]
        is_number = interp._is_number

        def run_fast(frame):
            a = left(frame)
            b = right(frame)
            if is_number(a) and is_number(b):
                return fast(a, b)
            shim = ast.Binary(op=op, left=_Precomputed(a),
                              right=_Precomputed(b), span=expr.span)
            return interp._eval_binary(shim, frame)
        return run_fast
    return run
