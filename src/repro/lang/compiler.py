"""Closure compilation for the ENT interpreter.

A classic tree-walking-interpreter optimization: each AST node is
translated **once** into a Python closure ``code(frame) -> value``,
eliminating per-step dispatch.  Semantics are *not* duplicated — the
closures call straight back into the same
:class:`~repro.lang.interp.Interpreter` helpers (``_invoke``,
``_construct``, ``_snapshot_value``, ``_cast_value``, ``_binary_op``,
natives), so the mode machinery lives in exactly one place.
Differential tests run every program under both execution engines.

Hot-path engineering on top of the closure translation (see
``docs/PERFORMANCE.md``):

* **Slot-resolved frames** — local variables are assigned frame slots
  at compile time; reads and writes are list indexing instead of a
  scope-chain dict walk.  Parameters occupy slots ``0..n-1``.
* **Polymorphic inline caches** — each call site caches the resolved
  method (and the matching argument compilation) per receiver class,
  so repeated calls skip the method-table lookup entirely.
* **Batched fuel** — fuel is charged once per block entry and once per
  loop iteration rather than per AST node; still a divergence bound
  (every cycle passes through a loop head or a non-empty body block).

Enable with ``InterpOptions(compile=True)`` or the CLI flag
``--compile``; ``bench_lang_pipeline.py`` tracks the speedup.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.core.errors import EnergyException, StuckError
from repro.core.modes import BOTTOM, TOP, Mode
from repro.lang import ast_nodes as ast
from repro.lang import types as ty
from repro.lang.natives import (NATIVE_STATIC_CLASSES, call_list_method,
                                call_native_static, call_string_method)
from repro.lang.values import MCaseV, ObjectV

__all__ = ["compile_body", "compile_block", "compile_expr"]

#: Compiled code: frame -> value.
Code = Callable


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


# The interpreter's _ReturnSignal is reused so compiled and walked
# frames compose (a compiled method may call a walked one and vice
# versa).


class _CompileScope:
    """Compile-time name -> frame-slot mapping with block scoping.

    ``declare`` always allocates a fresh slot (shadowing gets its own
    storage); ``n_slots`` is the high-water mark used to size the
    frame's slot list.  ``push``/``pop`` save and restore only the name
    visibility, never the slot counter, so sibling blocks don't alias.
    """

    __slots__ = ("names", "n_slots", "_saved")

    def __init__(self, param_names=()) -> None:
        self.names: Dict[str, int] = {}
        self.n_slots = 0
        self._saved = []
        for name in param_names:
            self.declare(name)

    def declare(self, name: str) -> int:
        slot = self.n_slots
        self.n_slots = slot + 1
        self.names[name] = slot
        return slot

    def lookup(self, name: str) -> Optional[int]:
        return self.names.get(name)

    def push(self) -> None:
        self._saved.append(dict(self.names))

    def pop(self) -> None:
        self.names = self._saved.pop()


def compile_body(interp, block: ast.Block,
                 param_names=()) -> Tuple[Code, int]:
    """Compile a method/constructor/attributor body.

    Returns ``(code, n_slots)``; the caller seeds a slot list with the
    argument values in slots ``0..len(param_names)-1`` (see
    ``Interpreter._run_compiled_body``).
    """
    scope = _CompileScope(param_names)
    code = _compile_block(interp, block, scope)
    return code, scope.n_slots


def compile_block(interp, block: ast.Block) -> Code:
    """Compatibility wrapper: compile a block with no parameters.  The
    returned code sizes the frame's slot list itself."""
    code, n_slots = compile_body(interp, block, ())

    def run(frame):
        if frame.slots is None or len(frame.slots) < n_slots:
            frame.slots = [None] * n_slots
        code(frame)

    return run


def compile_expr(interp, expr: ast.Expr,
                 want_mcase: bool = False) -> Code:
    """Compile a standalone expression (field initializers; no local
    scope)."""
    return _compile_expr(interp, expr, _CompileScope(), want_mcase)


# ---------------------------------------------------------------------------
# Statements


def _compile_block(interp, block: ast.Block, scope: _CompileScope) -> Code:
    scope.push()
    try:
        stmts = [_compile_stmt(interp, stmt, scope)
                 for stmt in block.stmts]
    finally:
        scope.pop()
    n = len(stmts)
    charge = interp._charge
    if n == 0:
        def run(frame):
            pass
    elif n == 1:
        stmt0 = stmts[0]

        def run(frame):
            charge(1)
            stmt0(frame)
    else:
        def run(frame):
            charge(n)
            for stmt in stmts:
                stmt(frame)
    return run


def _profiled(interp, label: str, code: Code) -> Code:
    """Wrap compiled code with a profiler bump.  Only reachable when
    the profiler is enabled at compile time (compilation is lazy and
    per-interpreter), so unprofiled runs keep the bare closures."""
    bump = interp.profiler.bump

    def run(frame):
        bump(label, frame.current_mode)
        return code(frame)

    return run


def _compile_stmt(interp, stmt: ast.Stmt, scope: _CompileScope) -> Code:
    code = _compile_stmt_raw(interp, stmt, scope)
    if interp.profiler.enabled:
        return _profiled(interp, "stmt." + stmt.__class__.__name__,
                         code)
    return code


def _compile_stmt_raw(interp, stmt: ast.Stmt,
                      scope: _CompileScope) -> Code:
    from repro.lang.interp import _ReturnSignal

    cls = stmt.__class__
    if cls is ast.Block:
        return _compile_block(interp, stmt, scope)

    if cls is ast.LocalVarDecl:
        wants = isinstance(getattr(stmt, "resolved_type", None),
                           ty.MCaseType)
        # The initializer is compiled *before* the name is declared: the
        # typechecker scopes `int x = x;` the same way.
        if stmt.init is not None:
            init = _compile_expr(interp, stmt.init, scope, wants)
            slot = scope.declare(stmt.name)

            def run(frame):
                frame.slots[slot] = init(frame)
        else:
            default = interp._default_value(
                getattr(stmt, "resolved_type", ty.NULL))
            slot = scope.declare(stmt.name)

            def run(frame):
                frame.slots[slot] = default
        return run

    if cls is ast.Assign:
        wants = stmt.wants_mcase
        value_code = _compile_expr(interp, stmt.value, scope, wants)
        target = stmt.target
        if isinstance(target, ast.Var):
            name = target.name
            slot = scope.lookup(name)
            if slot is not None:
                def run(frame):
                    frame.slots[slot] = value_code(frame)
                return run

            # Not a visible local: a field of `this` (or an error).
            def run(frame):
                value = value_code(frame)
                this_obj = frame.this_obj
                if this_obj is not None and name in this_obj.fields:
                    this_obj.set_field(name, value)
                    return
                raise StuckError(f"unknown variable {name!r}")
            return run
        assert isinstance(target, ast.FieldAccess)
        obj_code = _compile_expr(interp, target.obj, scope, False)
        field_name = target.name

        def run(frame):
            # Value before receiver, matching the tree walk.
            value = value_code(frame)
            obj = obj_code(frame)
            if not isinstance(obj, ObjectV):
                raise StuckError(f"cannot assign field of {obj!r}")
            obj.set_field(field_name, value)
        return run

    if cls is ast.ExprStmt:
        return _compile_expr(interp, stmt.expr, scope, False)

    if cls is ast.If:
        cond = _compile_expr(interp, stmt.cond, scope, False)
        then = _compile_stmt(interp, stmt.then, scope)
        otherwise = (None if stmt.otherwise is None
                     else _compile_stmt(interp, stmt.otherwise, scope))
        truth = interp._truth
        if otherwise is None:
            def run(frame):
                if truth(cond(frame)):
                    then(frame)
        else:
            def run(frame):
                if truth(cond(frame)):
                    then(frame)
                else:
                    otherwise(frame)
        return run

    if cls is ast.While:
        cond = _compile_expr(interp, stmt.cond, scope, False)
        body = _compile_stmt(interp, stmt.body, scope)
        truth = interp._truth
        charge = interp._charge

        def run(frame):
            while True:
                # Charged per iteration so even an empty loop body
                # consumes fuel (the divergence bound).
                charge(1)
                if not truth(cond(frame)):
                    break
                try:
                    body(frame)
                except _Break:
                    break
                except _Continue:
                    continue
        return run

    if cls is ast.Foreach:
        iterable = _compile_expr(interp, stmt.iterable, scope, False)
        scope.push()
        var_slot = scope.declare(stmt.var_name)
        body = _compile_stmt(interp, stmt.body, scope)
        scope.pop()
        charge = interp._charge

        def run(frame):
            values = iterable(frame)
            if not isinstance(values, list):
                raise StuckError("foreach requires a List")
            slots = frame.slots
            for element in list(values):
                charge(1)
                slots[var_slot] = element
                try:
                    body(frame)
                except _Break:
                    break
                except _Continue:
                    continue
        return run

    if cls is ast.Return:
        if stmt.expr is None:
            def run(frame):
                raise _ReturnSignal(None)
        else:
            expr_code = _compile_expr(interp, stmt.expr, scope, False)

            def run(frame):
                raise _ReturnSignal(expr_code(frame))
        return run

    if cls is ast.Break:
        def run(frame):
            raise _Break()
        return run

    if cls is ast.Continue:
        def run(frame):
            raise _Continue()
        return run

    if cls is ast.TryCatch:
        body = _compile_stmt(interp, stmt.body, scope)
        scope.push()
        exc_slot = scope.declare(stmt.exc_var)
        handler = _compile_stmt(interp, stmt.handler, scope)
        scope.pop()

        def run(frame):
            try:
                body(frame)
            except EnergyException as exc:
                frame.slots[exc_slot] = str(exc)
                handler(frame)
        return run

    if cls is ast.Throw:
        expr_code = _compile_expr(interp, stmt.expr, scope, False)
        render = interp.render

        def run(frame):
            message = render(expr_code(frame))
            interp.stats.energy_exceptions += 1
            if interp.tracer.enabled:
                interp.tracer.energy_exception(message, source="interp")
            raise EnergyException(message)
        return run

    raise StuckError(  # pragma: no cover
        f"cannot compile statement {type(stmt).__name__}")


# ---------------------------------------------------------------------------
# Expressions

#: Node classes whose values can never be an un-eliminated MCaseV, so
#: the elimination wrapper is dropped at compile time.
_NEVER_MCASE = frozenset({
    ast.IntLit, ast.FloatLit, ast.StringLit, ast.BoolLit, ast.NullLit,
    ast.This, ast.New, ast.Snapshot, ast.Binary, ast.Unary, ast.ListLit,
    ast.InstanceOf,
})


def _compile_expr(interp, expr: ast.Expr, scope: _CompileScope,
                  want_mcase: bool = False) -> Code:
    cls = expr.__class__
    if cls is ast.Var:
        code = _compile_var(interp, expr, scope, want_mcase)
    elif cls is ast.FieldAccess:
        code = _compile_field_access(interp, expr, scope, want_mcase)
    else:
        raw = _compile_expr_raw(interp, expr, scope)
        if want_mcase or cls in _NEVER_MCASE:
            code = raw
        else:
            elim = interp._elim_with_mode

            def run(frame):
                value = raw(frame)
                if isinstance(value, MCaseV):
                    return elim(value, frame.current_mode)
                return value

            code = run
    if interp.profiler.enabled:
        return _profiled(interp, "node." + cls.__name__, code)
    return code


def _compile_expr_raw(interp, expr: ast.Expr,
                      scope: _CompileScope) -> Code:
    cls = expr.__class__
    if cls in (ast.IntLit, ast.FloatLit, ast.StringLit, ast.BoolLit):
        value = expr.value
        return lambda frame: value
    if cls is ast.NullLit:
        return lambda frame: None
    if cls is ast.This:
        return lambda frame: frame.this_obj

    if cls is ast.MethodCall:
        return _compile_call(interp, expr, scope)

    if cls is ast.New:
        return _compile_new(interp, expr, scope)

    if cls is ast.Cast:
        inner = _compile_expr(interp, expr.expr, scope, False)
        target = getattr(expr, "resolved_target", None)
        if target is None:
            def run(frame):
                inner(frame)
                raise StuckError("cast was not typechecked")
            return run
        cast_value = interp._cast_value
        return lambda frame: cast_value(inner(frame), target, frame)

    if cls is ast.Snapshot:
        inner = _compile_expr(interp, expr.expr, scope, False)
        bounds = getattr(expr, "resolved_bounds", None) or (BOTTOM, TOP)
        snapshot_value = interp._snapshot_value
        elide_bound = expr.elide_bound
        span = expr.span
        return lambda frame: snapshot_value(inner(frame), bounds, frame,
                                            elide_bound=elide_bound,
                                            span=span)

    if cls is ast.MCaseExpr:
        compiled = [(None if b.mode_name is None else Mode(b.mode_name),
                     _compile_expr(interp, b.expr, scope, False))
                    for b in expr.branches]

        def run(frame):
            branches = {}
            default = MCaseV._MISSING
            for mode, code in compiled:
                value = code(frame)
                if mode is None:
                    default = value
                else:
                    branches[mode] = value
            if default is MCaseV._MISSING:
                return MCaseV(branches)
            return MCaseV(branches, default)
        return run

    if cls is ast.MSelect:
        inner = _compile_expr(interp, expr.expr, scope, True)
        atom = getattr(expr, "resolved_mode", expr.mode_name)
        mselect_value = interp._mselect_value
        return lambda frame: mselect_value(inner(frame), atom, frame)

    if cls is ast.Binary:
        return _compile_binary(interp, expr, scope)

    if cls is ast.Unary:
        inner = _compile_expr(interp, expr.expr, scope, False)
        if expr.op == "-":
            def run(frame):
                value = inner(frame)
                t = type(value)
                if t is int or t is float:
                    return -value
                raise StuckError(f"cannot negate {value!r}")
            return run
        truth = interp._truth
        return lambda frame: not truth(inner(frame))

    if cls is ast.ListLit:
        elements = [_compile_expr(interp, e, scope, False)
                    for e in expr.elements]
        return lambda frame: [code(frame) for code in elements]

    if cls is ast.InstanceOf:
        inner = _compile_expr(interp, expr.expr, scope, False)
        class_name = expr.class_name
        is_subclass = interp.table.is_subclass

        def run(frame):
            value = inner(frame)
            return (isinstance(value, ObjectV)
                    and is_subclass(value.class_info.name, class_name))
        return run

    raise StuckError(  # pragma: no cover
        f"cannot compile expression {type(expr).__name__}")


def _compile_var(interp, expr: ast.Var, scope: _CompileScope,
                 want_mcase: bool) -> Code:
    name = expr.name
    slot = scope.lookup(name)
    if slot is not None:
        if want_mcase:
            return lambda frame: frame.slots[slot]
        elim = interp._elim_with_mode

        def run(frame):
            value = frame.slots[slot]
            if type(value) is MCaseV:
                return elim(value, frame.current_mode)
            return value
        return run

    kind = expr.resolved_kind
    if kind == "field":
        if want_mcase:
            def run(frame):
                try:
                    return frame.this_obj.fields[name]
                except (AttributeError, KeyError):
                    raise StuckError(
                        f"unknown variable {name!r}") from None
            return run
        elim = interp._elim_with_mode

        def run(frame):
            try:
                value = frame.this_obj.fields[name]
            except (AttributeError, KeyError):
                raise StuckError(f"unknown variable {name!r}") from None
            if type(value) is MCaseV:
                mode = frame.this_obj.effective_mode
                return elim(value,
                            mode if mode is not None
                            else frame.current_mode)
            return value
        return run
    if kind == "mode":
        mode = interp._mode_by_name.get(name)
        if mode is not None:
            return lambda frame: mode
    elif kind == "native":
        from repro.lang.interp import _NativeRef
        return lambda frame: _NativeRef(name)
    return _compile_var_dynamic(interp, name, want_mcase)


def _compile_var_dynamic(interp, name: str, want_mcase: bool) -> Code:
    """Dynamic fallback mirroring the walk's resolution order: locals,
    this-fields, mode constants, native classes."""
    from repro.lang.interp import _NativeRef

    mode_by_name = interp._mode_by_name
    elim = interp._elim_with_mode

    def run(frame):
        found, value = frame.lookup(name)
        if not found:
            this_obj = frame.this_obj
            if this_obj is not None and name in this_obj.fields:
                value = this_obj.fields[name]
                if isinstance(value, MCaseV) and not want_mcase:
                    mode = this_obj.effective_mode
                    return elim(value,
                                mode if mode is not None
                                else frame.current_mode)
                return value
            mode = mode_by_name.get(name)
            if mode is not None:
                return mode
            if name in NATIVE_STATIC_CLASSES:
                return _NativeRef(name)
            raise StuckError(f"unknown variable {name!r}")
        if isinstance(value, MCaseV) and not want_mcase:
            return elim(value, frame.current_mode)
        return value

    return run


def _compile_field_access(interp, expr: ast.FieldAccess,
                          scope: _CompileScope,
                          want_mcase: bool) -> Code:
    obj_code = _compile_expr(interp, expr.obj, scope, False)
    name = expr.name
    elim = interp._elim_with_mode

    def run(frame):
        obj = obj_code(frame)
        if isinstance(obj, ObjectV):
            value = obj.get_field(name)
            if isinstance(value, MCaseV) and not want_mcase:
                # Elimination projects on the mode of the enclosing
                # object, not the current closure mode.
                mode = obj.effective_mode
                return elim(value,
                            mode if mode is not None
                            else frame.current_mode)
            return value
        raise StuckError(f"cannot access field {name!r} of {obj!r}")

    return run


def _compile_call(interp, expr: ast.MethodCall,
                  scope: _CompileScope) -> Code:
    from repro.lang.interp import _NativeRef

    name = expr.name
    # Two variants per argument: eliminating (the default) and raw (for
    # mcase-typed parameters); the inline cache stores the selection.
    arg_codes = tuple(_compile_expr(interp, a, scope, False)
                      for a in expr.args)
    arg_codes_raw = tuple(_compile_expr(interp, a, scope, True)
                          for a in expr.args)
    receiver_code = (None if expr.receiver is None
                     else _compile_expr(interp, expr.receiver, scope,
                                        False))
    receiver_is_this = isinstance(expr.receiver, ast.This)
    find_method = interp._find_method
    invoke = interp._invoke
    span = expr.span
    inline = interp.options.inline_caches
    elide_dfall = expr.elide_dfall
    #: Polymorphic inline cache: receiver class name -> (MethodInfo,
    #: selected argument codes).  Class infos are immutable for the
    #: lifetime of a run, so entries never need invalidation.
    ic: Dict[str, tuple] = {}

    def run(frame):
        if receiver_code is None:
            receiver = frame.this_obj
            self_call = True
        else:
            receiver = receiver_code(frame)
            self_call = receiver_is_this or receiver is frame.this_obj
        if isinstance(receiver, ObjectV):
            entry = ic.get(receiver.class_info.name)
            if entry is None:
                minfo = find_method(receiver.class_info, name)
                if minfo is None:
                    raise StuckError(
                        f"no method {name!r} on class "
                        f"{receiver.class_info.name}")
                # Select per-argument over ALL argument codes (an
                # over-applied extra evaluates eliminating and is then
                # blamed by ``_invoke``'s arity check, like the walk).
                ptypes = minfo.param_types
                nptypes = len(ptypes)
                codes = tuple(
                    raw if i < nptypes
                    and isinstance(ptypes[i], ty.MCaseType) else std
                    for i, (std, raw) in enumerate(
                        zip(arg_codes, arg_codes_raw)))
                entry = (minfo, codes)
                if inline:
                    ic[receiver.class_info.name] = entry
            minfo, codes = entry
            args = [code(frame) for code in codes]
            return invoke(receiver, minfo, args, frame,
                          self_call=self_call, span=span,
                          elide_dfall=elide_dfall)
        args = [code(frame) for code in arg_codes]
        if isinstance(receiver, _NativeRef):
            return call_native_static(interp, receiver.name, name, args)
        if isinstance(receiver, str):
            return call_string_method(interp, receiver, name, args)
        if isinstance(receiver, list):
            return call_list_method(interp, receiver, name, args)
        if receiver is None:
            raise StuckError(f"null receiver for method {name!r}")
        raise StuckError(f"cannot invoke {name!r} on {receiver!r}")

    return run


def _compile_new(interp, expr: ast.New, scope: _CompileScope) -> Code:
    resolved = getattr(expr, "resolved_type", None)
    if resolved == ty.LIST:
        return lambda frame: []
    if resolved is None:
        raise StuckError("new-expression was not typechecked")
    info = interp.table.get(resolved.class_name)
    mode_args = resolved.mode_args
    arg_codes = [_compile_expr(interp, a, scope, False)
                 for a in expr.args]
    construct = interp._construct
    span = expr.span

    def run(frame):
        args = [code(frame) for code in arg_codes]
        return construct(info, mode_args, args, frame, span)

    return run


def _compile_binary(interp, expr: ast.Binary,
                    scope: _CompileScope) -> Code:
    from repro.lang.interp import _ARITH

    op = expr.op
    truth = interp._truth
    if op == "&&":
        left = _compile_expr(interp, expr.left, scope, False)
        right = _compile_expr(interp, expr.right, scope, False)
        return lambda frame: (truth(left(frame))
                              and truth(right(frame)))
    if op == "||":
        left = _compile_expr(interp, expr.left, scope, False)
        right = _compile_expr(interp, expr.right, scope, False)
        return lambda frame: (truth(left(frame))
                              or truth(right(frame)))
    left = _compile_expr(interp, expr.left, scope, False)
    right = _compile_expr(interp, expr.right, scope, False)
    if op in ("==", "!="):
        equal = interp.values_equal
        if op == "==":
            return lambda frame: equal(left(frame), right(frame))
        return lambda frame: not equal(left(frame), right(frame))

    binary_op = interp._binary_op
    fast = _ARITH.get(op)
    if fast is not None:
        # Fast path when both operands are genuine numbers (type checks
        # exclude bool, a subclass of int); anything else falls back to
        # the interpreter's checked implementation, preserving string
        # concatenation and the exact error messages.
        def run_fast(frame):
            a = left(frame)
            b = right(frame)
            t = type(a)
            if t is int or t is float:
                t = type(b)
                if t is int or t is float:
                    return fast(a, b)
            return binary_op(op, a, b)
        return run_fast
    return lambda frame: binary_op(op, left(frame), right(frame))
