"""Run-time values for the ENT interpreter.

Primitive ENT values map directly onto Python: ``int``, ``float``,
``bool``, ``str`` and ``None`` (null).  Mode values are
:class:`~repro.core.modes.Mode` instances, lists are plain Python lists.
Two value kinds are ENT-specific:

* :class:`ObjectV` — an object with the run-time metadata the paper's
  section 5 describes: a mode tag for dynamic objects, a "snapshotted"
  bit driving the lazy-copy optimization, and — for generic objects — a
  mapping from mode type parameters to mode tags.
* :class:`MCaseV` — a mode-case value ``mcase⟨T⟩{m : v}``.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.core.errors import EntRuntimeError
from repro.core.modes import Mode
from repro.lang.types import ClassInfo

__all__ = ["ObjectV", "MCaseV"]

_object_ids = itertools.count(1)


class ObjectV:
    """An ENT object value (the paper's ``obj(α, c⟨µ, ι⟩, v)``).

    ``mode_env`` maps every mode parameter variable of the object's class
    *and its ancestors* to a concrete :class:`Mode`, or to ``None`` for
    the dynamic mode ``?``.  The object's own mode (``omode``) is the
    first parameter's entry — ``None`` exactly when the object is an
    un-snapshotted dynamic object.
    """

    __slots__ = ("oid", "class_info", "mode_env", "fields", "is_snapshot",
                 "snap_tagged", "provenance")

    def __init__(self, class_info: ClassInfo,
                 mode_env: Dict[str, Optional[Mode]],
                 fields: Dict[str, object],
                 is_snapshot: bool = False) -> None:
        self.oid = next(_object_ids)
        self.class_info = class_info
        self.mode_env = mode_env
        self.fields = fields
        #: True once this storage has been given a concrete mode by a
        #: snapshot (including an in-place lazy tag).
        self.is_snapshot = is_snapshot
        #: True if a lazy in-place snapshot already claimed this storage;
        #: the next snapshot must physically copy.
        self.snap_tagged = False
        #: Blame provenance: the site ID (``kind@line:column``) of the
        #: snapshot or concrete-mode construction that fixed this
        #: object's mode tag, or None.  Transient-mode check failures
        #: report it so a shallow failure names the originating site.
        self.provenance: Optional[str] = None

    @property
    def effective_mode(self) -> Optional[Mode]:
        """The object's concrete mode, or None for dynamic ``?``."""
        params = self.class_info.params
        if not params:
            return None
        first = params[0]
        if first.concrete is not None:
            return first.concrete
        assert first.var is not None
        return self.mode_env.get(first.var)

    def shallow_copy(self, mode: Mode) -> "ObjectV":
        """The paper's snapshot copy semantics: a shallow copy whose mode
        tag is ``mode``.  Field *values* are shared; the field map is new,
        enforcing monotonic type change without aliasing equivocation."""
        env = dict(self.mode_env)
        first = self.class_info.params[0]
        assert first.var is not None, "cannot re-mode a fixed-mode class"
        env[first.var] = mode
        return ObjectV(self.class_info, env, dict(self.fields),
                       is_snapshot=True)

    def tag_in_place(self, mode: Mode) -> "ObjectV":
        """Lazy-copy optimization: the first snapshot of a dynamic object
        tags the existing storage instead of copying (section 5)."""
        first = self.class_info.params[0]
        assert first.var is not None
        self.mode_env[first.var] = mode
        self.is_snapshot = True
        self.snap_tagged = True
        return self

    def get_field(self, name: str) -> object:
        try:
            return self.fields[name]
        except KeyError:
            raise EntRuntimeError(
                f"object of class {self.class_info.name} has no field "
                f"{name!r}") from None

    def set_field(self, name: str, value: object) -> None:
        if name not in self.fields:
            raise EntRuntimeError(
                f"object of class {self.class_info.name} has no field "
                f"{name!r}")
        self.fields[name] = value

    def __repr__(self) -> str:
        mode = self.effective_mode
        tag = mode.name if mode is not None else "?"
        return f"<{self.class_info.name}@{tag} #{self.oid}>"


class MCaseV:
    """A mode-case value: a tagged union over modes.

    ``branches`` maps each declared mode to its (already evaluated)
    value; ``default`` holds the value of an optional ``default:`` branch.
    """

    __slots__ = ("branches", "default", "has_default")

    _MISSING = object()

    def __init__(self, branches: Dict[Mode, object],
                 default: object = _MISSING) -> None:
        self.branches = branches
        self.has_default = default is not MCaseV._MISSING
        self.default = None if not self.has_default else default

    def select(self, mode: Optional[Mode]) -> object:
        """Eliminate against ``mode`` (the paper's ``e ◃ η``)."""
        if mode is None:
            raise EntRuntimeError(
                "cannot eliminate a mode case against a dynamic mode; "
                "snapshot the enclosing object first")
        if mode in self.branches:
            return self.branches[mode]
        if self.has_default:
            return self.default
        names = ", ".join(sorted(m.name for m in self.branches))
        raise EntRuntimeError(
            f"mode case has no branch for mode {mode.name} "
            f"(branches: {names})")

    def __repr__(self) -> str:
        parts = [f"{m.name}: {v!r}" for m, v in self.branches.items()]
        if self.has_default:
            parts.append(f"default: {self.default!r}")
        return "mcase{" + "; ".join(parts) + "}"
