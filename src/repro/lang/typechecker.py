"""The mixed static/dynamic typechecker for ENT (paper section 4.1).

Implements the paper's expression typing rules over the extended surface
language:

* **T-New** — dynamic classes must be instantiated at ``?``; instantiated
  mode-parameter bounds must be entailed by the current constraint set.
* **T-Msg** — the *static waterfall invariant* ``sfall``: the receiver's
  mode (or the method's overriding mode) must be ≤ the sender's mode.
  Messaging an object of dynamic mode is a compile-time error ("snapshot
  first"), except through mode-overridden methods and self-messaging
  (the internal view of an object may always message itself).
* **T-Snapshot** — ``snapshot e [lo, hi]`` types at a bounded existential;
  we open it immediately with a fresh mode variable constrained to
  ``[lo, hi]``, which subsequent code can use (the paper's
  ``∃ω.c⟨mt, ι⟩``).
* **T-MCase / T-ElimCase** — mode-case introduction and elimination;
  elimination is implicit at uses whose expected type is not an mcase,
  projecting on the enclosing object's mode.

Internal/external mode distinction: inside a class ``c ∆`` the receiver
``this`` is typed ``c⟨mt, ι⟩`` where ``mt = param(∆)[0]``; inside the
class's *attributor* it is typed ``c⟨?, ι⟩`` (attributors are invoked
externally, before a mode exists).

The checker decorates AST nodes in place with ``resolved_*`` attributes
consumed by the interpreter and by tests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Tuple

from repro.core.constraints import ConstraintSet
from repro.core.errors import (EntTypeError, ModeLatticeError, SourceSpan,
                               WaterfallError)
from repro.core.modes import BOTTOM, TOP, Mode, ModeLattice
from repro.lang import ast_nodes as ast
from repro.lang import types as ty
from repro.lang.natives import (NATIVE_STATIC_CLASSES, native_static_return,
                                native_value_method_return)
from repro.lang.types import (DYN, ClassInfo, ClassTable, FieldInfo,
                              MethodInfo, ModeAtom, ModeParam, ObjectType,
                              Type)

__all__ = ["CheckedProgram", "TypeChecker", "check_program"]


@dataclass
class CheckedProgram:
    """A typechecked program, ready for interpretation."""

    program: ast.Program
    lattice: ModeLattice
    table: ClassTable


@dataclass
class _Scope:
    """Lexical checking context for one body (method/constructor/etc.)."""

    class_info: ClassInfo
    this_type: ObjectType
    #: The sender mode used by sfall (the paper's ``omode(Γ(this))``, or
    #: the method's overriding mode inside mode-overridden methods).
    sender_atom: ModeAtom
    #: Mode variables in scope: class params plus any method-level var.
    mode_vars: Dict[str, ModeParam]
    constraints: ConstraintSet
    locals: List[Dict[str, Type]] = dc_field(default_factory=list)
    return_type: Type = ty.VOID
    in_attributor: bool = False
    _fresh_counter: int = 0

    def push(self) -> None:
        self.locals.append({})

    def pop(self) -> None:
        self.locals.pop()

    def declare(self, name: str, typ: Type, span=None) -> None:
        for frame in self.locals:
            if name in frame:
                raise EntTypeError(f"duplicate local {name!r}", span)
        self.locals[-1][name] = typ

    def lookup_local(self, name: str) -> Optional[Type]:
        for frame in reversed(self.locals):
            if name in frame:
                return frame[name]
        return None

    def fresh_var(self, hint: str = "S") -> str:
        self._fresh_counter += 1
        return f"${hint}{self._fresh_counter}"

    @property
    def context_atom(self) -> ModeAtom:
        """Default mode for elided instantiations of generic classes."""
        return BOTTOM if self.in_attributor else self.sender_atom


class TypeChecker:
    def __init__(self, program: ast.Program,
                 strict_mcase_coverage: bool = True) -> None:
        self.program = program
        self.strict_mcase_coverage = strict_mcase_coverage
        self.lattice = self._build_lattice()
        self.table = ClassTable()
        # (class name, extra param) -> base constraint set; ClassInfo
        # params are immutable once resolved, so entries never go stale.
        self._base_constraints_cache: Dict[
            Tuple[str, Optional[ModeParam]], ConstraintSet] = {}

    # ==================================================================
    # Phase 1: mode lattice

    def _build_lattice(self) -> ModeLattice:
        pairs: List[Tuple[str, str]] = []
        singles: List[str] = []
        for decl in self.program.modes:
            pairs.extend(decl.pairs)
            singles.extend(decl.singletons)
        try:
            return ModeLattice.from_names(pairs, extra_modes=singles)
        except ModeLatticeError:
            raise

    def _mode_const(self, name: str) -> Optional[Mode]:
        mode = Mode(name)
        return mode if mode in self.lattice else None

    # ==================================================================
    # Phase 2/3: class table construction

    def check(self) -> CheckedProgram:
        for cls in self.program.classes:
            self.table.add(self._build_class_skeleton(cls))
        self.table.check_acyclic()
        for cls in self.program.classes:
            info = self.table.get(cls.name)
            if info.is_dynamic and not self._has_attributor(info):
                raise EntTypeError(
                    f"dynamic class {cls.name} must declare (or "
                    f"inherit) an attributor", cls.span)
        for cls in self.program.classes:
            self._resolve_signatures(cls)
        for cls in self.program.classes:
            self._check_class(cls)
        return CheckedProgram(self.program, self.lattice, self.table)

    def _build_class_skeleton(self, cls: ast.ClassDecl) -> ClassInfo:
        params = self._resolve_mode_params(cls)
        transparent = cls.mode_param is None and cls.name != "Main"
        info = ClassInfo(name=cls.name, superclass=cls.superclass,
                         params=params, decl=cls, transparent=transparent,
                         has_attributor=cls.attributor is not None)
        if cls.name == "Object":
            raise EntTypeError("cannot redeclare class Object", cls.span)
        if not info.is_dynamic and cls.attributor is not None:
            raise EntTypeError(
                f"class {cls.name} has an attributor but is not dynamic "
                f"(declare it @mode<?> or @mode<?X>)", cls.span)
        return info

    def _resolve_mode_params(self, cls: ast.ClassDecl) -> List[ModeParam]:
        if cls.mode_param is None:
            if cls.name == "Main":
                # Main is typed at ⊤: boot(P) = cl(⊤, main body).
                return [ModeParam(concrete=TOP)]
            # Unannotated classes are implicitly mode-generic: plain Java
            # code stays typeable, with objects adopting their creator's
            # mode by default.
            return [ModeParam(var=f"$X_{cls.name}")]
        params = [self._resolve_mode_param(cls, cls.mode_param, first=True)]
        for node in cls.extra_params:
            params.append(self._resolve_mode_param(cls, node, first=False))
        names = [p.var for p in params if p.var is not None]
        if len(names) != len(set(names)):
            raise EntTypeError(
                f"duplicate mode parameter in class {cls.name}", cls.span)
        return params

    def _resolve_mode_param(self, cls: ast.ClassDecl,
                            node: ast.ModeParamNode,
                            first: bool) -> ModeParam:
        if node.dynamic and not first:
            raise EntTypeError(
                "only the first mode parameter may be dynamic", node.span)
        lower = self._resolve_bound(node.lower, BOTTOM, node.span)
        upper = self._resolve_bound(node.upper, TOP, node.span)
        if not self.lattice.leq(lower, upper):
            raise EntTypeError(
                f"mode parameter bounds are inverted: {lower} </= {upper}",
                node.span)
        if node.var is None:
            if not node.dynamic:
                raise EntTypeError("missing mode parameter name", node.span)
            return ModeParam(dynamic=True, var=f"$X_{cls.name}",
                             lower=lower, upper=upper)
        const = self._mode_const(node.var)
        if const is not None:
            if node.dynamic:
                raise EntTypeError(
                    f"dynamic mode parameter cannot be the concrete mode "
                    f"{const}", node.span)
            if not first:
                raise EntTypeError(
                    "extra mode parameters must be variables", node.span)
            return ModeParam(concrete=const)
        return ModeParam(dynamic=node.dynamic, var=node.var,
                         lower=lower, upper=upper)

    def _resolve_bound(self, name: Optional[str], default: Mode,
                       span) -> Mode:
        if name is None:
            return default
        const = self._mode_const(name)
        if const is None:
            raise EntTypeError(
                f"mode parameter bound {name!r} is not a declared mode",
                span)
        return const

    # ------------------------------------------------------------------
    # Signature resolution

    def _class_mode_vars(self, info: ClassInfo) -> Dict[str, ModeParam]:
        return {p.var: p for p in info.params if p.var is not None}

    def _resolve_signatures(self, cls: ast.ClassDecl) -> None:
        info = self.table.get(cls.name)
        mode_vars = self._class_mode_vars(info)
        context = info.internal_atom
        # Superclass mode arguments.
        if cls.super_mode_args is not None:
            super_info = self.table.get(cls.superclass)
            info.super_args = self._resolve_mode_args(
                cls.super_mode_args, super_info, mode_vars, context,
                cls.span, allow_dynamic=False)
        for fdecl in cls.fields:
            if fdecl.name in info.fields:
                raise EntTypeError(
                    f"duplicate field {fdecl.name!r} in {cls.name}",
                    fdecl.span)
            declared = self._resolve_type(fdecl.declared, mode_vars, context)
            if declared == ty.VOID:
                raise EntTypeError("field cannot have type void", fdecl.span)
            info.fields[fdecl.name] = FieldInfo(
                name=fdecl.name, owner=cls.name, declared=declared,
                decl=fdecl)
        for mdecl in cls.methods:
            if mdecl.name in info.methods:
                raise EntTypeError(
                    f"duplicate method {mdecl.name!r} in {cls.name}",
                    mdecl.span)
            info.methods[mdecl.name] = self._resolve_method_signature(
                cls, info, mdecl, mode_vars)

    def _resolve_method_signature(self, cls: ast.ClassDecl, info: ClassInfo,
                                  mdecl: ast.MethodDecl,
                                  class_vars: Dict[str, ModeParam]
                                  ) -> MethodInfo:
        mode_param: Optional[ModeParam] = None
        scope_vars = dict(class_vars)
        if mdecl.mode_param is not None:
            node = mdecl.mode_param
            lower = self._resolve_bound(node.lower, BOTTOM, node.span)
            upper = self._resolve_bound(node.upper, TOP, node.span)
            if node.var is None:
                if not node.dynamic:
                    raise EntTypeError("empty method mode annotation",
                                       node.span)
                mode_param = ModeParam(dynamic=True,
                                       var=f"$M_{cls.name}_{mdecl.name}",
                                       lower=lower, upper=upper)
            else:
                const = self._mode_const(node.var)
                if const is not None:
                    mode_param = ModeParam(dynamic=node.dynamic,
                                           concrete=const)
                else:
                    if node.var in scope_vars:
                        raise EntTypeError(
                            f"method mode variable {node.var!r} shadows a "
                            f"class mode parameter", node.span)
                    mode_param = ModeParam(dynamic=node.dynamic,
                                           var=node.var,
                                           lower=lower, upper=upper)
            if mode_param.var is not None:
                scope_vars[mode_param.var] = mode_param
        if mdecl.attributor is not None:
            if mode_param is None or not mode_param.dynamic:
                raise EntTypeError(
                    f"method {mdecl.name!r} has an attributor but no "
                    f"dynamic mode annotation (@mode<?X>)", mdecl.span)
        elif mode_param is not None and mode_param.dynamic:
            raise EntTypeError(
                f"method {mdecl.name!r} is declared @mode<?...> but has "
                f"no attributor", mdecl.span)
        context = info.internal_atom
        param_types = [self._resolve_type(p.declared, scope_vars, context)
                       for p in mdecl.params]
        param_names = [p.name for p in mdecl.params]
        if len(param_names) != len(set(param_names)):
            raise EntTypeError(
                f"duplicate parameter name in {cls.name}.{mdecl.name}",
                mdecl.span)
        return_type = self._resolve_type(mdecl.return_type, scope_vars,
                                         context)
        return MethodInfo(name=mdecl.name, owner=cls.name,
                          param_types=param_types, param_names=param_names,
                          return_type=return_type, mode_param=mode_param,
                          has_attributor=mdecl.attributor is not None,
                          decl=mdecl)

    # ------------------------------------------------------------------
    # Type resolution

    def _resolve_type(self, node: ast.TypeNode,
                      mode_vars: Dict[str, ModeParam],
                      context: ModeAtom) -> Type:
        if isinstance(node, ast.PrimTypeNode):
            return ty.prim_type(node.name)
        if isinstance(node, ast.MCaseTypeNode):
            element = self._resolve_type(node.element, mode_vars, context)
            if isinstance(element, ty.MCaseType):
                raise EntTypeError("nested mcase types are not supported",
                                   node.span)
            return ty.MCaseType(element)
        assert isinstance(node, ast.ClassTypeNode)
        if node.name == "List":
            if node.mode_args is not None:
                raise EntTypeError("the native List takes no mode arguments",
                                   node.span)
            return ty.LIST
        if node.name not in self.table:
            raise EntTypeError(f"unknown class {node.name!r}", node.span)
        info = self.table.get(node.name)
        if node.mode_args is None:
            args = self._default_mode_args(info, context)
        else:
            args = self._resolve_mode_args(node.mode_args, info, mode_vars,
                                           context, node.span,
                                           allow_dynamic=True)
        resolved = ObjectType(node.name, args)
        node.resolved = resolved  # annotation for the interpreter
        return resolved

    def _default_mode_args(self, info: ClassInfo,
                           context: ModeAtom) -> Tuple[ModeAtom, ...]:
        """Mode arguments for an elided ``@mode<...>`` use of a class.

        Dynamic classes default to ``?``; concrete-mode classes to their
        fixed mode; generic classes adopt the context's mode (so
        unannotated Java-style code flows at a single mode).
        """
        args: List[ModeAtom] = []
        for index, param in enumerate(info.params):
            if param.concrete is not None:
                args.append(param.concrete)
            elif param.dynamic and index == 0:
                args.append(DYN)
            else:
                args.append(context)
        return tuple(args)

    def _resolve_mode_args(self, nodes: List[ast.ModeArgNode],
                           info: ClassInfo,
                           mode_vars: Dict[str, ModeParam],
                           context: ModeAtom, span,
                           allow_dynamic: bool) -> Tuple[ModeAtom, ...]:
        if len(nodes) != len(info.params):
            raise EntTypeError(
                f"class {info.name} expects {len(info.params)} mode "
                f"argument(s), got {len(nodes)}", span)
        args: List[ModeAtom] = []
        for index, node in enumerate(nodes):
            if node.dynamic:
                if not allow_dynamic:
                    raise EntTypeError("'?' is not allowed here", node.span)
                if index != 0 or not info.params[0].dynamic:
                    raise EntTypeError(
                        f"'?' may only instantiate the dynamic parameter "
                        f"of a dynamic class", node.span)
                args.append(DYN)
                continue
            args.append(self._resolve_mode_atom(node.name, mode_vars,
                                                node.span))
        return tuple(args)

    def _resolve_mode_atom(self, name: str,
                           mode_vars: Dict[str, ModeParam],
                           span) -> ModeAtom:
        if name in mode_vars:
            return name
        const = self._mode_const(name)
        if const is not None:
            return const
        raise EntTypeError(
            f"{name!r} is neither a declared mode nor a mode variable in "
            f"scope", span)

    # ==================================================================
    # Phase 4: body checking

    def _base_constraints(self, info: ClassInfo,
                          extra: Optional[ModeParam] = None
                          ) -> ConstraintSet:
        key = (info.name, extra)
        cached = self._base_constraints_cache.get(key)
        if cached is not None:
            return cached
        pairs = []
        for param in info.params:
            pairs.extend(param.bounds_constraints())
        if extra is not None:
            pairs.extend(extra.bounds_constraints())
        constraints = ConstraintSet(self.lattice, pairs)
        self._base_constraints_cache[key] = constraints
        return constraints

    def _internal_this_type(self, info: ClassInfo) -> ObjectType:
        return ObjectType(info.name,
                          tuple(p.internal_atom for p in info.params))

    def _external_this_type(self, info: ClassInfo) -> ObjectType:
        """``this`` as seen by attributors: ``c⟨?, ι⟩``."""
        atoms: List[ModeAtom] = [DYN]
        atoms.extend(p.internal_atom for p in info.params[1:])
        return ObjectType(info.name, tuple(atoms))

    def _check_class(self, cls: ast.ClassDecl) -> None:
        info = self.table.get(cls.name)
        mode_vars = self._class_mode_vars(info)
        constraints = self._base_constraints(info)
        this_type = self._internal_this_type(info)
        # Superclass instantiation must satisfy the superclass's bounds.
        if info.superclass is not None and info.super_args:
            super_info = self.table.get(info.superclass)
            self._check_instantiation_bounds(super_info, info.super_args,
                                             constraints, cls.span)
        # Field initializers are evaluated at construction, in the
        # internal view.
        for fdecl in cls.fields:
            if fdecl.init is None:
                continue
            scope = _Scope(class_info=info, this_type=this_type,
                           sender_atom=info.internal_atom,
                           mode_vars=mode_vars, constraints=constraints)
            scope.push()
            declared = info.fields[fdecl.name].declared
            self._check_expr_expecting(fdecl.init, scope, declared)
        # Class attributor: external view, returns a mode.
        if cls.attributor is not None:
            self._check_attributor(cls.attributor, info, mode_vars)
        if cls.constructor is not None:
            self._check_constructor(cls, info, mode_vars, constraints,
                                    this_type)
        for mdecl in cls.methods:
            self._check_method(info, info.methods[mdecl.name], mdecl)
        self._check_override_compatibility(info)

    def _check_override_compatibility(self, info: ClassInfo) -> None:
        """Overriding methods must preserve arity (we require identical
        parameter counts; full variance checking is out of scope)."""
        if info.superclass is None:
            return
        current = info.superclass
        while current is not None:
            super_info = self.table.get(current)
            for name, minfo in info.methods.items():
                if name in super_info.methods:
                    smeth = super_info.methods[name]
                    if len(smeth.param_types) != len(minfo.param_types):
                        raise EntTypeError(
                            f"{info.name}.{name} overrides "
                            f"{current}.{name} with a different arity")
            current = super_info.superclass

    def _check_attributor(self, attributor: ast.AttributorDecl,
                          info: ClassInfo,
                          mode_vars: Dict[str, ModeParam],
                          params: Optional[List[Tuple[str, Type]]] = None
                          ) -> None:
        scope = _Scope(class_info=info,
                       this_type=self._external_this_type(info),
                       sender_atom=BOTTOM,
                       mode_vars=dict(mode_vars),
                       constraints=self._base_constraints(info),
                       return_type=ty.MODE,
                       in_attributor=True)
        scope.push()
        for name, typ in params or []:
            scope.declare(name, typ, attributor.span)
        self._check_block(attributor.body, scope)
        if not self._always_returns(attributor.body):
            raise EntTypeError(
                f"attributor of {info.name} must return a mode on every "
                f"path", attributor.span)

    def _check_constructor(self, cls: ast.ClassDecl, info: ClassInfo,
                           mode_vars: Dict[str, ModeParam],
                           constraints: ConstraintSet,
                           this_type: ObjectType) -> None:
        ctor = cls.constructor
        assert ctor is not None
        scope = _Scope(class_info=info, this_type=this_type,
                       sender_atom=info.internal_atom,
                       mode_vars=mode_vars, constraints=constraints,
                       return_type=ty.VOID)
        scope.push()
        for p in ctor.params:
            declared = self._resolve_type(p.declared, mode_vars,
                                          info.internal_atom)
            scope.declare(p.name, declared, p.span)
        self._check_block(ctor.body, scope)

    def _check_method(self, info: ClassInfo, minfo: MethodInfo,
                      mdecl: ast.MethodDecl) -> None:
        mode_vars = self._class_mode_vars(info)
        sender: ModeAtom = info.internal_atom
        extra_param = None
        if minfo.mode_param is not None:
            mp = minfo.mode_param
            if mp.concrete is not None:
                # Mode-overridden method: the body runs at the override
                # mode (Listing 3's mediaCrawl).
                sender = mp.concrete
            else:
                assert mp.var is not None
                mode_vars = dict(mode_vars)
                mode_vars[mp.var] = mp
                sender = mp.var
                extra_param = mp
        constraints = self._base_constraints(info, extra_param)
        scope = _Scope(class_info=info,
                       this_type=self._internal_this_type(info),
                       sender_atom=sender, mode_vars=mode_vars,
                       constraints=constraints,
                       return_type=minfo.return_type)
        scope.push()
        for name, typ in zip(minfo.param_names, minfo.param_types):
            scope.declare(name, typ, mdecl.span)
        if mdecl.attributor is not None:
            # Method-level attributor: may inspect this and the arguments.
            params = list(zip(minfo.param_names, minfo.param_types))
            self._check_attributor(mdecl.attributor, info,
                                   self._class_mode_vars(info),
                                   params=params)
        self._check_block(mdecl.body, scope)
        if minfo.return_type != ty.VOID and not self._always_returns(
                mdecl.body):
            raise EntTypeError(
                f"method {info.name}.{minfo.name} must return a value on "
                f"every path", mdecl.span)

    # ------------------------------------------------------------------
    # Statements

    def _check_block(self, block: ast.Block, scope: _Scope) -> None:
        scope.push()
        for stmt in block.stmts:
            self._check_stmt(stmt, scope)
        scope.pop()

    def _check_stmt(self, stmt: ast.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, scope)
        elif isinstance(stmt, ast.LocalVarDecl):
            self._check_local_decl(stmt, scope)
        elif isinstance(stmt, ast.Assign):
            self._check_assign(stmt, scope)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.If):
            cond = self._check_expr_expecting(stmt.cond, scope, ty.BOOLEAN)
            self._require_assignable(cond, ty.BOOLEAN, scope,
                                     stmt.span, "if condition")
            self._check_stmt(stmt.then, scope)
            if stmt.otherwise is not None:
                self._check_stmt(stmt.otherwise, scope)
        elif isinstance(stmt, ast.While):
            cond = self._check_expr_expecting(stmt.cond, scope, ty.BOOLEAN)
            self._require_assignable(cond, ty.BOOLEAN, scope,
                                     stmt.span, "while condition")
            self._check_stmt(stmt.body, scope)
        elif isinstance(stmt, ast.Foreach):
            self._check_foreach(stmt, scope)
        elif isinstance(stmt, ast.Return):
            self._check_return(stmt, scope)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            pass
        elif isinstance(stmt, ast.TryCatch):
            if stmt.exc_class != "EnergyException":
                raise EntTypeError(
                    f"only EnergyException may be caught, not "
                    f"{stmt.exc_class!r}", stmt.span)
            self._check_stmt(stmt.body, scope)
            scope.push()
            scope.declare(stmt.exc_var, ty.STRING, stmt.span)
            self._check_stmt(stmt.handler, scope)
            scope.pop()
        elif isinstance(stmt, ast.Throw):
            typ = self._check_expr(stmt.expr, scope)
            self._require_assignable(typ, ty.STRING, scope, stmt.span,
                                     "throw (message)")
        else:  # pragma: no cover - parser produces no other statements
            raise EntTypeError(f"unsupported statement {type(stmt).__name__}",
                               stmt.span)

    def _check_local_decl(self, stmt: ast.LocalVarDecl,
                          scope: _Scope) -> None:
        declared: Optional[Type] = None
        node = stmt.declared
        infer = (isinstance(node, ast.ClassTypeNode)
                 and node.mode_args is None
                 and node.name in self.table
                 and stmt.init is not None)
        if infer:
            # Mode inference from the initializer: `Agent a = snapshot da;`
            init_type = self._check_expr(stmt.init, scope)
            declared = self._infer_local_type(node, init_type, scope)
            stmt.resolved_type = declared
        else:
            declared = self._resolve_type(node, scope.mode_vars,
                                          scope.context_atom)
            stmt.resolved_type = declared
            if declared == ty.VOID:
                raise EntTypeError("local cannot have type void", stmt.span)
            if stmt.init is not None:
                init_type = self._check_expr_expecting(stmt.init, scope,
                                                       declared)
                self._require_assignable(init_type, declared, scope,
                                         stmt.span,
                                         f"initializer of {stmt.name!r}")
        scope.declare(stmt.name, declared, stmt.span)

    def _infer_local_type(self, node: ast.ClassTypeNode, init_type: Type,
                          scope: _Scope) -> Type:
        info = self.table.get(node.name)
        if isinstance(init_type, ObjectType):
            for step in self.table.supertype_chain(init_type):
                if step.class_name == node.name:
                    return step
            raise EntTypeError(
                f"initializer of type {init_type} is not a {node.name}",
                node.span)
        if init_type == ty.NULL:
            return ObjectType(node.name,
                              self._default_mode_args(info,
                                                      scope.context_atom))
        raise EntTypeError(
            f"cannot initialize {node.name} from {init_type}", node.span)

    def _check_assign(self, stmt: ast.Assign, scope: _Scope) -> None:
        target_type = self._check_lvalue(stmt.target, scope)
        value_type = self._check_expr_expecting(stmt.value, scope,
                                                target_type)
        self._require_assignable(value_type, target_type, scope, stmt.span,
                                 "assignment")

    def _check_lvalue(self, target: ast.Expr, scope: _Scope) -> Type:
        if isinstance(target, ast.Var):
            local = scope.lookup_local(target.name)
            if local is not None:
                target.resolved_kind = "local"
                return local
            # Implicit this-field write.
            try:
                _, ftype = self.table.lookup_field(scope.this_type,
                                                   target.name)
            except EntTypeError:
                raise EntTypeError(f"unknown variable {target.name!r}",
                                   target.span) from None
            target.resolved_kind = "field"
            return ftype
        if isinstance(target, ast.FieldAccess):
            obj_type = self._check_expr(target.obj, scope)
            if not isinstance(obj_type, ObjectType):
                raise EntTypeError(
                    f"cannot assign to a field of {obj_type}", target.span)
            _, ftype = self.table.lookup_field(obj_type, target.name)
            return ftype
        raise EntTypeError("invalid assignment target", target.span)

    def _check_foreach(self, stmt: ast.Foreach, scope: _Scope) -> None:
        iterable = self._check_expr(stmt.iterable, scope)
        if iterable != ty.LIST:
            raise EntTypeError(
                f"foreach requires a List, got {iterable}", stmt.span)
        var_type = self._resolve_type(stmt.var_type, scope.mode_vars,
                                      scope.context_atom)
        stmt.resolved_var_type = var_type
        scope.push()
        scope.declare(stmt.var_name, var_type, stmt.span)
        self._check_stmt(stmt.body, scope)
        scope.pop()

    def _check_return(self, stmt: ast.Return, scope: _Scope) -> None:
        if scope.return_type == ty.VOID:
            if stmt.expr is not None:
                raise EntTypeError("void method cannot return a value",
                                   stmt.span)
            return
        if stmt.expr is None:
            raise EntTypeError(
                f"missing return value (expected {scope.return_type})",
                stmt.span)
        typ = self._check_expr_expecting(stmt.expr, scope, scope.return_type)
        self._require_assignable(typ, scope.return_type, scope, stmt.span,
                                 "return")

    def _always_returns(self, stmt: ast.Stmt) -> bool:
        if isinstance(stmt, ast.Return):
            return True
        if isinstance(stmt, ast.Throw):
            return True
        if isinstance(stmt, ast.Block):
            return any(self._always_returns(s) for s in stmt.stmts)
        if isinstance(stmt, ast.If):
            return (stmt.otherwise is not None
                    and self._always_returns(stmt.then)
                    and self._always_returns(stmt.otherwise))
        if isinstance(stmt, ast.TryCatch):
            return (self._always_returns(stmt.body)
                    and self._always_returns(stmt.handler))
        return False

    # ------------------------------------------------------------------
    # Expressions

    def _check_expr_expecting(self, expr: ast.Expr, scope: _Scope,
                              expected: Optional[Type]) -> Type:
        """Check ``expr``; implicitly eliminate a resulting mode case
        unless the context expects an mcase (T-ElimCase, implicit form)."""
        typ = self._check_expr_raw(expr, scope, expected)
        if isinstance(typ, ty.MCaseType) and not isinstance(
                expected, ty.MCaseType):
            return self._implicit_elim(expr, typ, scope)
        return typ

    def _check_expr(self, expr: ast.Expr, scope: _Scope) -> Type:
        return self._check_expr_expecting(expr, scope, None)

    def _implicit_elim(self, expr: ast.Expr, typ: ty.MCaseType,
                       scope: _Scope) -> Type:
        """Project a mode case on the enclosing object's mode."""
        atom = self._enclosing_mode_for_elim(expr, scope)
        if atom is DYN:
            raise EntTypeError(
                "cannot eliminate a mode case against a dynamic mode; "
                "snapshot the enclosing object first", expr.span)
        expr.implicit_elim = True
        return typ.element

    def _enclosing_mode_for_elim(self, expr: ast.Expr,
                                 scope: _Scope) -> ModeAtom:
        # For a field access the enclosing object is the field's owner;
        # otherwise the current receiver.
        if isinstance(expr, ast.FieldAccess):
            owner = getattr(expr, "owner_omode", None)
            if owner is not None:
                return owner
        if scope.in_attributor:
            return DYN
        return scope.this_type.omode

    def _check_expr_raw(self, expr: ast.Expr, scope: _Scope,
                        expected: Optional[Type]) -> Type:
        if isinstance(expr, ast.IntLit):
            return ty.INT
        if isinstance(expr, ast.FloatLit):
            return ty.DOUBLE
        if isinstance(expr, ast.StringLit):
            return ty.STRING
        if isinstance(expr, ast.BoolLit):
            return ty.BOOLEAN
        if isinstance(expr, ast.NullLit):
            return ty.NULL
        if isinstance(expr, ast.This):
            return scope.this_type
        if isinstance(expr, ast.Var):
            return self._check_var(expr, scope)
        if isinstance(expr, ast.FieldAccess):
            return self._check_field_access(expr, scope)
        if isinstance(expr, ast.MethodCall):
            return self._check_call(expr, scope)
        if isinstance(expr, ast.New):
            return self._check_new(expr, scope)
        if isinstance(expr, ast.Cast):
            return self._check_cast(expr, scope)
        if isinstance(expr, ast.Snapshot):
            return self._check_snapshot(expr, scope)
        if isinstance(expr, ast.MCaseExpr):
            return self._check_mcase(expr, scope, expected)
        if isinstance(expr, ast.MSelect):
            return self._check_mselect(expr, scope)
        if isinstance(expr, ast.Binary):
            return self._check_binary(expr, scope)
        if isinstance(expr, ast.Unary):
            return self._check_unary(expr, scope)
        if isinstance(expr, ast.ListLit):
            for element in expr.elements:
                self._check_expr(element, scope)
            return ty.LIST
        if isinstance(expr, ast.InstanceOf):
            return self._check_instanceof(expr, scope)
        raise EntTypeError(  # pragma: no cover
            f"unsupported expression {type(expr).__name__}", expr.span)

    def _check_var(self, expr: ast.Var, scope: _Scope) -> Type:
        local = scope.lookup_local(expr.name)
        if local is not None:
            expr.resolved_kind = "local"
            return local
        # Implicit this-field read.
        try:
            _, ftype = self.table.lookup_field(scope.this_type, expr.name)
            expr.resolved_kind = "field"
            expr.owner_omode = scope.this_type.omode
            return ftype
        except EntTypeError:
            pass
        const = self._mode_const(expr.name)
        if const is not None:
            expr.resolved_kind = "mode"
            return ty.MODE
        if expr.name in NATIVE_STATIC_CLASSES:
            expr.resolved_kind = "native"
            return ty.NativeType(expr.name)
        raise EntTypeError(f"unknown variable {expr.name!r}", expr.span)

    def _check_field_access(self, expr: ast.FieldAccess,
                            scope: _Scope) -> Type:
        obj_type = self._check_expr(expr.obj, scope)
        if isinstance(obj_type, ObjectType):
            _, ftype = self.table.lookup_field(obj_type, expr.name)
            expr.owner_omode = obj_type.omode
            return ftype
        raise EntTypeError(
            f"cannot access field {expr.name!r} on {obj_type}", expr.span)

    # -- messaging ------------------------------------------------------

    def _check_call(self, expr: ast.MethodCall, scope: _Scope) -> Type:
        if expr.receiver is None:
            return self._check_user_call(expr, scope.this_type, scope,
                                         self_call=True)
        receiver_type = self._check_expr(expr.receiver, scope)
        if receiver_type == ty.ANY:
            raise EntTypeError(
                f"cannot invoke {expr.name!r} on a type-erased List "
                f"element; cast it to a class type first", expr.span)
        if isinstance(receiver_type, ty.NativeType):
            return self._check_native_call(expr, receiver_type, scope)
        if receiver_type == ty.STRING:
            return self._check_string_method(expr, scope)
        if isinstance(receiver_type, ObjectType):
            self_call = isinstance(expr.receiver, ast.This)
            return self._check_user_call(expr, receiver_type, scope,
                                         self_call=self_call)
        if receiver_type == ty.ANY:
            raise EntTypeError(
                f"cannot invoke {expr.name!r} on a type-erased List "
                f"element; cast it to a class type first", expr.span)
        raise EntTypeError(
            f"cannot invoke {expr.name!r} on {receiver_type}", expr.span)

    def _check_user_call(self, expr: ast.MethodCall,
                         receiver_type: ObjectType, scope: _Scope,
                         self_call: bool) -> Type:
        minfo, mapping = self.table.lookup_method(receiver_type, expr.name)
        if len(expr.args) != len(minfo.param_types):
            raise EntTypeError(
                f"{receiver_type.class_name}.{expr.name} expects "
                f"{len(minfo.param_types)} argument(s), got "
                f"{len(expr.args)}", expr.span)
        mapping = dict(mapping)
        arg_types: List[Type] = []
        method_var = (minfo.mode_param.var
                      if minfo.mode_param is not None else None)
        # First pass: check arguments (inferring a generic method's mode
        # variable from the argument types, Java-generics style).
        for arg, ptype in zip(expr.args, minfo.param_types):
            expected = ptype.substitute(
                {k: v for k, v in mapping.items() if k != method_var})
            arg_type = self._check_expr_expecting(arg, scope, expected)
            arg_types.append(arg_type)
        if method_var is not None and not minfo.has_attributor:
            binding = self._infer_method_mode(minfo, mapping, arg_types,
                                              expr)
            mapping[method_var] = binding
        full_subst = dict(mapping)
        if method_var is not None and method_var not in full_subst:
            # Dynamic method (attributor): mode determined at run time.
            full_subst[method_var] = DYN
        for arg, arg_type, ptype in zip(expr.args, arg_types,
                                        minfo.param_types):
            expected = ptype.substitute(full_subst)
            self._require_assignable(arg_type, expected, scope, arg.span,
                                     f"argument to {expr.name!r}")
        self._check_msg_waterfall(expr, receiver_type, minfo, full_subst,
                                  scope, self_call)
        # Annotations for repro.analysis (see ast_nodes.MethodCall).
        expr.resolved_receiver_type = receiver_type
        expr.resolved_minfo = minfo
        expr.resolved_self_call = self_call
        return minfo.return_type.substitute(full_subst)

    def _infer_method_mode(self, minfo: MethodInfo,
                           class_mapping: Dict[str, ModeAtom],
                           arg_types: List[Type],
                           expr: ast.MethodCall) -> ModeAtom:
        var = minfo.mode_param.var
        assert var is not None
        bindings: List[ModeAtom] = []
        for ptype, atype in zip(minfo.param_types, arg_types):
            declared = ptype.substitute(
                {k: v for k, v in class_mapping.items() if k != var})
            bindings.extend(self._collect_bindings(declared, atype, var))
        if not bindings:
            raise EntTypeError(
                f"cannot infer mode parameter {var!r} of method "
                f"{minfo.owner}.{minfo.name} from its arguments",
                expr.span)
        first = bindings[0]
        for other in bindings[1:]:
            if other != first:
                raise EntTypeError(
                    f"conflicting inferences for mode parameter {var!r}: "
                    f"{ty.atom_str(first)} vs {ty.atom_str(other)}",
                    expr.span)
        return first

    def _collect_bindings(self, declared: Type, actual: Type,
                          var: str) -> List[ModeAtom]:
        out: List[ModeAtom] = []
        if isinstance(declared, ObjectType) and isinstance(actual,
                                                           ObjectType):
            # Align the actual type with the declared class.
            for step in self.table.supertype_chain(actual):
                if step.class_name == declared.class_name:
                    actual = step
                    break
            else:
                return out
            for datom, aatom in zip(declared.mode_args, actual.mode_args):
                if datom == var:
                    out.append(aatom)
        elif isinstance(declared, ty.MCaseType) and isinstance(
                actual, ty.MCaseType):
            out.extend(self._collect_bindings(declared.element,
                                              actual.element, var))
        return out

    def _check_msg_waterfall(self, expr: ast.MethodCall,
                             receiver_type: ObjectType, minfo: MethodInfo,
                             subst: Dict[str, ModeAtom], scope: _Scope,
                             self_call: bool) -> None:
        """T-Msg: enforce sfall, with method-level mode overrides."""
        guard: Optional[ModeAtom] = None
        if minfo.mode_param is not None:
            mp = minfo.mode_param
            if mp.concrete is not None:
                guard = mp.concrete
            else:
                guard = subst.get(mp.var, DYN)
            if minfo.has_attributor:
                # Method-level attributor: mode checked at run time
                # (analogous to snapshotting).
                expr.runtime_mode_check = True
                return
        else:
            if self_call:
                # Internal view: an object may always message itself.
                return
            if self.table.get(receiver_type.class_name).transparent:
                # Plain-Java receiver: runs at the caller's mode, no
                # waterfall check needed.
                return
            guard = receiver_type.omode
        if guard is DYN:
            if minfo.mode_param is not None:
                # A generic method instantiated at ?: its cost tracks a
                # dynamic argument whose own uses are checked separately.
                expr.runtime_mode_check = True
                return
            raise WaterfallError(
                f"cannot message {receiver_type}: its mode is dynamic; "
                f"snapshot it first", expr.span)
        sender = scope.sender_atom
        if sender is DYN or scope.in_attributor:
            if not scope.constraints.entails_one(guard, BOTTOM):
                raise WaterfallError(
                    f"attributors may not message mode-carrying objects "
                    f"(receiver mode {ty.atom_str(guard)})", expr.span)
            return
        if not scope.constraints.entails_one(guard, sender):
            raise WaterfallError(
                f"waterfall invariant violated: receiver mode "
                f"{ty.atom_str(guard)} is not <= sender mode "
                f"{ty.atom_str(sender)} (method "
                f"{receiver_type.class_name}.{expr.name})", expr.span)

    def _check_native_call(self, expr: ast.MethodCall,
                           receiver: ty.NativeType, scope: _Scope) -> Type:
        arg_types = [self._check_expr(arg, scope) for arg in expr.args]
        if receiver == ty.LIST:
            result = native_value_method_return("List", expr.name,
                                                arg_types)
        else:
            result = native_static_return(receiver.name, expr.name,
                                          arg_types)
        if result is None:
            raise EntTypeError(
                f"unknown native method {receiver.name}.{expr.name} for "
                f"{len(arg_types)} argument(s)", expr.span)
        return result

    def _check_string_method(self, expr: ast.MethodCall,
                             scope: _Scope) -> Type:
        arg_types = [self._check_expr(arg, scope) for arg in expr.args]
        result = native_value_method_return("String", expr.name, arg_types)
        if result is None:
            raise EntTypeError(f"unknown String method {expr.name!r}",
                               expr.span)
        return result

    # -- object creation -------------------------------------------------

    def _check_new(self, expr: ast.New, scope: _Scope) -> Type:
        if expr.class_name == "List":
            if expr.mode_args is not None or expr.args:
                raise EntTypeError("new List() takes no arguments",
                                   expr.span)
            expr.resolved_type = ty.LIST
            return ty.LIST
        if expr.class_name not in self.table:
            raise EntTypeError(f"unknown class {expr.class_name!r}",
                               expr.span)
        info = self.table.get(expr.class_name)
        if expr.mode_args is None:
            args = self._default_mode_args(info, scope.context_atom)
        else:
            args = self._resolve_mode_args(expr.mode_args, info,
                                           scope.mode_vars,
                                           scope.context_atom, expr.span,
                                           allow_dynamic=True)
        # T-New: a dynamic class is instantiated at ?, and only at ?.
        if info.is_dynamic and args[0] is not DYN:
            raise EntTypeError(
                f"dynamic class {info.name} must be instantiated at '?'; "
                f"obtain a static mode via snapshot", expr.span)
        if not info.is_dynamic and args and args[0] is DYN:
            raise EntTypeError(
                f"class {info.name} is not dynamic; cannot instantiate "
                f"at '?'", expr.span)
        self._check_instantiation_bounds(info, args, scope.constraints,
                                         expr.span)
        result = ObjectType(expr.class_name, args)
        expr.resolved_type = result
        # Constructor arguments.
        ctor = info.decl.constructor if info.decl is not None else None
        mapping = self.table.instantiate(info, args)
        if ctor is None:
            if expr.args:
                raise EntTypeError(
                    f"class {info.name} has no constructor but received "
                    f"arguments", expr.span)
        else:
            if len(expr.args) != len(ctor.params):
                raise EntTypeError(
                    f"constructor of {info.name} expects "
                    f"{len(ctor.params)} argument(s), got "
                    f"{len(expr.args)}", expr.span)
            class_vars = self._class_mode_vars(info)
            for arg, param in zip(expr.args, ctor.params):
                declared = self._resolve_type(param.declared, class_vars,
                                              info.internal_atom)
                expected = declared.substitute(mapping)
                atype = self._check_expr_expecting(arg, scope, expected)
                self._require_assignable(
                    atype, expected, scope, arg.span,
                    f"constructor argument {param.name!r}")
        return result

    def _check_instantiation_bounds(self, info: ClassInfo,
                                    args: Tuple[ModeAtom, ...],
                                    constraints: ConstraintSet,
                                    span) -> None:
        """``K ⊩ cons(∆{ι/params})`` from T-New."""
        for param, arg in zip(info.params, args):
            if arg is DYN:
                continue
            if param.concrete is not None:
                if arg != param.concrete:
                    raise EntTypeError(
                        f"class {info.name} is fixed at mode "
                        f"{param.concrete}, cannot instantiate at "
                        f"{ty.atom_str(arg)}", span)
                continue
            if not constraints.entails_one(param.lower, arg):
                raise EntTypeError(
                    f"mode argument {ty.atom_str(arg)} violates lower "
                    f"bound {param.lower} of {info.name}", span)
            if not constraints.entails_one(arg, param.upper):
                raise EntTypeError(
                    f"mode argument {ty.atom_str(arg)} violates upper "
                    f"bound {param.upper} of {info.name}", span)

    # -- casts, snapshot, mcase ------------------------------------------

    def _check_cast(self, expr: ast.Cast, scope: _Scope) -> Type:
        target = self._resolve_type(expr.target, scope.mode_vars,
                                    scope.context_atom)
        expr.resolved_target = target
        source = self._check_expr_expecting(expr.expr, scope, target)
        if target in (ty.INT, ty.DOUBLE) and source in (ty.INT, ty.DOUBLE):
            return target
        if source in (ty.NULL, ty.ANY):
            # Downcast from a type-erased List element: run-time checked.
            return target
        if isinstance(target, ObjectType) and isinstance(source,
                                                         ObjectType):
            up = self.table.is_subclass(source.class_name,
                                        target.class_name)
            down = self.table.is_subclass(target.class_name,
                                          source.class_name)
            if not (up or down):
                raise EntTypeError(
                    f"impossible cast from {source} to {target}", expr.span)
            return target
        if target == source:
            return target
        raise EntTypeError(f"cannot cast {source} to {target}", expr.span)

    def _check_snapshot(self, expr: ast.Snapshot, scope: _Scope) -> Type:
        source = self._check_expr(expr.expr, scope)
        if not isinstance(source, ObjectType):
            raise EntTypeError(f"cannot snapshot {source}", expr.span)
        if source.omode is not DYN:
            raise EntTypeError(
                f"snapshot requires an object of dynamic mode, got "
                f"{source}", expr.span)
        info = self.table.get(source.class_name)
        if not self._has_attributor(info):
            raise EntTypeError(
                f"class {source.class_name} has no attributor", expr.span)
        lower = self._resolve_snapshot_bound(expr.lower, BOTTOM, scope)
        upper = self._resolve_snapshot_bound(expr.upper, TOP, scope)
        # T-Snapshot: open the bounded existential with a fresh variable.
        fresh = scope.fresh_var()
        scope.constraints = scope.constraints.extend(
            [(lower, fresh), (fresh, upper)])
        expr.resolved_bounds = (lower, upper)
        expr.opened_var = fresh
        expr.resolved_class_name = source.class_name
        return ObjectType(source.class_name,
                          (fresh,) + source.mode_args[1:])

    def _has_attributor(self, info: ClassInfo) -> bool:
        current: Optional[ClassInfo] = info
        while current is not None:
            if current.has_attributor:
                return True
            current = (self.table.get(current.superclass)
                       if current.superclass else None)
        return False

    def _resolve_snapshot_bound(self, bound: Optional[ast.SnapshotBound],
                                default: Mode, scope: _Scope) -> ModeAtom:
        if bound is None or bound.name is None:
            return default
        return self._resolve_mode_atom(bound.name, scope.mode_vars,
                                       bound.span)

    def _check_mcase(self, expr: ast.MCaseExpr, scope: _Scope,
                     expected: Optional[Type]) -> Type:
        element: Optional[Type] = None
        if expr.element is not None:
            element = self._resolve_type(expr.element, scope.mode_vars,
                                         scope.context_atom)
        elif isinstance(expected, ty.MCaseType):
            element = expected.element
        seen = set()
        has_default = False
        branch_types: List[Type] = []
        for branch in expr.branches:
            if branch.mode_name is None:
                if has_default:
                    raise EntTypeError("duplicate default branch",
                                       branch.span)
                has_default = True
            else:
                const = self._mode_const(branch.mode_name)
                if const is None:
                    raise EntTypeError(
                        f"mcase branch {branch.mode_name!r} is not a "
                        f"declared mode", branch.span)
                if const in seen:
                    raise EntTypeError(
                        f"duplicate mcase branch for mode {const}",
                        branch.span)
                seen.add(const)
            btype = self._check_expr_expecting(branch.expr, scope, element)
            branch_types.append(btype)
        if not expr.branches:
            raise EntTypeError("empty mcase expression", expr.span)
        if element is None:
            element = self._join_branch_types(branch_types, expr.span)
        for branch, btype in zip(expr.branches, branch_types):
            self._require_assignable(btype, element, scope, branch.span,
                                     "mcase branch")
        if self.strict_mcase_coverage and not has_default:
            missing = self.lattice.declared_modes - seen
            if missing:
                names = ", ".join(sorted(m.name for m in missing))
                raise EntTypeError(
                    f"mcase does not cover modes: {names} (add branches "
                    f"or a default)", expr.span)
        expr.resolved_element = element
        return ty.MCaseType(element)

    def _join_branch_types(self, branch_types: List[Type],
                           span) -> Type:
        first = branch_types[0]
        for other in branch_types[1:]:
            if other != first:
                if {first, other} == {ty.INT, ty.DOUBLE}:
                    first = ty.DOUBLE
                    continue
                raise EntTypeError(
                    f"mcase branches have incompatible types {first} and "
                    f"{other}; annotate the element type", span)
        return first

    def _check_mselect(self, expr: ast.MSelect, scope: _Scope) -> Type:
        inner = self._check_expr_raw(expr.expr, scope,
                                     ty.MCaseType(ty.VOID))
        if not isinstance(inner, ty.MCaseType):
            raise EntTypeError(
                f"mselect requires an mcase value, got {inner}", expr.span)
        atom = self._resolve_mode_atom(expr.mode_name, scope.mode_vars,
                                       expr.span)
        expr.resolved_mode = atom
        return inner.element

    # -- operators ---------------------------------------------------------

    _NUMERIC = {"+", "-", "*", "/", "%"}
    _COMPARE = {"<", "<=", ">", ">="}
    _EQUALITY = {"==", "!="}
    _LOGICAL = {"&&", "||"}

    def _check_binary(self, expr: ast.Binary, scope: _Scope) -> Type:
        left = self._check_expr(expr.left, scope)
        right = self._check_expr(expr.right, scope)
        op = expr.op
        if op == "+" and (left == ty.STRING or right == ty.STRING):
            return ty.STRING
        if op in self._NUMERIC:
            if left in (ty.INT, ty.DOUBLE) and right in (ty.INT, ty.DOUBLE):
                return ty.DOUBLE if ty.DOUBLE in (left, right) else ty.INT
            raise EntTypeError(
                f"operator {op!r} requires numeric operands, got {left} "
                f"and {right}", expr.span)
        if op in self._COMPARE:
            if left in (ty.INT, ty.DOUBLE) and right in (ty.INT, ty.DOUBLE):
                return ty.BOOLEAN
            raise EntTypeError(
                f"operator {op!r} requires numeric operands, got {left} "
                f"and {right}", expr.span)
        if op in self._EQUALITY:
            return ty.BOOLEAN
        if op in self._LOGICAL:
            for side, typ in (("left", left), ("right", right)):
                if typ != ty.BOOLEAN:
                    raise EntTypeError(
                        f"operator {op!r} requires boolean operands; "
                        f"{side} operand is {typ}", expr.span)
            return ty.BOOLEAN
        raise EntTypeError(f"unknown operator {op!r}",
                           expr.span)  # pragma: no cover

    def _check_unary(self, expr: ast.Unary, scope: _Scope) -> Type:
        inner = self._check_expr(expr.expr, scope)
        if expr.op == "-":
            if inner in (ty.INT, ty.DOUBLE):
                return inner
            raise EntTypeError(f"cannot negate {inner}", expr.span)
        if expr.op == "!":
            if inner == ty.BOOLEAN:
                return ty.BOOLEAN
            raise EntTypeError(f"cannot apply '!' to {inner}", expr.span)
        raise EntTypeError(f"unknown unary operator {expr.op!r}",
                           expr.span)  # pragma: no cover

    def _check_instanceof(self, expr: ast.InstanceOf,
                          scope: _Scope) -> Type:
        inner = self._check_expr(expr.expr, scope)
        if expr.class_name not in self.table:
            raise EntTypeError(f"unknown class {expr.class_name!r}",
                               expr.span)
        if not isinstance(inner, ObjectType) and inner not in (ty.NULL,
                                                               ty.ANY):
            raise EntTypeError(
                f"instanceof requires an object, got {inner}", expr.span)
        return ty.BOOLEAN

    # ------------------------------------------------------------------
    # Subtyping / assignability

    def _require_assignable(self, source: Type, target: Type,
                            scope: _Scope, span, context: str) -> None:
        if not self._assignable(source, target, scope.constraints):
            raise EntTypeError(
                f"{context}: {source} is not assignable to {target}", span)

    def _assignable(self, source: Type, target: Type,
                    constraints: ConstraintSet) -> bool:
        if source == target:
            return True
        if source == ty.ANY or target == ty.ANY:
            # The type-erased element type of native Lists: statically
            # permissive, checked by casts at run time.
            return True
        if source == ty.NULL:
            return isinstance(target, (ObjectType, ty.MCaseType,
                                       ty.NativeType)) or target == ty.STRING
        if source == ty.INT and target == ty.DOUBLE:
            return True
        if isinstance(source, ty.MCaseType) and isinstance(
                target, ty.MCaseType):
            return self._assignable(source.element, target.element,
                                    constraints)
        if isinstance(source, ObjectType) and isinstance(target,
                                                         ObjectType):
            for step in self.table.supertype_chain(source):
                if step.class_name == target.class_name:
                    if self.table.get(target.class_name).transparent:
                        # Mode-transparent (unannotated) classes flow
                        # freely across mode contexts.
                        return True
                    return self._mode_args_equivalent(
                        step.mode_args, target.mode_args, constraints)
            return False
        return False

    def _mode_args_equivalent(self, left: Tuple[ModeAtom, ...],
                              right: Tuple[ModeAtom, ...],
                              constraints: ConstraintSet) -> bool:
        """Mode arguments are invariant (non-equivocation): each pair must
        be provably equal under the constraint set, or both dynamic."""
        if len(left) != len(right):
            return False
        for a, b in zip(left, right):
            if a is DYN or b is DYN:
                if a is not b:
                    return False
                continue
            if a == b:
                continue
            if not (constraints.entails_one(a, b)
                    and constraints.entails_one(b, a)):
                return False
        return True


def check_program(source_or_program,
                  strict_mcase_coverage: bool = True) -> CheckedProgram:
    """Parse (if given text) and typecheck an ENT program."""
    if isinstance(source_or_program, str):
        from repro.lang.parser import parse_program
        program = parse_program(source_or_program)
    else:
        program = source_or_program
    checker = TypeChecker(program,
                          strict_mcase_coverage=strict_mcase_coverage)
    return checker.check()
