"""The register-bytecode VM: ENT's third (and fastest) execution engine.

:mod:`repro.lang.bytecode` lowers typechecked bodies to flat register
code; this module runs it.  The dispatch loop is a hotness-ordered
``if``/``elif`` chain over integer opcodes (CPython 3.11's adaptive
interpreter specializes the compares), with three structural choices
that buy the speedup over the closure compiler:

* **No control-flow exceptions** — ``return`` returns straight out of
  the dispatch function, ``break``/``continue`` are jumps resolved at
  lowering time, and ``try``/``catch`` keeps an explicit handler stack
  per activation instead of a Python ``try`` per statement.
* **Leaf-call fast path** — monomorphic sends to plain methods (no
  mode parameter) found in the per-call-site inline cache enter the
  callee's register frame directly: no ``_invoke``, no argument dict,
  just a template copy and a recursive ``_run``.  The dfall check (or
  its planner-elided counter) still runs — check counts are engine
  invariant.
* **Deferred argument elimination** — call arguments lower *raw* with a
  per-site descriptor saying how to eliminate a mode-case value once
  the callee's parameter types are known, so the common non-mcase send
  pays nothing.

Everything non-hot delegates to the interpreter's shared helpers
(``_snapshot_value``, ``_mselect_value``, ``_construct``, ``_invoke``,
``_binary_op``, …), so semantics, stats and error messages stay
identical across engines.  The fast path is disabled while a tracer is
attached (``_fast_ok``): traced runs take the general ``_invoke`` path,
which emits the mode-transition and check events.

Fuel model: one step at activation entry plus one per loop iteration
(the ``FUEL`` instruction at every ``while`` head, and ``FOREACH_ITER``
per element).  Step *counts* differ across engines by design — the
divergence bound is what must hold, and every backedge passes a charge
point — so the differential suite compares stats minus ``steps``.
"""

from __future__ import annotations

from repro.core.errors import (EnergyException, EntRuntimeError,
                               FuelExhausted, StuckError)
from repro.core.modes import TOP, Mode
from repro.lang.bytecode import (  # noqa: F401 (re-exported for tests)
    OP_ADD, OP_BREAK_NOLOOP, OP_CALL_DFALL, OP_CALL_NATIVE,
    OP_CALL_NODFALL, OP_CALL_SHALLOW, OP_CAST, OP_CAST_ERR,
    OP_CONT_NOLOOP, OP_DIV,
    OP_EQ, OP_FALLOFF, OP_FIELD_ADD, OP_FOREACH_INIT, OP_FOREACH_ITER,
    OP_FUEL, OP_GE, OP_GETF, OP_GETF_ARG, OP_GETF_RAW, OP_GETF_THIS,
    OP_GETF_THIS_ARG, OP_GETF_THIS_RAW, OP_GT, OP_INC, OP_INSTANCEOF,
    OP_JF, OP_JF_EQ, OP_JF_GE, OP_JF_GT, OP_JF_LE, OP_JF_LT, OP_JF_NE,
    OP_JT, OP_JUMP, OP_LE, OP_LIST_BUILD, OP_LOAD_NATIVE, OP_LOAD_THIS,
    OP_LT, OP_MCASE_BUILD, OP_MCASE_DISPATCH, OP_MOD, OP_MOVE,
    OP_MSELECT, OP_MUL, OP_NE, OP_NEG, OP_NEW, OP_NEW_LIST, OP_NOT,
    OP_POP_HANDLER, OP_PROFILE, OP_PUSH_HANDLER, OP_RETURN,
    OP_RETURN_NONE, OP_RET_FIELD, OP_SETF, OP_SETF_THIS, OP_SNAPSHOT,
    OP_SNAPSHOT_ELIDE, OP_SNAPSHOT_SHALLOW, OP_SUB, OP_THROW,
    OP_VAR_DYN, OP_VAR_DYN_ARG,
    OP_VAR_DYN_RAW, VMCode, instrument, lower_body, lower_expr)
from repro.lang.natives import (NATIVE_STATIC_CLASSES, call_list_method,
                                call_native_static, call_string_method)
from repro.lang.values import MCaseV, ObjectV
from repro.obs.prof import site_id

__all__ = ["VM", "JITVM"]

#: Inline caches stop growing at the profiler's megamorphic threshold
#: (:func:`repro.obs.prof.ic_class`): past ``_IC_CAP`` distinct receiver
#: classes a site dispatches uncached, so a megamorphic site costs one
#: method lookup per send instead of unbounded cache growth.
_IC_CAP = 4

#: Per-argument "no elimination" sentinel for :meth:`VM._site_send`.
#: The JIT passes resolved elimination *modes* (the descriptor registers
#: are dead by then), and a mode can legitimately be ``None``, so the
#: "descriptor was None" case needs its own marker.
_SKIP_ELIM = object()

#: Heat sentinel: far enough below any threshold that a blacklisted
#: body's counter can keep incrementing without ever re-triggering.
_COLD = -(1 << 60)


class VM:
    """Per-interpreter VM state: lowered-code caches and the dispatch
    loop.  One instance per :class:`~repro.lang.interp.Interpreter`
    (created when ``engine="vm"``)."""

    #: The JIT tier gate, probed on the hot paths; only the
    #: :class:`JITVM` subclass ever sets it (and only when the leaf
    #: fast path is on), so the plain VM pays one false branch.
    _jit_on = False

    def __init__(self, interp) -> None:
        self.interp = interp
        #: id(body block) -> VMCode (bodies lower lazily, like the
        #: closure compiler's ``_body_cache``).
        self._codes = {}
        #: (id(expr), want_mcase) -> VMCode for field initializers.
        self._expr_codes = {}
        #: Strong references backing the two id()-keyed caches above:
        #: if a cached AST node were garbage collected, its id could be
        #: reused by a *different* node and the cache would serve the
        #: wrong code.  Pinning every key's node makes the ids stable
        #: for the VM's lifetime (zero cost on the hit path).
        self._pins = []
        #: Leaf-call fast path gate: traced and profiled runs must go
        #: through ``_invoke`` so mode-transition events / call-site
        #: profiles are emitted.
        self._fast_ok = (not interp.tracer.enabled
                         and not interp.profiler.enabled)
        #: Gate for the inlined dfall-cache hit (below): only when the
        #: full :meth:`Interpreter._check_dfall` would count the check,
        #: probe the memo and raise nothing on a positive verdict.
        opts = interp.options
        self._dfall_plain = (not opts.baseline and opts.check_dfall
                             and not interp.tracer.enabled
                             and not interp.profiler.enabled)
        #: Transient fast-path gate (``--checks transient``): the
        #: shallow opcodes inline the upward-closure probe only when
        #: nothing needs the deep helper's observability (tracer
        #: events, profiler counters); hooks are re-probed at dispatch.
        self._shallow_plain = (interp._transient
                               and not interp.tracer.enabled
                               and not interp.profiler.enabled)

    # ------------------------------------------------------------------
    # Entry points (wired as ``Interpreter._call_body`` /
    # ``_execute_expr``)

    def _lower(self, block, param_names, wants, name) -> VMCode:
        code = self._codes.get(id(block))
        if code is None:
            code = lower_body(self.interp, block, param_names,
                              wants=wants, name=name)
            # Profiling gate: instrumentation is decided here, once per
            # body, never per instruction — disabled runs execute the
            # unmodified stream.
            if self.interp.profiler.enabled:
                code = instrument(code)
            self._codes[id(block)] = code
            self._pins.append(block)
        return code

    def call_body(self, block, param_names, frame, args, wants=()):
        """Run a method/constructor/attributor body; returns the return
        value, or ``interp._NO_RETURN`` when the body falls off the
        end."""
        code = self._lower(block, param_names, wants, None)
        if len(args) != code.nparams:
            # Callers (``_invoke``, ``_construct``) check arity with the
            # proper blame; this backstop keeps a direct-API misuse from
            # silently truncating or zero-filling parameters.
            raise StuckError(
                f"body expects {code.nparams} argument(s), "
                f"got {len(args)}")
        regs = code.template.copy()
        if args:
            regs[:len(args)] = args
        if self._jit_on:
            jfn = code.jit
            if jfn is None:
                code.heat = heat = code.heat + 1
                if heat >= self._hot_call:
                    jfn = self._jit_compile(code)
            if jfn is not None:
                return jfn(self, regs, frame, -1)
        return self._run(code, regs, frame)

    def execute_expr(self, expr, frame, want_mcase=False):
        """Run a standalone expression (field initializers)."""
        key = (id(expr), want_mcase)
        code = self._expr_codes.get(key)
        if code is None:
            code = lower_expr(self.interp, expr, want_mcase=want_mcase)
            if self.interp.profiler.enabled:
                code = instrument(code)
            self._expr_codes[key] = code
            self._pins.append(expr)
        return self._run(code, code.template.copy(), frame)

    def code_for_method(self, minfo) -> VMCode:
        interp = self.interp
        return self._lower(minfo.decl.body, minfo.param_names,
                           interp._wants_for(minfo),
                           f"{minfo.owner}.{minfo.name}")

    # ------------------------------------------------------------------
    # Inline caches

    def _ic_miss(self, site, receiver):
        """Resolve a send on a cache miss; returns (and usually caches)
        ``(minfo, wants, leaf code or None, transparent)``."""
        interp = self.interp
        minfo = interp._find_method(receiver.class_info, site.name)
        if minfo is None:
            raise StuckError(
                f"no method {site.name!r} on class "
                f"{receiver.class_info.name}")
        wants = interp._wants_for(minfo)
        code = None
        if (self._fast_ok and minfo.mode_param is None
                and minfo.decl is not None):
            code = self.code_for_method(minfo)
        entry = (minfo, wants, code, receiver.class_info.transparent)
        reported = len(site.ic)
        if interp.options.inline_caches:
            if reported < _IC_CAP:
                site.ic[receiver.class_info.name] = entry
                reported += 1
            else:
                # Megamorphic: the cache stays capped and this receiver
                # class dispatches uncached; report one past the cap so
                # the profiler's mono/poly/mega classification still
                # lands on "mega".
                reported = _IC_CAP + 1
        if interp.profiler.enabled:
            interp.profiler.ic_miss(site_id("call", site.span),
                                    site.name, reported)
        return entry

    def _site_send(self, site, receiver, argv, elim_modes, frame,
                   self_call):
        """Generic send for JIT-compiled code: a receiver-class guard
        failed (deopt) or the site never specialized.  Semantics —
        stats, check counts, blame messages — replicate the dispatch
        loop's CALL handler exactly, with the deferred eliminations
        already resolved to modes (``elim_modes`` pairs ``argv``;
        ``_SKIP_ELIM`` marks arguments whose descriptor was ``None``).
        Dispatch goes through ``_invoke`` rather than the leaf path:
        observables are identical and deopts are rare by construction.
        """
        interp = self.interp
        current_mode = frame.current_mode
        if receiver.__class__ is ObjectV:
            entry = (site.ic.get(receiver.class_info.name)
                     or self._ic_miss(site, receiver))
            minfo, wants, _callee, _transparent = entry
            nparams = len(minfo.param_names)
            if site.any_elim:
                for i, v in enumerate(argv):
                    if (v.__class__ is MCaseV
                            and (i >= nparams or not wants[i])):
                        mode = elim_modes[i]
                        if mode is _SKIP_ELIM:
                            continue
                        argv[i] = interp._elim_with_mode(v, mode)
            if len(argv) != nparams:
                raise StuckError(
                    f"method {minfo.owner}.{minfo.name} expects "
                    f"{nparams} argument(s), got {len(argv)}")
            value = interp._invoke(receiver, minfo, argv, frame,
                                   self_call=self_call, span=site.span,
                                   elide_dfall=site.elide_dfall)
            if value.__class__ is MCaseV and not site.raw_result:
                value = interp._elim_with_mode(value, current_mode)
            return value
        if site.any_elim:
            for i, v in enumerate(argv):
                if v.__class__ is MCaseV:
                    mode = elim_modes[i]
                    if mode is _SKIP_ELIM:
                        continue
                    argv[i] = interp._elim_with_mode(v, mode)
        name = site.name
        if isinstance(receiver, _NativeRef):
            return call_native_static(interp, receiver.name, name, argv)
        if isinstance(receiver, str):
            return call_string_method(interp, receiver, name, argv)
        if isinstance(receiver, list):
            return call_list_method(interp, receiver, name, argv)
        if receiver is None:
            raise StuckError(f"null receiver for method {name!r}")
        raise StuckError(f"cannot invoke {name!r} on {receiver!r}")

    # ------------------------------------------------------------------
    # The dispatch loop

    def _run(self, code, regs, frame):
        interp = self.interp
        stats = interp.stats
        # One step per activation (bodies are charged again at every
        # loop head, so divergence is still bounded).
        stats.steps += 1
        fuel = interp._fuel
        if fuel is not None and stats.steps > fuel:
            raise FuelExhausted(
                f"evaluation exceeded {fuel} steps (divergence bound)")
        instrs = code.instrs
        pc = 0
        handlers = None
        current_mode = frame.current_mode
        this_obj = frame.this_obj
        while True:
            try:
                while True:
                    inst = instrs[pc]
                    op = inst[0]
                    pc += 1
                    if op == OP_FUEL:
                        stats.steps += 1
                        if fuel is not None and stats.steps > fuel:
                            raise FuelExhausted(
                                f"evaluation exceeded {fuel} steps "
                                f"(divergence bound)")
                        if self._jit_on and not handlers:
                            # On-stack replacement: a hot loop head
                            # transfers this activation's live register
                            # file into the compiled body (``pc`` is
                            # already past the charge, which is exactly
                            # where the JIT's OSR entry resumes).
                            jfn = code.jit
                            if jfn is None:
                                code.heat = h = code.heat + 1
                                if h >= self._hot_loop:
                                    jfn = self._jit_compile(code)
                            if jfn is not None:
                                return jfn(self, regs, frame, pc)
                    elif op == OP_JF_LT:
                        a = regs[inst[2]]
                        b = regs[inst[3]]
                        t = type(a)
                        if t is int or t is float:
                            t = type(b)
                            if t is int or t is float:
                                if a >= b:
                                    pc = inst[1]
                                continue
                        if interp._binary_op("<", a, b) is False:
                            pc = inst[1]
                    elif op == OP_JF_LE:
                        a = regs[inst[2]]
                        b = regs[inst[3]]
                        t = type(a)
                        if t is int or t is float:
                            t = type(b)
                            if t is int or t is float:
                                if a > b:
                                    pc = inst[1]
                                continue
                        if interp._binary_op("<=", a, b) is False:
                            pc = inst[1]
                    elif op == OP_JF_GT:
                        a = regs[inst[2]]
                        b = regs[inst[3]]
                        t = type(a)
                        if t is int or t is float:
                            t = type(b)
                            if t is int or t is float:
                                if a <= b:
                                    pc = inst[1]
                                continue
                        if interp._binary_op(">", a, b) is False:
                            pc = inst[1]
                    elif op == OP_JF_GE:
                        a = regs[inst[2]]
                        b = regs[inst[3]]
                        t = type(a)
                        if t is int or t is float:
                            t = type(b)
                            if t is int or t is float:
                                if a < b:
                                    pc = inst[1]
                                continue
                        if interp._binary_op(">=", a, b) is False:
                            pc = inst[1]
                    elif op == OP_JF_EQ:
                        if not interp.values_equal(regs[inst[2]],
                                                   regs[inst[3]]):
                            pc = inst[1]
                    elif op == OP_JF_NE:
                        if interp.values_equal(regs[inst[2]],
                                               regs[inst[3]]):
                            pc = inst[1]
                    elif op == OP_CALL_DFALL or op == OP_CALL_NODFALL \
                            or op == OP_CALL_SHALLOW:
                        site = inst[2]
                        rv = inst[3]
                        if rv is None:
                            receiver = this_obj
                            self_call = True
                        else:
                            receiver = regs[rv]
                            self_call = (site.recv_is_this
                                         or receiver is this_obj)
                        if receiver.__class__ is ObjectV:
                            entry = (site.ic.get(receiver.class_info.name)
                                     or self._ic_miss(site, receiver))
                            minfo, wants, callee, transparent = entry
                            argv = [regs[r] for r in site.arg_regs]
                            nparams = len(minfo.param_names)
                            if site.any_elim:
                                elims = site.arg_elims
                                for i, v in enumerate(argv):
                                    if (v.__class__ is MCaseV
                                            and (i >= nparams
                                                 or not wants[i])):
                                        e = elims[i]
                                        if e is None:
                                            continue
                                        argv[i] = interp._elim_with_mode(
                                            v, regs[e] if e >= 0
                                            else current_mode)
                            if len(argv) != nparams:
                                # After the eliminations: the walk
                                # evaluates (and eliminates) every
                                # argument before its arity check, so
                                # the stats must match up to the blame.
                                raise StuckError(
                                    f"method {minfo.owner}."
                                    f"{minfo.name} expects {nparams} "
                                    f"argument(s), got {len(argv)}")
                            if callee is not None:
                                # Leaf-call fast path: plain method,
                                # no tracer; enter the callee frame
                                # directly.
                                stats.messages += 1
                                if transparent:
                                    closure = current_mode
                                else:
                                    guard = receiver.effective_mode
                                    if not self_call:
                                        if (op == OP_CALL_NODFALL
                                                and interp._elide_dfall_on):
                                            stats.dfall_elided += 1
                                        # Transient shallow probe: one
                                        # set-membership test against
                                        # the upward closure; failures
                                        # re-enter the full helper for
                                        # the blame-carrying raise.
                                        elif (op == OP_CALL_SHALLOW
                                              and self._dfall_plain
                                              and interp.on_message is None
                                              and guard is not None
                                              and (current_mode
                                                   if current_mode
                                                   is not None else TOP)
                                              in interp._mode_up[guard]):
                                            stats.dfall_checks += 1
                                            stats.shallow_checks += 1
                                        # Inlined memo hit: the full
                                        # check would only bump the
                                        # counter and pass.
                                        elif (self._dfall_plain
                                              and interp.on_message is None
                                              and interp._dfall_cache.get(
                                                  (guard, current_mode))
                                              is True):
                                            stats.dfall_checks += 1
                                        else:
                                            interp._check_dfall(
                                                guard, current_mode,
                                                False, receiver, minfo,
                                                site.span)
                                    closure = (guard if guard is not None
                                               else current_mode)
                                regs2 = callee.template.copy()
                                if argv:
                                    regs2[:len(argv)] = argv
                                frame2 = _Frame(receiver,
                                                receiver.mode_env,
                                                closure)
                                if self._jit_on:
                                    # Tier up: per-call-site heat; a
                                    # hot site compiles its callee and
                                    # enters the JIT body directly.
                                    jfn = callee.jit
                                    if jfn is None:
                                        site.heat = h = site.heat + 1
                                        if h >= self._hot_call:
                                            jfn = self._jit_compile(
                                                callee)
                                    if jfn is not None:
                                        value = jfn(self, regs2,
                                                    frame2, -1)
                                    else:
                                        value = self._run(callee, regs2,
                                                          frame2)
                                else:
                                    value = self._run(callee, regs2,
                                                      frame2)
                                if value is _NO_RETURN:
                                    value = None
                            else:
                                value = interp._invoke(
                                    receiver, minfo, argv, frame,
                                    self_call=self_call, span=site.span,
                                    elide_dfall=site.elide_dfall)
                            if (value.__class__ is MCaseV
                                    and not site.raw_result):
                                value = interp._elim_with_mode(
                                    value, current_mode)
                            regs[inst[1]] = value
                        else:
                            argv = [regs[r] for r in site.arg_regs]
                            if site.any_elim:
                                elims = site.arg_elims
                                for i, v in enumerate(argv):
                                    if v.__class__ is MCaseV:
                                        e = elims[i]
                                        if e is None:
                                            continue
                                        argv[i] = interp._elim_with_mode(
                                            v, regs[e] if e >= 0
                                            else current_mode)
                            name = site.name
                            if isinstance(receiver, _NativeRef):
                                value = call_native_static(
                                    interp, receiver.name, name, argv)
                            elif isinstance(receiver, str):
                                value = call_string_method(
                                    interp, receiver, name, argv)
                            elif isinstance(receiver, list):
                                value = call_list_method(
                                    interp, receiver, name, argv)
                            elif receiver is None:
                                raise StuckError(
                                    f"null receiver for method {name!r}")
                            else:
                                raise StuckError(
                                    f"cannot invoke {name!r} on "
                                    f"{receiver!r}")
                            regs[inst[1]] = value
                    elif op == OP_INC:
                        v = regs[inst[1]]
                        t = type(v)
                        if t is int or t is float:
                            regs[inst[1]] = v + inst[2]
                        else:
                            regs[inst[1]] = interp._binary_op(
                                inst[3], v, inst[4])
                    elif op == OP_MOD:
                        a = regs[inst[2]]
                        b = regs[inst[3]]
                        t = type(a)
                        if t is int or t is float:
                            t = type(b)
                            if t is int or t is float:
                                regs[inst[1]] = _java_mod(a, b)
                                continue
                        regs[inst[1]] = interp._binary_op("%", a, b)
                    elif op == OP_JUMP:
                        pc = inst[1]
                    elif op == OP_FIELD_ADD:
                        name = inst[1]
                        if this_obj is None:
                            raise StuckError(f"unknown variable {name!r}")
                        fields = this_obj.fields
                        try:
                            v = fields[name]
                        except KeyError:
                            raise StuckError(
                                f"unknown variable {name!r}") from None
                        if v.__class__ is MCaseV:
                            owner = this_obj.effective_mode
                            v = interp._elim_with_mode(
                                v, owner if owner is not None
                                else current_mode)
                        b = regs[inst[2]]
                        t = type(v)
                        if t is int or t is float:
                            t = type(b)
                            if t is int or t is float:
                                fields[name] = v + b
                                continue
                        fields[name] = interp._binary_op("+", v, b)
                    elif op == OP_RET_FIELD:
                        name = inst[1]
                        if this_obj is None:
                            raise StuckError(f"unknown variable {name!r}")
                        try:
                            v = this_obj.fields[name]
                        except KeyError:
                            raise StuckError(
                                f"unknown variable {name!r}") from None
                        if v.__class__ is MCaseV:
                            owner = this_obj.effective_mode
                            return interp._elim_with_mode(
                                v, owner if owner is not None
                                else current_mode)
                        return v
                    elif op == OP_RETURN:
                        return regs[inst[1]]
                    elif op == OP_ADD:
                        a = regs[inst[2]]
                        b = regs[inst[3]]
                        t = type(a)
                        if t is int or t is float:
                            t = type(b)
                            if t is int or t is float:
                                regs[inst[1]] = a + b
                                continue
                        regs[inst[1]] = interp._binary_op("+", a, b)
                    elif op == OP_MOVE:
                        regs[inst[1]] = regs[inst[2]]
                    elif op == OP_GETF_THIS:
                        try:
                            v = this_obj.fields[inst[2]]
                        except (AttributeError, KeyError):
                            raise StuckError(
                                f"unknown variable {inst[2]!r}") from None
                        if v.__class__ is MCaseV:
                            owner = this_obj.effective_mode
                            v = interp._elim_with_mode(
                                v, owner if owner is not None
                                else current_mode)
                        regs[inst[1]] = v
                    elif op == OP_SUB:
                        a = regs[inst[2]]
                        b = regs[inst[3]]
                        t = type(a)
                        if t is int or t is float:
                            t = type(b)
                            if t is int or t is float:
                                regs[inst[1]] = a - b
                                continue
                        regs[inst[1]] = interp._binary_op("-", a, b)
                    elif op == OP_MUL:
                        a = regs[inst[2]]
                        b = regs[inst[3]]
                        t = type(a)
                        if t is int or t is float:
                            t = type(b)
                            if t is int or t is float:
                                regs[inst[1]] = a * b
                                continue
                        regs[inst[1]] = interp._binary_op("*", a, b)
                    elif op == OP_DIV:
                        a = regs[inst[2]]
                        b = regs[inst[3]]
                        t = type(a)
                        if t is int or t is float:
                            t = type(b)
                            if t is int or t is float:
                                regs[inst[1]] = _java_div(a, b)
                                continue
                        regs[inst[1]] = interp._binary_op("/", a, b)
                    elif op == OP_LT:
                        a = regs[inst[2]]
                        b = regs[inst[3]]
                        t = type(a)
                        if t is int or t is float:
                            t = type(b)
                            if t is int or t is float:
                                regs[inst[1]] = a < b
                                continue
                        regs[inst[1]] = interp._binary_op("<", a, b)
                    elif op == OP_LE:
                        a = regs[inst[2]]
                        b = regs[inst[3]]
                        t = type(a)
                        if t is int or t is float:
                            t = type(b)
                            if t is int or t is float:
                                regs[inst[1]] = a <= b
                                continue
                        regs[inst[1]] = interp._binary_op("<=", a, b)
                    elif op == OP_GT:
                        a = regs[inst[2]]
                        b = regs[inst[3]]
                        t = type(a)
                        if t is int or t is float:
                            t = type(b)
                            if t is int or t is float:
                                regs[inst[1]] = a > b
                                continue
                        regs[inst[1]] = interp._binary_op(">", a, b)
                    elif op == OP_GE:
                        a = regs[inst[2]]
                        b = regs[inst[3]]
                        t = type(a)
                        if t is int or t is float:
                            t = type(b)
                            if t is int or t is float:
                                regs[inst[1]] = a >= b
                                continue
                        regs[inst[1]] = interp._binary_op(">=", a, b)
                    elif op == OP_EQ:
                        regs[inst[1]] = interp.values_equal(
                            regs[inst[2]], regs[inst[3]])
                    elif op == OP_NE:
                        regs[inst[1]] = not interp.values_equal(
                            regs[inst[2]], regs[inst[3]])
                    elif op == OP_JF:
                        v = regs[inst[2]]
                        if v is False:
                            pc = inst[1]
                        elif v is not True:
                            raise StuckError(
                                f"condition is not a boolean: {v!r}")
                    elif op == OP_JT:
                        v = regs[inst[2]]
                        if v is True:
                            pc = inst[1]
                        elif v is not False:
                            raise StuckError(
                                f"condition is not a boolean: {v!r}")
                    elif op == OP_SETF_THIS:
                        name = inst[1]
                        if (this_obj is not None
                                and name in this_obj.fields):
                            this_obj.fields[name] = regs[inst[2]]
                        else:
                            raise StuckError(f"unknown variable {name!r}")
                    elif op == OP_SETF:
                        obj = regs[inst[2]]
                        if not isinstance(obj, ObjectV):
                            raise StuckError(
                                f"cannot assign field of {obj!r}")
                        obj.set_field(inst[1], regs[inst[3]])
                    elif op == OP_GETF or op == OP_GETF_RAW:
                        obj = regs[inst[3]]
                        if not isinstance(obj, ObjectV):
                            raise StuckError(
                                f"cannot access field {inst[2]!r} of "
                                f"{obj!r}")
                        v = obj.get_field(inst[2])
                        if v.__class__ is MCaseV and op == OP_GETF:
                            owner = obj.effective_mode
                            v = interp._elim_with_mode(
                                v, owner if owner is not None
                                else current_mode)
                        regs[inst[1]] = v
                    elif op == OP_GETF_THIS_RAW:
                        try:
                            regs[inst[1]] = this_obj.fields[inst[2]]
                        except (AttributeError, KeyError):
                            raise StuckError(
                                f"unknown variable {inst[2]!r}") from None
                    elif op == OP_GETF_THIS_ARG:
                        try:
                            v = this_obj.fields[inst[2]]
                        except (AttributeError, KeyError):
                            raise StuckError(
                                f"unknown variable {inst[2]!r}") from None
                        if v.__class__ is MCaseV:
                            owner = this_obj.effective_mode
                            regs[inst[3]] = (owner if owner is not None
                                             else current_mode)
                        regs[inst[1]] = v
                    elif op == OP_GETF_ARG:
                        obj = regs[inst[3]]
                        if not isinstance(obj, ObjectV):
                            raise StuckError(
                                f"cannot access field {inst[2]!r} of "
                                f"{obj!r}")
                        v = obj.get_field(inst[2])
                        if v.__class__ is MCaseV:
                            owner = obj.effective_mode
                            regs[inst[4]] = (owner if owner is not None
                                             else current_mode)
                        regs[inst[1]] = v
                    elif (op == OP_VAR_DYN or op == OP_VAR_DYN_RAW
                            or op == OP_VAR_DYN_ARG):
                        name = inst[2]
                        found, v = frame.lookup(name)
                        if not found:
                            if (this_obj is not None
                                    and name in this_obj.fields):
                                v = this_obj.fields[name]
                                if v.__class__ is MCaseV:
                                    owner = this_obj.effective_mode
                                    if op == OP_VAR_DYN:
                                        v = interp._elim_with_mode(
                                            v, owner if owner is not None
                                            else current_mode)
                                    elif op == OP_VAR_DYN_ARG:
                                        regs[inst[3]] = (
                                            owner if owner is not None
                                            else current_mode)
                            else:
                                v = interp._mode_by_name.get(name)
                                if v is None:
                                    if name in NATIVE_STATIC_CLASSES:
                                        v = _NativeRef(name)
                                    else:
                                        raise StuckError(
                                            f"unknown variable {name!r}")
                        elif (v.__class__ is MCaseV
                                and op == OP_VAR_DYN):
                            v = interp._elim_with_mode(v, current_mode)
                        regs[inst[1]] = v
                    elif op == OP_MCASE_DISPATCH:
                        v = regs[inst[2]]
                        if v.__class__ is MCaseV:
                            v = interp._elim_with_mode(v, current_mode)
                        regs[inst[1]] = v
                    elif op == OP_MCASE_BUILD:
                        branches = {}
                        default = _MCASE_MISSING
                        for mode, reg in inst[2]:
                            if mode is None:
                                default = regs[reg]
                            else:
                                branches[mode] = regs[reg]
                        regs[inst[1]] = (MCaseV(branches)
                                         if default is _MCASE_MISSING
                                         else MCaseV(branches, default))
                    elif op == OP_MSELECT:
                        regs[inst[1]] = interp._mselect_value(
                            regs[inst[2]], inst[3], frame)
                    elif op == OP_SNAPSHOT:
                        regs[inst[1]] = interp._snapshot_value(
                            regs[inst[2]], inst[3], frame,
                            elide_bound=False, span=inst[4])
                    elif op == OP_SNAPSHOT_ELIDE:
                        regs[inst[1]] = interp._snapshot_value(
                            regs[inst[2]], inst[3], frame,
                            elide_bound=True, span=inst[4])
                    elif op == OP_SNAPSHOT_SHALLOW:
                        # Transient re-snapshot: when the tag is
                        # already fixed and the bounds are concrete,
                        # the whole check is two set probes; anything
                        # else (first snapshot, hooks, symbolic
                        # bounds, failures) re-enters the shared
                        # helper, which owns the blame raise.
                        src = regs[inst[2]]
                        if (self._shallow_plain
                                and src.__class__ is ObjectV
                                and src.is_snapshot
                                and interp.on_snapshot is None):
                            bounds = inst[3]
                            lower = bounds[0]
                            upper = bounds[1]
                            if (lower.__class__ is Mode
                                    and upper.__class__ is Mode):
                                up = interp._mode_up
                                mode = src.effective_mode
                                if (mode in up[lower]
                                        and upper in up[mode]):
                                    stats.snapshots += 1
                                    stats.bound_checks += 1
                                    stats.shallow_checks += 1
                                    regs[inst[1]] = src
                                    continue
                        regs[inst[1]] = interp._snapshot_value(
                            src, inst[3], frame,
                            elide_bound=False, span=inst[4])
                    elif op == OP_CAST:
                        regs[inst[1]] = interp._cast_value(
                            regs[inst[2]], inst[3], frame)
                    elif op == OP_CAST_ERR:
                        raise StuckError("cast was not typechecked")
                    elif op == OP_NEW:
                        info, atoms, span = inst[2]
                        argv = [regs[r] for r in inst[3]]
                        regs[inst[1]] = interp._construct(
                            info, atoms, argv, frame, span)
                    elif op == OP_NEW_LIST:
                        regs[inst[1]] = []
                    elif op == OP_LIST_BUILD:
                        regs[inst[1]] = [regs[r] for r in inst[2]]
                    elif op == OP_INSTANCEOF:
                        v = regs[inst[2]]
                        regs[inst[1]] = (
                            isinstance(v, ObjectV)
                            and interp.table.is_subclass(
                                v.class_info.name, inst[3]))
                    elif op == OP_NEG:
                        v = regs[inst[2]]
                        t = type(v)
                        if t is int or t is float:
                            regs[inst[1]] = -v
                        else:
                            raise StuckError(f"cannot negate {v!r}")
                    elif op == OP_NOT:
                        regs[inst[1]] = not interp._truth(regs[inst[2]])
                    elif op == OP_LOAD_THIS:
                        regs[inst[1]] = this_obj
                    elif op == OP_LOAD_NATIVE:
                        regs[inst[1]] = _NativeRef(inst[2])
                    elif op == OP_CALL_NATIVE:
                        cls_name, method = inst[2]
                        argv = [regs[r] for r in inst[3]]
                        regs[inst[1]] = call_native_static(
                            interp, cls_name, method, argv)
                    elif op == OP_FOREACH_INIT:
                        v = regs[inst[2]]
                        if not isinstance(v, list):
                            raise StuckError("foreach requires a List")
                        regs[inst[1]] = [list(v), 0]
                    elif op == OP_FOREACH_ITER:
                        state = regs[inst[2]]
                        items = state[0]
                        idx = state[1]
                        if idx >= len(items):
                            pc = inst[1]
                        else:
                            state[1] = idx + 1
                            regs[inst[3]] = items[idx]
                            stats.steps += 1
                            if fuel is not None and stats.steps > fuel:
                                raise FuelExhausted(
                                    f"evaluation exceeded {fuel} steps "
                                    f"(divergence bound)")
                            if self._jit_on and not handlers:
                                # OSR at the foreach charge point: the
                                # element is assigned and this
                                # iteration charged, matching the JIT's
                                # post-ITER entry.
                                jfn = code.jit
                                if jfn is None:
                                    code.heat = h = code.heat + 1
                                    if h >= self._hot_loop:
                                        jfn = self._jit_compile(code)
                                if jfn is not None:
                                    return jfn(self, regs, frame, pc)
                    elif op == OP_PUSH_HANDLER:
                        if handlers is None:
                            handlers = []
                        handlers.append((inst[1], inst[2]))
                    elif op == OP_POP_HANDLER:
                        handlers.pop()
                    elif op == OP_THROW:
                        message = interp.render(regs[inst[1]])
                        stats.energy_exceptions += 1
                        if interp.tracer.enabled:
                            interp.tracer.energy_exception(
                                message, source="interp")
                        raise EnergyException(message)
                    elif op == OP_RETURN_NONE:
                        return None
                    elif op == OP_FALLOFF:
                        return _NO_RETURN
                    elif op == OP_BREAK_NOLOOP:
                        raise _BreakSignal()
                    elif op == OP_CONT_NOLOOP:
                        raise _ContinueSignal()
                    elif op == OP_PROFILE:
                        # Only present in instrument()ed bodies; sits
                        # at the chain's end so uninstrumented code
                        # never compares against it.
                        interp.profiler.bump(inst[1], current_mode)
                    else:  # pragma: no cover - lowering emits known ops
                        raise EntRuntimeError(f"bad opcode {op!r}")
            except EnergyException as exc:
                if not handlers:
                    raise
                pc, exc_slot = handlers.pop()
                regs[exc_slot] = str(exc)


class JITVM(VM):
    """The VM with the trace-JIT tier armed (``engine="jit"``).

    All tiering state lives here: thresholds (instance attributes so
    tests can force-compile with ``_hot_call = 1``), the compile /
    deopt / invalidation counters, and the compile entry point the
    dispatch loop's hooks call.  The JIT arms itself exactly when the
    leaf-call fast path is on (``_fast_ok``): traced and profiled runs
    need every send on the ``_invoke`` path for events and call-site
    profiles, so under them ``jit`` degrades to the plain VM — which is
    also why ``repro profile --engine jit`` satisfies the
    static-vs-observed oracle by construction.

    See :mod:`repro.lang.jit` for the emitter and the tiering policy.
    """

    def __init__(self, interp) -> None:
        super().__init__(interp)
        from repro.lang import jit
        self._jit_mod = jit
        self._jit_on = self._fast_ok
        self._hot_call = jit.HOT_CALL_THRESHOLD
        self._hot_loop = jit.HOT_LOOP_THRESHOLD
        self._deopt_limit = jit.DEOPT_LIMIT
        self._max_versions = jit.MAX_VERSIONS
        #: Engine-level observability (kept OFF InterpStats: stats
        #: dicts are compared across engines by the differential suite,
        #: and tiering is engine-private by design).
        self.jit_compiles = 0
        self.jit_deopts = 0
        self.jit_invalidations = 0
        self.jit_bailouts = 0
        #: Compile log: (body name, version) in compile order.
        self.jit_compiled = []

    def _jit_compile(self, code):
        """Compile ``code`` (or blacklist it); returns the installed
        entry point or ``None``."""
        if code.jit is not None:
            return code.jit
        if code.jit_versions >= self._max_versions:
            code.heat = _COLD
            return None
        try:
            fn, src = self._jit_mod.compile_body(self, code)
        except self._jit_mod.JITUnsupported:
            self.jit_bailouts += 1
            code.jit_versions = self._max_versions
            code.heat = _COLD
            return None
        code.jit = fn
        code.jit_src = src
        code.jit_deopts = 0
        code.jit_versions += 1
        self.jit_compiles += 1
        self.jit_compiled.append((code.name or "<body>",
                                  code.jit_versions))
        return fn

    def _note_deopt(self, code) -> None:
        """A specialization guard failed in ``code``'s compiled body.
        Execution already fell back to ``_site_send`` (results stay
        engine-identical); here we only count, and past the deopt limit
        invalidate the body so the next hot crossing recompiles against
        the by-then-grown inline caches (bounded by ``MAX_VERSIONS``).
        """
        self.jit_deopts += 1
        code.jit_deopts += 1
        if (code.jit_deopts >= self._deopt_limit
                and code.jit is not None):
            code.jit = None
            code.jit_src = None
            code.heat = 0
            self.jit_invalidations += 1


# Late imports resolved once at module load: the interp module imports
# this one lazily (inside ``Interpreter.__init__``), so the circular
# reference is safe by the time a VM is constructed.
def _bind_interp_names():
    from repro.lang import interp as _interp_mod

    globals().update({
        "_Frame": _interp_mod._Frame,
        "_NativeRef": _interp_mod._NativeRef,
        "_BreakSignal": _interp_mod._BreakSignal,
        "_ContinueSignal": _interp_mod._ContinueSignal,
        "_NO_RETURN": _interp_mod._NO_RETURN,
        "_java_div": _interp_mod._java_div,
        "_java_mod": _interp_mod._java_mod,
    })


_bind_interp_names()
_MCASE_MISSING = MCaseV._MISSING
