"""Recursive-descent parser for the ENT surface language.

The accepted grammar is the paper's Featherweight-Java-based core
(section 4) extended with the imperative forms the paper's listings use:
statements, locals, loops, ``foreach``, ``try``/``catch``.  See
``DESIGN.md`` for the full feature list.

Notes on disambiguation:

* A statement starting ``Ident Ident`` (or ``Ident @``) is a local
  variable declaration; anything else starting with an identifier is an
  expression statement or assignment.
* ``(C) e`` is parsed as a cast when the parenthesized token sequence is a
  plausible type followed by a primary-expression start.
* Declaration-site mode parameters accept ``?``, ``?X``, ``X``, ``m``,
  ``X <= hi`` and ``lo <= X <= hi``; use-site mode arguments accept only
  ``?`` and names.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.errors import EntSyntaxError
from repro.lang import ast_nodes as ast
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenKind

_PRIM_TYPE_TOKENS = {
    TokenKind.KW_INT: "int",
    TokenKind.KW_DOUBLE: "double",
    TokenKind.KW_BOOLEAN: "boolean",
    TokenKind.KW_STRING_TYPE: "String",
    TokenKind.KW_VOID: "void",
    TokenKind.KW_MODE_TYPE: "mode",
}

#: Tokens that may begin a primary expression (used by cast disambiguation).
_PRIMARY_START = {
    TokenKind.IDENT, TokenKind.INT, TokenKind.FLOAT, TokenKind.STRING,
    TokenKind.KW_THIS, TokenKind.KW_NEW, TokenKind.KW_NULL,
    TokenKind.KW_TRUE, TokenKind.KW_FALSE, TokenKind.KW_SNAPSHOT,
    TokenKind.KW_MCASE, TokenKind.KW_MSELECT, TokenKind.LPAREN,
    TokenKind.LBRACKET, TokenKind.NOT, TokenKind.MINUS,
}


class Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Token plumbing

    # The token list always ends with EOF and _advance never moves past
    # it, so _pos stays in range and lookahead-0 needs no bounds check.

    def _peek(self, offset: int = 0) -> Token:
        if offset:
            try:
                return self._tokens[self._pos + offset]
            except IndexError:
                return self._tokens[-1]
        return self._tokens[self._pos]

    def _at(self, kind: TokenKind, offset: int = 0) -> bool:
        if offset:
            return self._peek(offset).kind is kind
        return self._tokens[self._pos].kind is kind

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _expect(self, kind: TokenKind, context: str = "") -> Token:
        token = self._tokens[self._pos]
        if token.kind is not kind:
            where = f" in {context}" if context else ""
            raise EntSyntaxError(
                f"expected {kind.value!r}{where}, found {token.text!r}",
                token.span)
        if kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _accept(self, kind: TokenKind) -> Optional[Token]:
        token = self._tokens[self._pos]
        if token.kind is kind:
            if kind is not TokenKind.EOF:
                self._pos += 1
            return token
        return None

    def _expect_ident(self, context: str = "") -> Token:
        return self._expect(TokenKind.IDENT, context)

    # ------------------------------------------------------------------
    # Program structure

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while not self._at(TokenKind.EOF):
            if self._at(TokenKind.KW_MODES):
                program.modes.append(self._parse_modes_decl())
            elif self._at(TokenKind.KW_CLASS):
                program.classes.append(self._parse_class_decl())
            else:
                token = self._peek()
                raise EntSyntaxError(
                    f"expected 'modes' or 'class' at top level, found "
                    f"{token.text!r}", token.span)
        return program

    def _parse_modes_decl(self) -> ast.ModesDecl:
        start = self._expect(TokenKind.KW_MODES)
        self._expect(TokenKind.LBRACE, "modes declaration")
        decl = ast.ModesDecl(span=start.span)
        while not self._at(TokenKind.RBRACE):
            chain = [self._expect_ident("modes declaration").text]
            while self._accept(TokenKind.LE):
                chain.append(self._expect_ident("modes declaration").text)
            if len(chain) == 1:
                decl.singletons.append(chain[0])
            else:
                decl.pairs.extend(zip(chain, chain[1:]))
            self._expect(TokenKind.SEMI, "modes declaration")
        self._expect(TokenKind.RBRACE, "modes declaration")
        return decl

    def _parse_class_decl(self) -> ast.ClassDecl:
        start = self._expect(TokenKind.KW_CLASS)
        name = self._expect_ident("class declaration").text
        cls = ast.ClassDecl(name=name, span=start.span)
        if self._at(TokenKind.AT):
            params = self._parse_mode_params()
            cls.mode_param = params[0]
            cls.extra_params = params[1:]
        if self._accept(TokenKind.KW_EXTENDS):
            cls.superclass = self._expect_ident("extends clause").text
            if self._at(TokenKind.AT):
                cls.super_mode_args = self._parse_mode_args()
        self._expect(TokenKind.LBRACE, "class body")
        while not self._at(TokenKind.RBRACE):
            self._parse_member(cls)
        self._expect(TokenKind.RBRACE, "class body")
        return cls

    # ------------------------------------------------------------------
    # Mode parameter / argument lists

    def _parse_mode_params(self) -> List[ast.ModeParamNode]:
        """Declaration-site ``@mode<...>``."""
        self._expect(TokenKind.AT)
        self._expect(TokenKind.KW_MODE_TYPE, "mode annotation")
        self._expect(TokenKind.LT, "mode annotation")
        params = [self._parse_mode_param()]
        while self._accept(TokenKind.COMMA):
            params.append(self._parse_mode_param())
        self._expect(TokenKind.GT, "mode annotation")
        return params

    def _parse_mode_param(self) -> ast.ModeParamNode:
        span = self._peek().span
        dynamic = self._accept(TokenKind.QUESTION) is not None
        if dynamic and not self._at(TokenKind.IDENT):
            return ast.ModeParamNode(dynamic=True, span=span)
        first = self._expect_ident("mode parameter").text
        if self._accept(TokenKind.LE):
            second = self._expect_ident("mode parameter bound").text
            if self._accept(TokenKind.LE):
                third = self._expect_ident("mode parameter bound").text
                # lo <= X <= hi
                return ast.ModeParamNode(dynamic=dynamic, var=second,
                                         lower=first, upper=third, span=span)
            # X <= hi
            return ast.ModeParamNode(dynamic=dynamic, var=first,
                                     upper=second, span=span)
        return ast.ModeParamNode(dynamic=dynamic, var=first, span=span)

    def _parse_mode_args(self) -> List[ast.ModeArgNode]:
        """Use-site ``@mode<...>``."""
        self._expect(TokenKind.AT)
        self._expect(TokenKind.KW_MODE_TYPE, "mode arguments")
        self._expect(TokenKind.LT, "mode arguments")
        args = [self._parse_mode_arg()]
        while self._accept(TokenKind.COMMA):
            args.append(self._parse_mode_arg())
        self._expect(TokenKind.GT, "mode arguments")
        return args

    def _parse_mode_arg(self) -> ast.ModeArgNode:
        span = self._peek().span
        if self._accept(TokenKind.QUESTION):
            return ast.ModeArgNode(dynamic=True, span=span)
        name = self._expect_ident("mode argument").text
        return ast.ModeArgNode(name=name, span=span)

    # ------------------------------------------------------------------
    # Class members

    def _parse_member(self, cls: ast.ClassDecl) -> None:
        if self._at(TokenKind.KW_ATTRIBUTOR):
            if cls.attributor is not None:
                raise EntSyntaxError("duplicate class attributor",
                                     self._peek().span)
            cls.attributor = self._parse_attributor()
            return
        # Constructor: ClassName '(' ...
        if (self._at(TokenKind.IDENT) and self._peek().text == cls.name
                and self._at(TokenKind.LPAREN, 1)):
            if cls.constructor is not None:
                raise EntSyntaxError("duplicate constructor",
                                     self._peek().span)
            cls.constructor = self._parse_constructor()
            return
        mode_param: Optional[ast.ModeParamNode] = None
        if self._at(TokenKind.AT):
            params = self._parse_mode_params()
            if len(params) != 1:
                raise EntSyntaxError(
                    "method-level mode annotations take exactly one "
                    "parameter", params[1].span)
            mode_param = params[0]
        declared = self._parse_type()
        name = self._expect_ident("member declaration").text
        if self._at(TokenKind.LPAREN):
            cls.methods.append(self._parse_method_rest(
                mode_param, declared, name))
        else:
            if mode_param is not None:
                raise EntSyntaxError(
                    "fields cannot carry method-level mode annotations",
                    mode_param.span)
            init = None
            if self._accept(TokenKind.ASSIGN):
                init = self._parse_expr()
            self._expect(TokenKind.SEMI, "field declaration")
            cls.fields.append(ast.FieldDecl(declared=declared, name=name,
                                            init=init, span=declared.span))

    def _parse_attributor(self) -> ast.AttributorDecl:
        start = self._expect(TokenKind.KW_ATTRIBUTOR)
        body = self._parse_block()
        return ast.AttributorDecl(body=body, span=start.span)

    def _parse_constructor(self) -> ast.ConstructorDecl:
        start = self._expect_ident()
        params = self._parse_params()
        body = self._parse_block()
        return ast.ConstructorDecl(params=params, body=body, span=start.span)

    def _parse_method_rest(self, mode_param: Optional[ast.ModeParamNode],
                           return_type: ast.TypeNode,
                           name: str) -> ast.MethodDecl:
        params = self._parse_params()
        attributor = None
        if self._at(TokenKind.KW_ATTRIBUTOR):
            attributor = self._parse_attributor()
        body = self._parse_block()
        return ast.MethodDecl(name=name, params=params,
                              return_type=return_type, body=body,
                              mode_param=mode_param, attributor=attributor,
                              span=return_type.span)

    def _parse_params(self) -> List[ast.ParamDecl]:
        self._expect(TokenKind.LPAREN, "parameter list")
        params: List[ast.ParamDecl] = []
        if not self._at(TokenKind.RPAREN):
            while True:
                declared = self._parse_type()
                pname = self._expect_ident("parameter").text
                params.append(ast.ParamDecl(declared=declared, name=pname,
                                            span=declared.span))
                if not self._accept(TokenKind.COMMA):
                    break
        self._expect(TokenKind.RPAREN, "parameter list")
        return params

    # ------------------------------------------------------------------
    # Types

    def _parse_type(self) -> ast.TypeNode:
        token = self._peek()
        if token.kind in _PRIM_TYPE_TOKENS:
            self._advance()
            return ast.PrimTypeNode(name=_PRIM_TYPE_TOKENS[token.kind],
                                    span=token.span)
        if token.kind is TokenKind.KW_MCASE:
            self._advance()
            self._expect(TokenKind.LT, "mcase type")
            element = self._parse_type()
            self._expect(TokenKind.GT, "mcase type")
            return ast.MCaseTypeNode(element=element, span=token.span)
        name = self._expect_ident("type").text
        mode_args = None
        if self._at(TokenKind.AT):
            mode_args = self._parse_mode_args()
        return ast.ClassTypeNode(name=name, mode_args=mode_args,
                                 span=token.span)

    def _looks_like_type_start(self, offset: int = 0) -> bool:
        kind = self._peek(offset).kind
        return (kind in _PRIM_TYPE_TOKENS or kind is TokenKind.KW_MCASE
                or kind is TokenKind.IDENT)

    # ------------------------------------------------------------------
    # Statements

    def _parse_block(self) -> ast.Block:
        start = self._expect(TokenKind.LBRACE, "block")
        stmts: List[ast.Stmt] = []
        while not self._at(TokenKind.RBRACE):
            stmts.append(self._parse_stmt())
        self._expect(TokenKind.RBRACE, "block")
        return ast.Block(stmts=stmts, span=start.span)

    def _parse_stmt(self) -> ast.Stmt:
        token = self._peek()
        kind = token.kind
        if kind is TokenKind.LBRACE:
            return self._parse_block()
        if kind is TokenKind.KW_IF:
            return self._parse_if()
        if kind is TokenKind.KW_WHILE:
            return self._parse_while()
        if kind is TokenKind.KW_FOREACH:
            return self._parse_foreach()
        if kind is TokenKind.KW_RETURN:
            self._advance()
            expr = None
            if not self._at(TokenKind.SEMI):
                expr = self._parse_expr()
            self._expect(TokenKind.SEMI, "return statement")
            return ast.Return(expr=expr, span=token.span)
        if kind is TokenKind.KW_BREAK:
            self._advance()
            self._expect(TokenKind.SEMI, "break statement")
            return ast.Break(span=token.span)
        if kind is TokenKind.KW_CONTINUE:
            self._advance()
            self._expect(TokenKind.SEMI, "continue statement")
            return ast.Continue(span=token.span)
        if kind is TokenKind.KW_TRY:
            return self._parse_try()
        if kind is TokenKind.KW_THROW:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenKind.SEMI, "throw statement")
            return ast.Throw(expr=expr, span=token.span)
        if self._is_local_decl_start():
            return self._parse_local_decl()
        expr = self._parse_expr()
        if self._accept(TokenKind.ASSIGN):
            if not isinstance(expr, (ast.Var, ast.FieldAccess)):
                raise EntSyntaxError("invalid assignment target", token.span)
            value = self._parse_expr()
            self._expect(TokenKind.SEMI, "assignment")
            return ast.Assign(target=expr, value=value, span=token.span)
        self._expect(TokenKind.SEMI, "expression statement")
        return ast.ExprStmt(expr=expr, span=token.span)

    def _is_local_decl_start(self) -> bool:
        kind = self._peek().kind
        if kind in _PRIM_TYPE_TOKENS or kind is TokenKind.KW_MCASE:
            return True
        if kind is not TokenKind.IDENT:
            return False
        # Ident Ident  => decl; Ident @mode<...> Ident => decl.
        if self._at(TokenKind.IDENT, 1):
            return True
        return self._at(TokenKind.AT, 1) and self._at(TokenKind.KW_MODE_TYPE, 2)

    def _parse_local_decl(self) -> ast.Stmt:
        declared = self._parse_type()
        name = self._expect_ident("local declaration").text
        init = None
        if self._accept(TokenKind.ASSIGN):
            init = self._parse_expr()
        self._expect(TokenKind.SEMI, "local declaration")
        return ast.LocalVarDecl(declared=declared, name=name, init=init,
                                span=declared.span)

    def _parse_if(self) -> ast.Stmt:
        start = self._expect(TokenKind.KW_IF)
        self._expect(TokenKind.LPAREN, "if condition")
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN, "if condition")
        then = self._parse_stmt()
        otherwise = None
        if self._accept(TokenKind.KW_ELSE):
            otherwise = self._parse_stmt()
        return ast.If(cond=cond, then=then, otherwise=otherwise,
                      span=start.span)

    def _parse_while(self) -> ast.Stmt:
        start = self._expect(TokenKind.KW_WHILE)
        self._expect(TokenKind.LPAREN, "while condition")
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN, "while condition")
        body = self._parse_stmt()
        return ast.While(cond=cond, body=body, span=start.span)

    def _parse_foreach(self) -> ast.Stmt:
        start = self._expect(TokenKind.KW_FOREACH)
        self._expect(TokenKind.LPAREN, "foreach header")
        var_type = self._parse_type()
        var_name = self._expect_ident("foreach variable").text
        self._expect(TokenKind.COLON, "foreach header")
        iterable = self._parse_expr()
        self._expect(TokenKind.RPAREN, "foreach header")
        body = self._parse_stmt()
        return ast.Foreach(var_type=var_type, var_name=var_name,
                           iterable=iterable, body=body, span=start.span)

    def _parse_try(self) -> ast.Stmt:
        start = self._expect(TokenKind.KW_TRY)
        body = self._parse_block()
        self._expect(TokenKind.KW_CATCH, "try statement")
        self._expect(TokenKind.LPAREN, "catch clause")
        exc_class = self._expect_ident("catch clause").text
        exc_var = self._expect_ident("catch clause").text
        self._expect(TokenKind.RPAREN, "catch clause")
        handler = self._parse_block()
        return ast.TryCatch(body=body, exc_class=exc_class, exc_var=exc_var,
                            handler=handler, span=start.span)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._at(TokenKind.OR):
            op = self._advance()
            right = self._parse_and()
            left = ast.Binary(op="||", left=left, right=right, span=op.span)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_equality()
        while self._at(TokenKind.AND):
            op = self._advance()
            right = self._parse_equality()
            left = ast.Binary(op="&&", left=left, right=right, span=op.span)
        return left

    # Binary-operator precedence for the climbing parser below.  The
    # four cascade levels (equality < relational < additive <
    # multiplicative) are folded into one loop producing identical
    # left-associative trees; ``instanceof`` sits at relational level.
    _BIN_PREC = {
        TokenKind.EQ: 1, TokenKind.NE: 1,
        TokenKind.LT: 2, TokenKind.LE: 2,
        TokenKind.GT: 2, TokenKind.GE: 2,
        TokenKind.PLUS: 3, TokenKind.MINUS: 3,
        TokenKind.STAR: 4, TokenKind.SLASH: 4, TokenKind.PERCENT: 4,
    }

    def _parse_equality(self) -> ast.Expr:
        return self._parse_binary_ops(1)

    def _parse_binary_ops(self, min_prec: int) -> ast.Expr:
        prec_table = self._BIN_PREC
        left = self._parse_unary()
        while True:
            token = self._tokens[self._pos]
            kind = token.kind
            if kind is TokenKind.KW_INSTANCEOF:
                if min_prec > 2:
                    return left
                self._advance()
                cname = self._expect_ident("instanceof").text
                left = ast.InstanceOf(expr=left, class_name=cname,
                                      span=token.span)
                continue
            prec = prec_table.get(kind)
            if prec is None or prec < min_prec:
                return left
            self._pos += 1
            right = self._parse_binary_ops(prec + 1)
            left = ast.Binary(op=token.text, left=left, right=right,
                              span=token.span)

    def _parse_unary(self) -> ast.Expr:
        token = self._tokens[self._pos]
        if token.kind is TokenKind.MINUS:
            self._advance()
            return ast.Unary(op="-", expr=self._parse_unary(),
                             span=token.span)
        if token.kind is TokenKind.NOT:
            self._advance()
            return ast.Unary(op="!", expr=self._parse_unary(),
                             span=token.span)
        if token.kind is TokenKind.KW_SNAPSHOT:
            return self._parse_snapshot()
        if token.kind is TokenKind.LPAREN and self._is_cast_start():
            self._advance()
            target = self._parse_type()
            self._expect(TokenKind.RPAREN, "cast")
            expr = self._parse_unary()
            return ast.Cast(target=target, expr=expr, span=token.span)
        return self._parse_postfix()

    def _is_cast_start(self) -> bool:
        """Is the upcoming ``( ... )`` a cast rather than grouping?"""
        assert self._at(TokenKind.LPAREN)
        kind1 = self._peek(1).kind
        if kind1 in _PRIM_TYPE_TOKENS or kind1 is TokenKind.KW_MCASE:
            return True
        if kind1 is not TokenKind.IDENT:
            return False
        # ( Ident @mode<...> ) ...
        if self._at(TokenKind.AT, 2):
            return True
        # ( Ident ) <primary-start>
        if self._at(TokenKind.RPAREN, 2):
            return self._peek(3).kind in _PRIMARY_START and not self._at(
                TokenKind.LPAREN, 3) and not self._at(TokenKind.MINUS, 3)
        return False

    def _parse_snapshot(self) -> ast.Expr:
        start = self._expect(TokenKind.KW_SNAPSHOT)
        expr = self._parse_postfix()
        lower = upper = None
        if self._accept(TokenKind.LBRACKET):
            lower = self._parse_snapshot_bound()
            self._expect(TokenKind.COMMA, "snapshot bounds")
            upper = self._parse_snapshot_bound()
            self._expect(TokenKind.RBRACKET, "snapshot bounds")
        return ast.Snapshot(expr=expr, lower=lower, upper=upper,
                            span=start.span)

    def _parse_snapshot_bound(self) -> ast.SnapshotBound:
        token = self._peek()
        if self._accept(TokenKind.UNDERSCORE):
            return ast.SnapshotBound(span=token.span)
        name = self._expect_ident("snapshot bound").text
        return ast.SnapshotBound(name=name, span=token.span)

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        tokens = self._tokens
        while tokens[self._pos].kind is TokenKind.DOT:
            self._pos += 1
            name = self._expect_ident("member access").text
            if tokens[self._pos].kind is TokenKind.LPAREN:
                args = self._parse_args()
                expr = ast.MethodCall(receiver=expr, name=name, args=args,
                                      span=expr.span)
            else:
                expr = ast.FieldAccess(obj=expr, name=name, span=expr.span)
        return expr

    def _parse_args(self) -> List[ast.Expr]:
        self._expect(TokenKind.LPAREN, "argument list")
        args: List[ast.Expr] = []
        if not self._at(TokenKind.RPAREN):
            while True:
                args.append(self._parse_expr())
                if not self._accept(TokenKind.COMMA):
                    break
        self._expect(TokenKind.RPAREN, "argument list")
        return args

    def _parse_primary(self) -> ast.Expr:
        token = self._tokens[self._pos]
        kind = token.kind
        if kind is TokenKind.INT:
            self._pos += 1
            return ast.IntLit(value=int(token.value), span=token.span)
        if kind is TokenKind.FLOAT:
            self._pos += 1
            return ast.FloatLit(value=float(token.value), span=token.span)
        if kind is TokenKind.STRING:
            self._pos += 1
            return ast.StringLit(value=str(token.value), span=token.span)
        if kind is TokenKind.KW_TRUE:
            self._pos += 1
            return ast.BoolLit(value=True, span=token.span)
        if kind is TokenKind.KW_FALSE:
            self._pos += 1
            return ast.BoolLit(value=False, span=token.span)
        if kind is TokenKind.KW_NULL:
            self._pos += 1
            return ast.NullLit(span=token.span)
        if kind is TokenKind.KW_THIS:
            self._pos += 1
            return ast.This(span=token.span)
        if kind is TokenKind.KW_NEW:
            return self._parse_new()
        if kind is TokenKind.KW_MCASE:
            return self._parse_mcase_expr()
        if kind is TokenKind.KW_MSELECT:
            return self._parse_mselect()
        if kind is TokenKind.LBRACKET:
            return self._parse_list_literal()
        if kind is TokenKind.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenKind.RPAREN, "parenthesized expression")
            return expr
        if kind is TokenKind.IDENT:
            self._pos += 1
            if self._tokens[self._pos].kind is TokenKind.LPAREN:
                args = self._parse_args()
                return ast.MethodCall(receiver=None, name=token.text,
                                      args=args, span=token.span)
            return ast.Var(name=token.text, span=token.span)
        raise EntSyntaxError(f"unexpected token {token.text!r} in expression",
                             token.span)

    def _parse_new(self) -> ast.Expr:
        start = self._expect(TokenKind.KW_NEW)
        name = self._expect_ident("new expression").text
        mode_args = None
        if self._at(TokenKind.AT):
            mode_args = self._parse_mode_args()
        args = self._parse_args()
        return ast.New(class_name=name, mode_args=mode_args, args=args,
                       span=start.span)

    def _parse_mcase_expr(self) -> ast.Expr:
        start = self._expect(TokenKind.KW_MCASE)
        element = None
        if self._accept(TokenKind.LT):
            element = self._parse_type()
            self._expect(TokenKind.GT, "mcase expression")
        self._expect(TokenKind.LBRACE, "mcase expression")
        branches: List[ast.MCaseBranch] = []
        while not self._at(TokenKind.RBRACE):
            btoken = self._peek()
            if self._accept(TokenKind.KW_DEFAULT):
                mode_name: Optional[str] = None
            else:
                mode_name = self._expect_ident("mcase branch").text
            self._expect(TokenKind.COLON, "mcase branch")
            expr = self._parse_expr()
            self._expect(TokenKind.SEMI, "mcase branch")
            branches.append(ast.MCaseBranch(mode_name=mode_name, expr=expr,
                                            span=btoken.span))
        self._expect(TokenKind.RBRACE, "mcase expression")
        return ast.MCaseExpr(element=element, branches=branches,
                             span=start.span)

    def _parse_mselect(self) -> ast.Expr:
        start = self._expect(TokenKind.KW_MSELECT)
        self._expect(TokenKind.LPAREN, "mselect")
        expr = self._parse_expr()
        self._expect(TokenKind.COMMA, "mselect")
        mode_name = self._expect_ident("mselect").text
        self._expect(TokenKind.RPAREN, "mselect")
        return ast.MSelect(expr=expr, mode_name=mode_name, span=start.span)

    def _parse_list_literal(self) -> ast.Expr:
        start = self._expect(TokenKind.LBRACKET)
        elements: List[ast.Expr] = []
        if not self._at(TokenKind.RBRACKET):
            while True:
                elements.append(self._parse_expr())
                if not self._accept(TokenKind.COMMA):
                    break
        self._expect(TokenKind.RBRACKET, "list literal")
        return ast.ListLit(elements=elements, span=start.span)


def parse_program(source: str, filename: str = "<ent>") -> ast.Program:
    """Parse ENT source text into a :class:`~repro.lang.ast_nodes.Program`."""
    return Parser(tokenize(source, filename)).parse_program()


def parse_expression(source: str, filename: str = "<ent>") -> ast.Expr:
    """Parse a single ENT expression (mainly for tests and the REPL)."""
    parser = Parser(tokenize(source, filename))
    expr = parser._parse_expr()
    parser._expect(TokenKind.EOF, "expression")
    return expr
