"""The ENT language: lexer, parser, mixed typechecker, and interpreter.

Typical use::

    from repro.lang import check_program, Interpreter, run_source

    interp = run_source(source_text)
    print(interp.output)
"""

from repro.lang.interp import (Interpreter, InterpOptions, InterpStats,
                               NullPlatform, run_source)
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_expression, parse_program
from repro.lang.typechecker import CheckedProgram, TypeChecker, check_program

__all__ = [
    "CheckedProgram",
    "Interpreter",
    "InterpOptions",
    "InterpStats",
    "NullPlatform",
    "TypeChecker",
    "check_program",
    "parse_expression",
    "parse_program",
    "run_source",
    "tokenize",
]
