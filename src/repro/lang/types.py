"""Semantic types and the resolved class table for the ENT typechecker.

A *mode atom* (see :mod:`repro.core.constraints`) is either a concrete
:class:`~repro.core.modes.Mode`, a mode type variable (a string), or the
dynamic mode ``?`` represented by the :data:`DYN` sentinel.  Object types
carry a tuple of mode atoms — the paper's ``c⟨ι⟩`` — whose first element
is the object's mode (``omode``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.constraints import Atom
from repro.core.errors import EntTypeError
from repro.core.modes import BOTTOM, TOP, Mode
from repro.lang import ast_nodes as ast


class _Dynamic:
    """Singleton for the dynamic mode ``?``."""

    _instance: Optional["_Dynamic"] = None

    def __new__(cls) -> "_Dynamic":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "?"

    def __reduce__(self):
        return (_Dynamic, ())


#: The dynamic mode ``?``.
DYN = _Dynamic()

#: A use-site mode argument: concrete mode, variable name, or ``?``.
ModeAtom = Union[Mode, str, _Dynamic]


def is_dynamic(atom: ModeAtom) -> bool:
    return atom is DYN


def is_var(atom: ModeAtom) -> bool:
    return isinstance(atom, str)


def atom_str(atom: ModeAtom) -> str:
    if atom is DYN:
        return "?"
    return str(atom)


# ---------------------------------------------------------------------------
# Semantic types


class Type:
    """Base class of semantic types."""

    def substitute(self, mapping: Dict[str, ModeAtom]) -> "Type":
        return self


@dataclass(frozen=True)
class PrimType(Type):
    """``int``, ``double``, ``boolean``, ``String``, ``void``, ``mode`` or
    the type of ``null``."""

    name: str

    def __str__(self) -> str:
        return self.name


INT = PrimType("int")
DOUBLE = PrimType("double")
BOOLEAN = PrimType("boolean")
STRING = PrimType("String")
VOID = PrimType("void")
MODE = PrimType("mode")
NULL = PrimType("null")

_PRIM_BY_NAME = {t.name: t for t in (INT, DOUBLE, BOOLEAN, STRING, VOID, MODE)}


def prim_type(name: str) -> PrimType:
    try:
        return _PRIM_BY_NAME[name]
    except KeyError:
        raise EntTypeError(f"unknown primitive type {name!r}") from None


def _subst_atom(atom: ModeAtom, mapping: Dict[str, ModeAtom]) -> ModeAtom:
    if isinstance(atom, str) and atom in mapping:
        return mapping[atom]
    return atom


@dataclass(frozen=True)
class ObjectType(Type):
    """The paper's ``c⟨ι⟩``: a class name plus mode arguments."""

    class_name: str
    mode_args: Tuple[ModeAtom, ...]

    @property
    def omode(self) -> ModeAtom:
        """The object's mode: the first mode argument."""
        if not self.mode_args:
            raise EntTypeError(
                f"class {self.class_name} has an empty mode argument list")
        return self.mode_args[0]

    def substitute(self, mapping: Dict[str, ModeAtom]) -> "ObjectType":
        return ObjectType(self.class_name,
                          tuple(_subst_atom(a, mapping)
                                for a in self.mode_args))

    def __str__(self) -> str:
        args = ", ".join(atom_str(a) for a in self.mode_args)
        return f"{self.class_name}@mode<{args}>"


@dataclass(frozen=True)
class MCaseType(Type):
    """``mcase<T>``."""

    element: Type

    def substitute(self, mapping: Dict[str, ModeAtom]) -> "MCaseType":
        return MCaseType(self.element.substitute(mapping))

    def __str__(self) -> str:
        return f"mcase<{self.element}>"


@dataclass(frozen=True)
class NativeType(Type):
    """The type of a native class instance (e.g. ``List``) or the
    pseudo-type of a native static class reference (e.g. ``Ext``)."""

    name: str

    def __str__(self) -> str:
        return self.name


LIST = NativeType("List")

#: The type-erased element type of the native ``List`` (pre-generics Java
#: collections style): assignable to and from everything, with casts
#: checked at run time.
ANY = NativeType("Any")


# ---------------------------------------------------------------------------
# Mode parameters (declaration sites, resolved)


@dataclass(frozen=True)
class ModeParam:
    """A resolved declaration-site mode parameter.

    ``dynamic`` distinguishes the paper's ``? → ω`` first parameter from a
    plain static generic ``ω``; ``concrete`` is set instead of ``var`` for
    classes fixed at a single mode (``class C@mode<m>``).
    """

    dynamic: bool = False
    var: Optional[str] = None
    concrete: Optional[Mode] = None
    lower: Mode = BOTTOM
    upper: Mode = TOP

    @property
    def internal_atom(self) -> ModeAtom:
        """The atom naming this parameter inside the class body.

        For ``@mode<m>`` that is the concrete mode itself; otherwise the
        parameter's variable (the paper's ``param(∆)``).
        """
        if self.concrete is not None:
            return self.concrete
        assert self.var is not None
        return self.var

    def bounds_constraints(self) -> List[Tuple[Atom, Atom]]:
        """The paper's ``cons(ω)``: ``lo <= mt`` and ``mt <= hi``."""
        if self.var is None:
            return []
        return [(self.lower, self.var), (self.var, self.upper)]

    def __str__(self) -> str:
        if self.concrete is not None:
            return str(self.concrete)
        prefix = "?" if self.dynamic else ""
        body = self.var or "_"
        if self.lower is not BOTTOM or self.upper is not TOP:
            return f"{prefix}{self.lower} <= {body} <= {self.upper}"
        return f"{prefix}{body}"


# ---------------------------------------------------------------------------
# Class table


@dataclass
class MethodInfo:
    """A resolved method signature.

    ``mode_param`` is the method-level mode characterization, if any
    (concrete override, generic variable, or dynamic with attributor).
    Types mention the owning class's mode variables and, for generic
    methods, the method's own variable.
    """

    name: str
    owner: str
    param_types: List[Type]
    param_names: List[str]
    return_type: Type
    mode_param: Optional[ModeParam] = None
    has_attributor: bool = False
    decl: Optional[ast.MethodDecl] = None

    @property
    def is_mode_generic(self) -> bool:
        return (self.mode_param is not None
                and self.mode_param.var is not None)


@dataclass
class FieldInfo:
    name: str
    owner: str
    declared: Type
    decl: Optional[ast.FieldDecl] = None


@dataclass
class ClassInfo:
    """A resolved class: mode parameters, fields, methods, attributor."""

    name: str
    superclass: Optional[str]  # None only for Object
    params: List[ModeParam] = field(default_factory=list)
    #: True for classes declared without any @mode annotation ("plain
    #: Java" code): their objects are *mode-transparent* — messaging
    #: them needs no waterfall check and runs at the caller's mode, as
    #: if the code were inlined.  This is what makes unannotated code
    #: flow freely across mode contexts (the paper's backward
    #: compatibility story).
    transparent: bool = False
    #: Mode arguments passed to the superclass, in terms of our params.
    super_args: Tuple[ModeAtom, ...] = ()
    fields: Dict[str, FieldInfo] = field(default_factory=dict)
    methods: Dict[str, MethodInfo] = field(default_factory=dict)
    has_attributor: bool = False
    decl: Optional[ast.ClassDecl] = None

    @property
    def is_dynamic(self) -> bool:
        """Does ``cmode(∆) = ?`` hold for this class?"""
        return bool(self.params) and self.params[0].dynamic

    @property
    def internal_atom(self) -> ModeAtom:
        """The mode of ``this`` inside method bodies (``param(∆)[0]``)."""
        if not self.params:
            raise EntTypeError(f"class {self.name} has no mode parameters")
        return self.params[0].internal_atom

    @property
    def param_vars(self) -> List[str]:
        return [p.var for p in self.params if p.var is not None]


class ClassTable:
    """All classes of a program, with inheritance-aware lookups.

    Lookup results are memoized: the table only ever grows (via
    :meth:`add`, which drops every cache), classes are immutable once
    registered, and the substituted types/mappings handed out are treated
    as read-only by all callers, so a cached answer can be shared freely.
    """

    def __init__(self) -> None:
        self._classes: Dict[str, ClassInfo] = {}
        object_info = ClassInfo(name="Object", superclass=None,
                                params=[ModeParam(var="$X_Object")])
        self._classes["Object"] = object_info
        self._reset_caches()

    def _reset_caches(self) -> None:
        self._chain_cache: Dict[ObjectType, Tuple[ObjectType, ...]] = {}
        self._method_cache: Dict[Tuple[ObjectType, str],
                                 Tuple["MethodInfo", Dict[str, ModeAtom]]] = {}
        self._field_cache: Dict[Tuple[ObjectType, str],
                                Tuple["FieldInfo", "Type"]] = {}
        self._fields_list_cache: Dict[str, Tuple["FieldInfo", ...]] = {}
        self._subclass_cache: Dict[Tuple[str, str], bool] = {}
        self._inst_cache: Dict[Tuple[str, Tuple[ModeAtom, ...]],
                               Dict[str, ModeAtom]] = {}

    def add(self, info: ClassInfo) -> None:
        if info.name in self._classes:
            raise EntTypeError(f"duplicate class {info.name!r}")
        self._classes[info.name] = info
        self._reset_caches()

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def get(self, name: str) -> ClassInfo:
        try:
            return self._classes[name]
        except KeyError:
            raise EntTypeError(f"unknown class {name!r}") from None

    def classes(self) -> List[ClassInfo]:
        return list(self._classes.values())

    # ------------------------------------------------------------------

    def check_acyclic(self) -> None:
        for name in self._classes:
            seen = {name}
            current = self._classes[name].superclass
            while current is not None:
                if current in seen:
                    raise EntTypeError(
                        f"inheritance cycle involving class {name!r}")
                seen.add(current)
                current = self.get(current).superclass

    def supertype_chain(self, typ: ObjectType) -> Tuple[ObjectType, ...]:
        """``typ`` and all its supertypes with mode args substituted."""
        cached = self._chain_cache.get(typ)
        if cached is not None:
            return cached
        chain = [typ]
        current = typ
        while True:
            info = self.get(current.class_name)
            if info.superclass is None:
                result = tuple(chain)
                self._chain_cache[typ] = result
                return result
            mapping = self._param_mapping(info, current.mode_args)
            super_args = tuple(_subst_atom(a, mapping)
                               for a in info.super_args)
            if not super_args:
                # Default: pass our own mode through as the super's mode.
                super_info = self.get(info.superclass)
                passthrough = (current.omode,) if info.params else (TOP,)
                super_args = passthrough + tuple(
                    p.upper for p in super_info.params[1:])
            current = ObjectType(info.superclass, super_args)
            chain.append(current)

    def _param_mapping(self, info: ClassInfo,
                       args: Tuple[ModeAtom, ...]) -> Dict[str, ModeAtom]:
        if len(args) != len(info.params):
            raise EntTypeError(
                f"class {info.name} expects {len(info.params)} mode "
                f"argument(s), got {len(args)}")
        mapping: Dict[str, ModeAtom] = {}
        for param, arg in zip(info.params, args):
            if param.var is not None:
                mapping[param.var] = arg
        return mapping

    def instantiate(self, info: ClassInfo,
                    args: Tuple[ModeAtom, ...]) -> Dict[str, ModeAtom]:
        """Public wrapper for parameter substitution maps.

        The returned mapping is shared with the cache: treat it as
        read-only (copy before mutating, as ``_check_user_call`` does).
        """
        key = (info.name, args)
        cached = self._inst_cache.get(key)
        if cached is None:
            cached = self._param_mapping(info, args)
            self._inst_cache[key] = cached
        return cached

    def is_subclass(self, sub: str, sup: str) -> bool:
        key = (sub, sup)
        cached = self._subclass_cache.get(key)
        if cached is not None:
            return cached
        answer = False
        current: Optional[str] = sub
        while current is not None:
            if current == sup:
                answer = True
                break
            current = self.get(current).superclass
        self._subclass_cache[key] = answer
        return answer

    def lookup_field(self, typ: ObjectType,
                     name: str) -> Tuple[FieldInfo, Type]:
        """The paper's ``fields(T)``: find a field walking up the chain,
        returning its info and its declared type with this instantiation's
        mode arguments substituted in."""
        key = (typ, name)
        cached = self._field_cache.get(key)
        if cached is not None:
            return cached
        for step in self.supertype_chain(typ):
            info = self.get(step.class_name)
            if name in info.fields:
                finfo = info.fields[name]
                mapping = self._param_mapping(info, step.mode_args)
                result = (finfo, finfo.declared.substitute(mapping))
                self._field_cache[key] = result
                return result
        raise EntTypeError(
            f"no field {name!r} in class {typ.class_name}")

    def lookup_method(self, typ: ObjectType,
                      name: str) -> Tuple[MethodInfo, Dict[str, ModeAtom]]:
        """The paper's ``mtype``: find a method walking up the chain.

        Returns the method info together with the substitution mapping the
        *owning* class's mode variables to this instantiation's atoms.
        The mapping is shared with the cache: callers must copy before
        mutating it.
        """
        key = (typ, name)
        cached = self._method_cache.get(key)
        if cached is not None:
            return cached
        for step in self.supertype_chain(typ):
            info = self.get(step.class_name)
            if name in info.methods:
                mapping = self._param_mapping(info, step.mode_args)
                result = (info.methods[name], mapping)
                self._method_cache[key] = result
                return result
        raise EntTypeError(
            f"no method {name!r} in class {typ.class_name}")

    def all_fields(self, class_name: str) -> Tuple[FieldInfo, ...]:
        """Fields of a class including inherited ones (super first)."""
        cached = self._fields_list_cache.get(class_name)
        if cached is not None:
            return cached
        chain: List[ClassInfo] = []
        current: Optional[str] = class_name
        while current is not None:
            info = self.get(current)
            chain.append(info)
            current = info.superclass
        out: List[FieldInfo] = []
        seen = set()
        for info in reversed(chain):
            for finfo in info.fields.values():
                if finfo.name not in seen:
                    out.append(finfo)
                    seen.add(finfo.name)
        result = tuple(out)
        self._fields_list_cache[class_name] = result
        return result
