"""Operational semantics for ENT (paper section 4.2).

A tree-walking interpreter over typechecked programs.  The ENT-specific
behaviour:

* **Closures** ``cl(m, e)`` — every frame carries the mode it executes
  under; invoking a method switches to the receiver's mode (or the
  method's overriding/attributed mode).
* **Snapshot** — evaluates the receiver's attributor, performs the
  ``check(m, lo, hi, o)`` bound test (raising the paper's
  ``EnergyException`` on a *bad check*), and produces a shallow copy
  tagged with the resulting mode.  The section-5 lazy-copy optimization
  tags the first snapshot in place and only copies from the second
  snapshot on.
* **dfall** — the dynamic waterfall invariant is asserted on every
  message; for well-typed programs this never fails (Corollary 1), and
  the interpreter exposes an ``on_message`` hook so tests can verify it.
* **Mode cases** — eliminated implicitly against the enclosing object's
  mode, or explicitly via ``mselect``.

Run-time configurations used by the evaluation harness:

* ``silent=True`` — the E1 baseline that "ignores the EnergyException":
  bound checks always pass (tagging remains in place).
* ``baseline=True`` — the Figure-6 overhead baseline: no copy/tag
  bookkeeping and no bound checks; attributors still run so program
  behaviour is preserved.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from dataclasses import fields as field_list
from typing import Callable, Dict, List, Optional

from repro.core.errors import (BadCastError, EnergyException,
                               EntRuntimeError, FuelExhausted, StuckError)
from repro.core.modes import BOTTOM, TOP, Mode, ModeLattice
from repro.obs.events import (AttributorEvent, DfallCheckEvent,
                              MCaseElimEvent, SnapshotEvent, mode_name)
from repro.obs.tracer import NULL_TRACER, attach_platform
from repro.lang import ast_nodes as ast
from repro.lang import types as ty
from repro.lang.natives import (NATIVE_STATIC_CLASSES, call_list_method,
                                call_native_static, call_string_method)
from repro.lang.typechecker import CheckedProgram
from repro.lang.types import DYN, ClassInfo, MethodInfo, ModeAtom, ObjectType
from repro.lang.values import MCaseV, ObjectV

__all__ = ["Interpreter", "InterpOptions", "InterpStats", "NullPlatform",
            "run_source"]


class NullPlatform:
    """Default platform: a pure accounting stub with full battery.

    Real platforms (:mod:`repro.platform.systems`) implement the same
    interface backed by battery/thermal/CPU models.
    """

    def __init__(self) -> None:
        self.work_units = 0.0
        self.io_total = 0.0
        self.net_total = 0.0
        self.slept = 0.0
        self._clock = 0.0

    def battery_fraction(self) -> float:
        return 1.0

    def cpu_temperature(self) -> float:
        return 45.0

    def cpu_work(self, units: float) -> None:
        self.work_units += units
        self._clock += units * 1e-6

    def io_bytes(self, count: float) -> None:
        self.io_total += count
        self._clock += count * 1e-8

    def net_bytes(self, count: float) -> None:
        self.net_total += count
        self._clock += count * 1e-7

    def sleep(self, seconds: float) -> None:
        self.slept += seconds
        self._clock += seconds

    def now(self) -> float:
        return self._clock


@dataclass
class InterpOptions:
    silent: bool = False
    baseline: bool = False
    lazy_copy: bool = True
    fuel: Optional[int] = None
    check_dfall: bool = True
    #: Closure-compile bodies on first execution (see
    #: :mod:`repro.lang.compiler`); semantics are identical.
    compile: bool = False


@dataclass
class InterpStats:
    steps: int = 0
    messages: int = 0
    dfall_checks: int = 0
    snapshots: int = 0
    copies: int = 0
    lazy_tags: int = 0
    bound_checks: int = 0
    energy_exceptions: int = 0
    mcase_elims: int = 0
    objects_created: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in field_list(self)}

    def reset(self) -> None:
        for f in field_list(self):
            setattr(self, f.name, f.default)


class _NativeRef:
    """A reference to a native static class (``Ext``, ``Sys``, ``Math``)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"<native {self.name}>"


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value: object) -> None:
        self.value = value


@dataclass
class _Frame:
    this_obj: Optional[ObjectV]
    mode_env: Dict[str, Optional[Mode]]
    current_mode: Optional[Mode]
    locals: List[Dict[str, object]] = field(default_factory=list)

    def push(self) -> None:
        self.locals.append({})

    def pop(self) -> None:
        self.locals.pop()

    def declare(self, name: str, value: object) -> None:
        self.locals[-1][name] = value

    def lookup(self, name: str):
        for frame in reversed(self.locals):
            if name in frame:
                return True, frame[name]
        return False, None

    def assign(self, name: str, value: object) -> bool:
        for frame in reversed(self.locals):
            if name in frame:
                frame[name] = value
                return True
        return False


class Interpreter:
    """Evaluates a typechecked ENT program."""

    def __init__(self, checked: CheckedProgram,
                 platform=None,
                 options: Optional[InterpOptions] = None,
                 seed: int = 0, tracer=None) -> None:
        self.checked = checked
        self.table = checked.table
        self.lattice: ModeLattice = checked.lattice
        self.platform = platform if platform is not None else NullPlatform()
        self.options = options or InterpOptions()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if self.tracer.enabled:
            attach_platform(self.tracer, self.platform)
        self.stats = InterpStats()
        self.output: List[str] = []
        self.rng = random.Random(seed)
        #: Optional instrumentation: called as
        #: ``on_message(receiver_mode, sender_mode, holds)`` before every
        #: user-object message (Corollary 1 tests).
        self.on_message: Optional[Callable] = None
        #: Called as ``on_snapshot(obj, mode, lower, upper, ok)``.
        self.on_snapshot: Optional[Callable] = None

    # ------------------------------------------------------------------
    # Entry point

    def run(self, args: Optional[List[str]] = None) -> object:
        """Boot the program: ``cl(⊤, mbody(main, Main⟨⊤⟩))``."""
        if "Main" not in self.table:
            raise EntRuntimeError("program has no class Main")
        boot_frame = _Frame(this_obj=None, mode_env={}, current_mode=TOP)
        boot_frame.push()
        main_obj = self._construct(self.table.get("Main"), (TOP,), [],
                                   boot_frame, span=None)
        minfo = self._find_method(main_obj.class_info, "main")
        if minfo is None:
            raise EntRuntimeError("class Main has no method main")
        call_args: List[object] = []
        if len(minfo.param_names) == 1:
            call_args = [list(args or [])]
        elif len(minfo.param_names) > 1 or args:
            if len(minfo.param_names) != (1 if args else 0):
                raise EntRuntimeError(
                    "main must take zero parameters or a single List")
        if self.tracer.enabled:
            self.tracer.mode_transition("closure", None, TOP)
            with self.tracer.span("main", category="program"):
                return self._invoke(main_obj, minfo, call_args, boot_frame,
                                    self_call=False, span=None)
        return self._invoke(main_obj, minfo, call_args, boot_frame,
                            self_call=False, span=None)

    # ------------------------------------------------------------------
    # Bookkeeping

    def _tick(self) -> None:
        self.stats.steps += 1
        fuel = self.options.fuel
        if fuel is not None and self.stats.steps > fuel:
            raise FuelExhausted(
                f"evaluation exceeded {fuel} steps (divergence bound)")

    def _resolve_atom(self, atom: ModeAtom,
                      frame: _Frame) -> Optional[Mode]:
        """Resolve a mode atom to a concrete mode (None for ``?``)."""
        if isinstance(atom, Mode):
            return atom
        if atom is DYN:
            return None
        return frame.mode_env.get(atom)

    def render(self, value: object) -> str:
        """Java-flavoured string rendering (used by ``+`` and print)."""
        if value is None:
            return "null"
        if value is True:
            return "true"
        if value is False:
            return "false"
        if isinstance(value, float) and value.is_integer():
            return f"{value:.1f}"
        if isinstance(value, Mode):
            return value.name
        if isinstance(value, list):
            return "[" + ", ".join(self.render(v) for v in value) + "]"
        return str(value)

    def values_equal(self, a: object, b: object) -> bool:
        if isinstance(a, bool) or isinstance(b, bool):
            return a is b
        if isinstance(a, (int, float)) and isinstance(b, (int, float)):
            return a == b
        if isinstance(a, str) and isinstance(b, str):
            return a == b
        if a is None or b is None:
            return a is b
        # Modes are interned; objects and lists compare by identity.
        return a is b

    # ------------------------------------------------------------------
    # Object construction

    def _find_method(self, info: ClassInfo,
                     name: str) -> Optional[MethodInfo]:
        current: Optional[ClassInfo] = info
        while current is not None:
            if name in current.methods:
                return current.methods[name]
            current = (self.table.get(current.superclass)
                       if current.superclass else None)
        return None

    def _find_attributor(self,
                         info: ClassInfo) -> Optional[ast.AttributorDecl]:
        current: Optional[ClassInfo] = info
        while current is not None:
            if current.decl is not None and current.decl.attributor:
                return current.decl.attributor
            current = (self.table.get(current.superclass)
                       if current.superclass else None)
        return None

    def _full_mode_env(self, info: ClassInfo,
                       own: Dict[str, Optional[Mode]]
                       ) -> Dict[str, Optional[Mode]]:
        """Extend an instantiation with the resolved parameters of every
        ancestor (so inherited method bodies resolve their variables)."""
        env = dict(own)
        current = info
        while current.superclass is not None:
            super_info = self.table.get(current.superclass)
            if current.super_args:
                atoms = current.super_args
            else:
                # Default: pass our mode through; bound extras at their
                # upper bounds.
                own_atom: ModeAtom = (
                    current.params[0].concrete
                    if current.params[0].concrete is not None
                    else current.params[0].var)
                atoms = (own_atom,) + tuple(
                    p.upper for p in super_info.params[1:])
            for param, atom in zip(super_info.params, atoms):
                if param.var is None:
                    continue
                if isinstance(atom, Mode):
                    env[param.var] = atom
                elif atom is DYN:
                    env[param.var] = None
                else:
                    env[param.var] = env.get(atom)
            current = super_info
        return env

    def _default_value(self, declared: ty.Type) -> object:
        if declared == ty.INT:
            return 0
        if declared == ty.DOUBLE:
            return 0.0
        if declared == ty.BOOLEAN:
            return False
        return None

    def _construct(self, info: ClassInfo, atoms, arg_values: List[object],
                   frame: _Frame, span) -> ObjectV:
        own_env: Dict[str, Optional[Mode]] = {}
        for param, atom in zip(info.params, atoms):
            if param.var is None:
                continue
            own_env[param.var] = (atom if isinstance(atom, Mode)
                                  else self._resolve_atom(atom, frame))
        env = self._full_mode_env(info, own_env)
        obj = ObjectV(info, env, {})
        self.stats.objects_created += 1
        # Field defaults and initializers, superclass-first.
        init_frame = _Frame(this_obj=obj, mode_env=env,
                            current_mode=frame.current_mode)
        init_frame.push()
        for finfo in self.table.all_fields(info.name):
            obj.fields[finfo.name] = self._default_value(finfo.declared)
        for finfo in self.table.all_fields(info.name):
            if finfo.decl is not None and finfo.decl.init is not None:
                wants = isinstance(finfo.declared, ty.MCaseType)
                obj.fields[finfo.name] = self._execute_expr(
                    finfo.decl.init, init_frame, want_mcase=wants)
        # Constructor body.
        ctor = info.decl.constructor if info.decl is not None else None
        if ctor is None:
            if arg_values:
                raise EntRuntimeError(
                    f"class {info.name} has no constructor")
        else:
            ctor_frame = _Frame(this_obj=obj, mode_env=env,
                                current_mode=frame.current_mode)
            ctor_frame.push()
            for param, value in zip(ctor.params, arg_values):
                ctor_frame.declare(param.name, value)
            try:
                self._execute_block(ctor.body, ctor_frame)
            except _ReturnSignal:
                pass
        return obj

    # ------------------------------------------------------------------
    # Messaging

    def _invoke(self, receiver: ObjectV, minfo: MethodInfo,
                args: List[object], frame: _Frame, self_call: bool,
                span) -> object:
        self.stats.messages += 1
        # The receiver's mode environment is only copied when a method-
        # level binding extends it; bodies never mutate it.
        mode_env = receiver.mode_env
        binding_var: Optional[str] = None
        guard: Optional[Mode]
        closure: Optional[Mode]
        if minfo.mode_param is not None:
            mode_env = dict(receiver.mode_env)
            mp = minfo.mode_param
            if mp.concrete is not None:
                guard = closure = mp.concrete
            elif minfo.has_attributor:
                mode = self._eval_method_attributor(receiver, minfo, args)
                guard = closure = mode
                binding_var = mp.var
                mode_env[mp.var] = mode
            else:
                assert mp.var is not None
                binding_var = mp.var
                inferred = self._infer_runtime_mode(minfo, args)
                mode_env[mp.var] = inferred
                guard = inferred
                closure = (inferred if inferred is not None
                           else receiver.effective_mode
                           or frame.current_mode)
        elif receiver.class_info.transparent:
            # Mode-transparent (plain Java) receiver: no waterfall
            # check; the body runs at the caller's mode.
            guard = None
            closure = frame.current_mode
            self_call = True  # suppress the dfall check below
        else:
            guard = receiver.effective_mode
            closure = guard if guard is not None else frame.current_mode
        self._check_dfall(guard, frame.current_mode, self_call, receiver,
                          minfo, span)
        traced = (self.tracer.enabled
                  and closure is not frame.current_mode)
        if traced:
            self.tracer.mode_transition("closure", frame.current_mode,
                                        closure)
        body_frame = _Frame(this_obj=receiver, mode_env=mode_env,
                            current_mode=closure)
        body_frame.push()
        for name, value in zip(minfo.param_names, args):
            body_frame.declare(name, value)
        if binding_var is not None:
            pass  # already in mode_env; nothing else to bind
        assert minfo.decl is not None
        try:
            self._execute_block(minfo.decl.body, body_frame)
        except _ReturnSignal as signal:
            return signal.value
        finally:
            if traced:
                self.tracer.mode_transition("closure", closure,
                                            frame.current_mode)
        return None

    def _check_dfall(self, guard: Optional[Mode],
                     sender: Optional[Mode], self_call: bool,
                     receiver: ObjectV, minfo: MethodInfo, span) -> None:
        """The dynamic waterfall invariant ``dfall(o, m)``."""
        if self.options.baseline or not self.options.check_dfall:
            return
        if self_call:
            # Internal view: an object may always message itself.
            return
        self.stats.dfall_checks += 1
        if guard is None:
            if self.options.silent:
                return
            raise StuckError(
                f"messaging un-snapshotted dynamic object "
                f"{receiver!r} (method {minfo.name}); a well-typed "
                f"program cannot reach this state")
        sender_mode = sender if sender is not None else TOP
        holds = self.lattice.leq(guard, sender_mode)
        if self.tracer.enabled:
            self.tracer.emit(DfallCheckEvent(
                ts=self.tracer.now(), cls=receiver.class_info.name,
                method=minfo.name, receiver_mode=guard.name,
                sender_mode=sender_mode.name, holds=holds,
                source="interp"))
        if self.on_message is not None:
            self.on_message(guard, sender_mode, holds)
        if not holds and not self.options.silent:
            self.stats.energy_exceptions += 1
            message = (f"waterfall invariant violated: receiver mode "
                       f"{guard.name} > sender mode {sender_mode.name} "
                       f"(method {minfo.owner}.{minfo.name})")
            if self.tracer.enabled:
                self.tracer.energy_exception(message, mode=guard,
                                             upper=sender_mode,
                                             source="interp")
            raise EnergyException(message, mode=guard, upper=sender_mode)

    def _eval_method_attributor(self, receiver: ObjectV,
                                minfo: MethodInfo,
                                args: List[object]) -> Mode:
        assert minfo.decl is not None and minfo.decl.attributor is not None
        attr_frame = _Frame(this_obj=receiver,
                            mode_env=dict(receiver.mode_env),
                            current_mode=BOTTOM)
        attr_frame.push()
        for name, value in zip(minfo.param_names, args):
            attr_frame.declare(name, value)
        return self._run_attributor_body(minfo.decl.attributor, attr_frame,
                                         f"{minfo.owner}.{minfo.name}")

    def _run_attributor_body(self, attributor: ast.AttributorDecl,
                             frame: _Frame, what: str) -> Mode:
        try:
            self._execute_block(attributor.body, frame)
        except _ReturnSignal as signal:
            if not isinstance(signal.value, Mode):
                raise EntRuntimeError(
                    f"attributor of {what} returned a non-mode value: "
                    f"{signal.value!r}")
            return signal.value
        raise EntRuntimeError(f"attributor of {what} did not return a mode")

    def _infer_runtime_mode(self, minfo: MethodInfo,
                            args: List[object]) -> Optional[Mode]:
        """Runtime counterpart of the checker's generic-method inference:
        read the binding off the argument objects' mode tags."""
        var = minfo.mode_param.var
        for ptype, value in zip(minfo.param_types, args):
            if isinstance(ptype, ObjectType) and isinstance(value, ObjectV):
                declared_info = self.table.get(ptype.class_name)
                for index, atom in enumerate(ptype.mode_args):
                    if atom == var:
                        param = declared_info.params[index]
                        if param.concrete is not None:
                            return param.concrete
                        return value.mode_env.get(param.var)
        return None

    # ------------------------------------------------------------------
    # Statements

    def _execute_block(self, block: ast.Block, frame: _Frame) -> None:
        """Run a body through the selected engine (walk or compiled)."""
        if self.options.compile:
            from repro.lang.compiler import compile_block
            compile_block(self, block)(frame)
        else:
            self._exec_block(block, frame)

    def _execute_expr(self, expr: ast.Expr, frame: _Frame,
                      want_mcase: bool = False) -> object:
        if self.options.compile:
            from repro.lang.compiler import compile_expr
            cache = getattr(self, "_compiled_cache", None)
            if cache is None:
                cache = self._compiled_cache = {}
            key = (id(expr), want_mcase)
            code = cache.get(key)
            if code is None:
                code = compile_expr(self, expr, want_mcase=want_mcase)
                cache[key] = code
            return code(frame)
        return self._eval(expr, frame, want_mcase=want_mcase)

    def _exec_block(self, block: ast.Block, frame: _Frame) -> None:
        frame.push()
        try:
            for stmt in block.stmts:
                self._exec_stmt(stmt, frame)
        finally:
            frame.pop()

    def _exec_stmt(self, stmt: ast.Stmt, frame: _Frame) -> None:
        self._tick()
        if isinstance(stmt, ast.Block):
            self._exec_block(stmt, frame)
        elif isinstance(stmt, ast.LocalVarDecl):
            wants = isinstance(getattr(stmt, "resolved_type", None),
                               ty.MCaseType)
            value = (self._eval(stmt.init, frame, want_mcase=wants)
                     if stmt.init is not None
                     else self._default_value(
                         getattr(stmt, "resolved_type", ty.NULL)))
            frame.declare(stmt.name, value)
        elif isinstance(stmt, ast.Assign):
            self._exec_assign(stmt, frame)
        elif isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr, frame)
        elif isinstance(stmt, ast.If):
            if self._truth(self._eval(stmt.cond, frame)):
                self._exec_stmt(stmt.then, frame)
            elif stmt.otherwise is not None:
                self._exec_stmt(stmt.otherwise, frame)
        elif isinstance(stmt, ast.While):
            while self._truth(self._eval(stmt.cond, frame)):
                try:
                    self._exec_stmt(stmt.body, frame)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
        elif isinstance(stmt, ast.Foreach):
            self._exec_foreach(stmt, frame)
        elif isinstance(stmt, ast.Return):
            wants = False
            value = (self._eval(stmt.expr, frame, want_mcase=wants)
                     if stmt.expr is not None else None)
            raise _ReturnSignal(value)
        elif isinstance(stmt, ast.Break):
            raise _BreakSignal()
        elif isinstance(stmt, ast.Continue):
            raise _ContinueSignal()
        elif isinstance(stmt, ast.TryCatch):
            try:
                self._exec_stmt(stmt.body, frame)
            except EnergyException as exc:
                frame.push()
                try:
                    frame.declare(stmt.exc_var, str(exc))
                    self._exec_stmt(stmt.handler, frame)
                finally:
                    frame.pop()
        elif isinstance(stmt, ast.Throw):
            message = self._eval(stmt.expr, frame)
            self.stats.energy_exceptions += 1
            if self.tracer.enabled:
                self.tracer.energy_exception(self.render(message),
                                             source="interp")
            raise EnergyException(self.render(message))
        else:  # pragma: no cover
            raise StuckError(f"unknown statement {type(stmt).__name__}")

    def _truth(self, value: object) -> bool:
        if isinstance(value, bool):
            return value
        raise StuckError(f"condition is not a boolean: {value!r}")

    def _exec_assign(self, stmt: ast.Assign, frame: _Frame) -> None:
        wants = bool(getattr(stmt, "wants_mcase", False))
        value = self._eval(stmt.value, frame, want_mcase=wants)
        target = stmt.target
        if isinstance(target, ast.Var):
            if frame.assign(target.name, value):
                return
            if frame.this_obj is not None and (
                    target.name in frame.this_obj.fields):
                frame.this_obj.set_field(target.name, value)
                return
            raise StuckError(f"unknown variable {target.name!r}")
        assert isinstance(target, ast.FieldAccess)
        obj = self._eval(target.obj, frame)
        if not isinstance(obj, ObjectV):
            raise StuckError(f"cannot assign field of {obj!r}")
        obj.set_field(target.name, value)

    def _exec_foreach(self, stmt: ast.Foreach, frame: _Frame) -> None:
        iterable = self._eval(stmt.iterable, frame)
        if not isinstance(iterable, list):
            raise StuckError("foreach requires a List")
        for element in list(iterable):
            frame.push()
            try:
                frame.declare(stmt.var_name, element)
                self._exec_stmt(stmt.body, frame)
            except _BreakSignal:
                frame.pop()
                break
            except _ContinueSignal:
                frame.pop()
                continue
            else:
                frame.pop()

    # ------------------------------------------------------------------
    # Expressions

    def _eval(self, expr: ast.Expr, frame: _Frame,
              want_mcase: bool = False) -> object:
        self._tick()
        value = self._eval_raw(expr, frame, want_mcase)
        if isinstance(value, MCaseV) and not want_mcase:
            value = self._eliminate(value, expr, frame)
        return value

    def _eliminate(self, mcase: MCaseV, expr: ast.Expr,
                   frame: _Frame) -> object:
        """Implicit mode-case elimination on the enclosing object's mode."""
        self.stats.mcase_elims += 1
        mode = getattr(expr, "_owner_mode", None)
        if mode is None:
            mode = frame.current_mode
        if self.tracer.enabled:
            self.tracer.emit(MCaseElimEvent(
                ts=self.tracer.now(), mode=mode_name(mode),
                source="interp"))
        return mcase.select(mode)

    def _eval_raw(self, expr: ast.Expr, frame: _Frame,
                  want_mcase: bool) -> object:
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.FloatLit):
            return expr.value
        if isinstance(expr, ast.StringLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return expr.value
        if isinstance(expr, ast.NullLit):
            return None
        if isinstance(expr, ast.This):
            return frame.this_obj
        if isinstance(expr, ast.Var):
            return self._eval_var(expr, frame)
        if isinstance(expr, ast.FieldAccess):
            return self._eval_field_access(expr, frame)
        if isinstance(expr, ast.MethodCall):
            return self._eval_call(expr, frame)
        if isinstance(expr, ast.New):
            return self._eval_new(expr, frame)
        if isinstance(expr, ast.Cast):
            return self._eval_cast(expr, frame)
        if isinstance(expr, ast.Snapshot):
            return self._eval_snapshot(expr, frame)
        if isinstance(expr, ast.MCaseExpr):
            return self._eval_mcase(expr, frame)
        if isinstance(expr, ast.MSelect):
            return self._eval_mselect(expr, frame)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, frame)
        if isinstance(expr, ast.Unary):
            return self._eval_unary(expr, frame)
        if isinstance(expr, ast.ListLit):
            return [self._eval(e, frame) for e in expr.elements]
        if isinstance(expr, ast.InstanceOf):
            return self._eval_instanceof(expr, frame)
        raise StuckError(  # pragma: no cover
            f"unknown expression {type(expr).__name__}")

    def _eval_var(self, expr: ast.Var, frame: _Frame) -> object:
        found, value = frame.lookup(expr.name)
        if found:
            return value
        if frame.this_obj is not None and expr.name in frame.this_obj.fields:
            value = frame.this_obj.fields[expr.name]
            if isinstance(value, MCaseV):
                expr._owner_mode = frame.this_obj.effective_mode
            return value
        mode = Mode(expr.name) if self._is_mode_name(expr.name) else None
        if mode is not None:
            return mode
        if expr.name in NATIVE_STATIC_CLASSES:
            return _NativeRef(expr.name)
        raise StuckError(f"unknown variable {expr.name!r}")

    def _is_mode_name(self, name: str) -> bool:
        try:
            return Mode(name) in self.lattice
        except Exception:
            return False

    def _eval_field_access(self, expr: ast.FieldAccess,
                           frame: _Frame) -> object:
        obj = self._eval(expr.obj, frame)
        if isinstance(obj, ObjectV):
            value = obj.get_field(expr.name)
            if isinstance(value, MCaseV):
                # Elimination projects on the mode of the object that
                # *encloses* the field.
                expr._owner_mode = obj.effective_mode
            return value
        raise StuckError(f"cannot access field {expr.name!r} of {obj!r}")

    def _eval_call(self, expr: ast.MethodCall, frame: _Frame) -> object:
        if expr.receiver is None:
            receiver: object = frame.this_obj
            self_call = True
        else:
            receiver = self._eval(expr.receiver, frame)
            self_call = (isinstance(expr.receiver, ast.This)
                         or receiver is frame.this_obj)
        if isinstance(receiver, _NativeRef):
            args = [self._eval(a, frame) for a in expr.args]
            return call_native_static(self, receiver.name, expr.name, args)
        if isinstance(receiver, str):
            args = [self._eval(a, frame) for a in expr.args]
            return call_string_method(self, receiver, expr.name, args)
        if isinstance(receiver, list):
            args = [self._eval(a, frame) for a in expr.args]
            return call_list_method(self, receiver, expr.name, args)
        if isinstance(receiver, ObjectV):
            minfo = self._find_method(receiver.class_info, expr.name)
            if minfo is None:
                raise StuckError(
                    f"no method {expr.name!r} on class "
                    f"{receiver.class_info.name}")
            args = []
            for arg_expr, ptype in zip(expr.args, minfo.param_types):
                wants = isinstance(ptype, ty.MCaseType)
                args.append(self._eval(arg_expr, frame, want_mcase=wants))
            return self._invoke(receiver, minfo, args, frame,
                                self_call=self_call, span=expr.span)
        if receiver is None:
            raise StuckError(
                f"null receiver for method {expr.name!r}")
        raise StuckError(f"cannot invoke {expr.name!r} on {receiver!r}")

    def _eval_new(self, expr: ast.New, frame: _Frame) -> object:
        resolved = getattr(expr, "resolved_type", None)
        if resolved == ty.LIST:
            return []
        if resolved is None:
            raise StuckError(
                "new-expression was not typechecked (missing resolution)")
        assert isinstance(resolved, ObjectType)
        info = self.table.get(resolved.class_name)
        ctor = info.decl.constructor if info.decl is not None else None
        arg_values = []
        if ctor is not None:
            class_vars = {p.var for p in info.params if p.var}
            for arg_expr in expr.args:
                arg_values.append(self._eval(arg_expr, frame))
        else:
            arg_values = [self._eval(a, frame) for a in expr.args]
        return self._construct(info, resolved.mode_args, arg_values, frame,
                               expr.span)

    def _eval_cast(self, expr: ast.Cast, frame: _Frame) -> object:
        value = self._eval(expr.expr, frame)
        target = getattr(expr, "resolved_target", None)
        if target is None:
            raise StuckError("cast was not typechecked")
        if target == ty.INT:
            if isinstance(value, (int, float)) and not isinstance(value,
                                                                  bool):
                return int(value)
            raise BadCastError(f"cannot cast {value!r} to int")
        if target == ty.DOUBLE:
            if isinstance(value, (int, float)) and not isinstance(value,
                                                                  bool):
                return float(value)
            raise BadCastError(f"cannot cast {value!r} to double")
        if target == ty.BOOLEAN:
            if isinstance(value, bool):
                return value
            raise BadCastError(f"cannot cast {value!r} to boolean")
        if target == ty.STRING:
            if value is None or isinstance(value, str):
                return value
            raise BadCastError(f"cannot cast {value!r} to String")
        if target == ty.LIST:
            if value is None or isinstance(value, list):
                return value
            raise BadCastError(f"cannot cast {value!r} to List")
        if isinstance(target, ObjectType):
            return self._cast_object(value, target, frame)
        raise BadCastError(f"unsupported cast target {target}")

    def _cast_object(self, value: object, target: ObjectType,
                     frame: _Frame) -> object:
        if value is None:
            return None
        if not isinstance(value, ObjectV):
            raise BadCastError(
                f"cannot cast {value!r} to {target}")
        if not self.table.is_subclass(value.class_info.name,
                                      target.class_name):
            raise BadCastError(
                f"bad cast: {value.class_info.name} is not a subclass of "
                f"{target.class_name}")
        target_mode = self._resolve_atom(target.omode, frame)
        if target.omode is DYN:
            return value
        if target_mode is None:
            # Unresolvable variable at run time: class check only.
            return value
        actual = value.effective_mode
        if actual is None or actual != target_mode:
            raise BadCastError(
                f"bad cast: object mode "
                f"{actual.name if actual else '?'} does not match "
                f"{target_mode.name}")
        return value

    def _eval_snapshot(self, expr: ast.Snapshot, frame: _Frame) -> object:
        value = self._eval(expr.expr, frame)
        if not isinstance(value, ObjectV):
            raise StuckError(f"cannot snapshot {value!r}")
        attributor = self._find_attributor(value.class_info)
        if attributor is None:
            raise StuckError(
                f"class {value.class_info.name} has no attributor")
        self.stats.snapshots += 1
        traced = self.tracer.enabled
        previous_mode = value.effective_mode
        attr_frame = _Frame(this_obj=value,
                            mode_env=dict(value.mode_env),
                            current_mode=BOTTOM)
        attr_frame.push()
        mode = self._run_attributor_body(attributor, attr_frame,
                                         value.class_info.name)
        if traced:
            self.tracer.emit(AttributorEvent(
                ts=self.tracer.now(), cls=value.class_info.name,
                mode=mode.name, source="interp"))
        if self.options.baseline:
            # Overhead baseline: no tagging bookkeeping, no checks.
            first = value.class_info.params[0]
            if first.var is not None:
                value.mode_env[first.var] = mode
            return value
        lower, upper = self._snapshot_bounds(expr, frame)
        self.stats.bound_checks += 1
        ok = self.lattice.leq(lower, mode) and self.lattice.leq(mode, upper)
        if traced:
            self.tracer.emit(SnapshotEvent(
                ts=self.tracer.now(), cls=value.class_info.name,
                mode=mode.name, lower=lower.name, upper=upper.name, ok=ok,
                lazy=ok and self.options.lazy_copy and not value.is_snapshot,
                source="interp"))
        if self.on_snapshot is not None:
            self.on_snapshot(value, mode, lower, upper, ok)
        if not ok and not self.options.silent:
            self.stats.energy_exceptions += 1
            message = (f"bad check: attributor of "
                       f"{value.class_info.name} returned {mode.name}, "
                       f"outside [{lower.name}, {upper.name}]")
            if traced:
                self.tracer.energy_exception(message, mode=mode,
                                             lower=lower, upper=upper,
                                             source="interp")
            raise EnergyException(message, mode=mode, lower=lower,
                                  upper=upper)
        if traced and mode is not previous_mode:
            self.tracer.mode_transition(
                f"object:{value.class_info.name}", previous_mode, mode)
        if self.options.lazy_copy and not value.is_snapshot:
            self.stats.lazy_tags += 1
            return value.tag_in_place(mode)
        self.stats.copies += 1
        return value.shallow_copy(mode)

    def _snapshot_bounds(self, expr: ast.Snapshot, frame: _Frame):
        bounds = getattr(expr, "resolved_bounds", (BOTTOM, TOP))
        lower = self._resolve_atom(bounds[0], frame)
        upper = self._resolve_atom(bounds[1], frame)
        # An unresolvable bound variable degrades to the loosest bound.
        return (lower if lower is not None else BOTTOM,
                upper if upper is not None else TOP)

    def _eval_mcase(self, expr: ast.MCaseExpr, frame: _Frame) -> MCaseV:
        branches: Dict[Mode, object] = {}
        default = MCaseV._MISSING
        for branch in expr.branches:
            value = self._eval(branch.expr, frame)
            if branch.mode_name is None:
                default = value
            else:
                branches[Mode(branch.mode_name)] = value
        if default is MCaseV._MISSING:
            return MCaseV(branches)
        return MCaseV(branches, default)

    def _eval_mselect(self, expr: ast.MSelect, frame: _Frame) -> object:
        value = self._eval(expr.expr, frame, want_mcase=True)
        if not isinstance(value, MCaseV):
            raise StuckError(f"mselect on non-mcase value {value!r}")
        atom = getattr(expr, "resolved_mode", expr.mode_name)
        mode = self._resolve_atom(atom, frame)
        self.stats.mcase_elims += 1
        if self.tracer.enabled:
            self.tracer.emit(MCaseElimEvent(
                ts=self.tracer.now(), mode=mode_name(mode),
                source="interp"))
        return value.select(mode)

    def _eval_binary(self, expr: ast.Binary, frame: _Frame) -> object:
        op = expr.op
        if op == "&&":
            left = self._eval(expr.left, frame)
            if not self._truth(left):
                return False
            return self._truth(self._eval(expr.right, frame))
        if op == "||":
            left = self._eval(expr.left, frame)
            if self._truth(left):
                return True
            return self._truth(self._eval(expr.right, frame))
        left = self._eval(expr.left, frame)
        right = self._eval(expr.right, frame)
        if op == "==":
            return self.values_equal(left, right)
        if op == "!=":
            return not self.values_equal(left, right)
        if op == "+" and (isinstance(left, str) or isinstance(right, str)):
            return self.render(left) + self.render(right)
        if not self._is_number(left) or not self._is_number(right):
            raise StuckError(
                f"operator {op!r} on non-numeric operands "
                f"{left!r}, {right!r}")
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise EntRuntimeError("division by zero")
            if isinstance(left, int) and isinstance(right, int):
                return int(left / right)  # Java truncating division
            return left / right
        if op == "%":
            if right == 0:
                raise EntRuntimeError("modulo by zero")
            if isinstance(left, int) and isinstance(right, int):
                return left - int(left / right) * right
            return left % right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        raise StuckError(f"unknown operator {op!r}")  # pragma: no cover

    @staticmethod
    def _is_number(value: object) -> bool:
        return isinstance(value, (int, float)) and not isinstance(value,
                                                                  bool)

    def _eval_unary(self, expr: ast.Unary, frame: _Frame) -> object:
        value = self._eval(expr.expr, frame)
        if expr.op == "-":
            if self._is_number(value):
                return -value
            raise StuckError(f"cannot negate {value!r}")
        if expr.op == "!":
            return not self._truth(value)
        raise StuckError(f"unknown unary {expr.op!r}")  # pragma: no cover

    def _eval_instanceof(self, expr: ast.InstanceOf,
                         frame: _Frame) -> bool:
        value = self._eval(expr.expr, frame)
        if value is None:
            return False
        if not isinstance(value, ObjectV):
            return False
        return self.table.is_subclass(value.class_info.name,
                                      expr.class_name)


def run_source(source: str, args: Optional[List[str]] = None,
               platform=None, options: Optional[InterpOptions] = None,
               seed: int = 0, strict_mcase_coverage: bool = True,
               tracer=None):
    """Parse, typecheck and run an ENT program; returns the interpreter
    (inspect ``.output``, ``.stats``, and the returned value)."""
    from repro.lang.typechecker import check_program

    checked = check_program(source,
                            strict_mcase_coverage=strict_mcase_coverage)
    interp = Interpreter(checked, platform=platform, options=options,
                         seed=seed, tracer=tracer)
    result = interp.run(args)
    interp.result = result
    return interp
