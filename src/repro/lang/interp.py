"""Operational semantics for ENT (paper section 4.2).

A tree-walking interpreter over typechecked programs.  The ENT-specific
behaviour:

* **Closures** ``cl(m, e)`` — every frame carries the mode it executes
  under; invoking a method switches to the receiver's mode (or the
  method's overriding/attributed mode).
* **Snapshot** — evaluates the receiver's attributor, performs the
  ``check(m, lo, hi, o)`` bound test (raising the paper's
  ``EnergyException`` on a *bad check*), and produces a shallow copy
  tagged with the resulting mode.  The section-5 lazy-copy optimization
  tags the first snapshot in place and only copies from the second
  snapshot on.
* **dfall** — the dynamic waterfall invariant is asserted on every
  message; for well-typed programs this never fails (Corollary 1), and
  the interpreter exposes an ``on_message`` hook so tests can verify it.
* **Mode cases** — eliminated implicitly against the enclosing object's
  mode, or explicitly via ``mselect``.

Run-time configurations used by the evaluation harness:

* ``silent=True`` — the E1 baseline that "ignores the EnergyException":
  bound checks always pass (tagging remains in place).
* ``baseline=True`` — the Figure-6 overhead baseline: no copy/tag
  bookkeeping and no bound checks; attributors still run so program
  behaviour is preserved.

Hot-path engineering (all behaviour-transparent; see
``docs/PERFORMANCE.md``):

* statement/expression dispatch is a type-keyed table rather than an
  ``isinstance`` ladder;
* variable reads branch on the typechecker's ``resolved_kind``
  annotation instead of re-discovering what a name means on every
  evaluation;
* method/attributor lookup, object-construction environments and the
  dfall guard are memoized behind ``InterpOptions.inline_caches`` — a
  toggle whose only purpose is letting the transparency test suite
  assert that outputs, stats and exceptions are identical either way;
* mode-case elimination threads the owning object's mode through the
  interpreter (``_elim_owner``) instead of stashing it on the shared
  AST node, so concurrent interpreters over one ``CheckedProgram``
  cannot interfere and re-entrant runs stay deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from dataclasses import fields as field_list
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.errors import (BadCastError, EnergyException,
                               EntRuntimeError, FuelExhausted, StuckError)
from repro.core.modes import BOTTOM, TOP, Mode, ModeLattice
from repro.obs.events import (AttributorEvent, DfallCheckEvent,
                              MCaseElimEvent, SnapshotEvent, mode_name)
from repro.obs.prof import NULL_PROFILER, site_id
from repro.obs.tracer import NULL_TRACER, attach_platform
from repro.lang import ast_nodes as ast
from repro.lang import types as ty
from repro.lang.natives import (NATIVE_STATIC_CLASSES, call_list_method,
                                call_native_static, call_string_method)
from repro.lang.typechecker import CheckedProgram
from repro.lang.types import DYN, ClassInfo, MethodInfo, ModeAtom, ObjectType
from repro.lang.values import MCaseV, ObjectV

__all__ = ["Interpreter", "InterpOptions", "InterpStats", "NullPlatform",
            "run_source"]


class NullPlatform:
    """Default platform: a pure accounting stub with full battery.

    Real platforms (:mod:`repro.platform.systems`) implement the same
    interface backed by battery/thermal/CPU models.
    """

    def __init__(self) -> None:
        self.work_units = 0.0
        self.io_total = 0.0
        self.net_total = 0.0
        self.slept = 0.0
        self._clock = 0.0

    def battery_fraction(self) -> float:
        return 1.0

    def cpu_temperature(self) -> float:
        return 45.0

    def cpu_work(self, units: float) -> None:
        self.work_units += units
        self._clock += units * 1e-6

    def io_bytes(self, count: float) -> None:
        self.io_total += count
        self._clock += count * 1e-8

    def net_bytes(self, count: float) -> None:
        self.net_total += count
        self._clock += count * 1e-7

    def sleep(self, seconds: float) -> None:
        self.slept += seconds
        self._clock += seconds

    def now(self) -> float:
        return self._clock


@dataclass
class InterpOptions:
    silent: bool = False
    baseline: bool = False
    lazy_copy: bool = True
    fuel: Optional[int] = None
    check_dfall: bool = True
    #: Closure-compile bodies on first execution (see
    #: :mod:`repro.lang.compiler`); semantics are identical.
    compile: bool = False
    #: Enable the run-time caches (flattened method tables, construction
    #: templates, per-call-site inline caches, the dfall memo).
    #: Semantics are identical with the flag off; it exists so the
    #: transparency tests can compare cached and uncached runs
    #: bit-for-bit.
    inline_caches: bool = True
    #: Honour the ``elide_dfall`` / ``elide_bound`` annotations written
    #: by :mod:`repro.analysis` (the elision planner).  A no-op unless
    #: the planner ran over the AST; ignored under ``silent`` and
    #: ``baseline`` (those builds change check semantics, so the
    #: planner's facts no longer entail the guards).
    elide_checks: bool = True
    #: Execution engine: ``"walk"`` (tree walk), ``"compiled"``
    #: (closure compiler), ``"vm"`` (register bytecode; see
    #: ``docs/VM.md``) or ``"jit"`` (the VM plus the trace-JIT tier;
    #: see ``repro.lang.jit``).  ``None`` defers to the legacy
    #: ``compile`` flag (``True`` -> compiled, ``False`` -> walk).  All
    #: four engines are observably identical up to ``steps``; the
    #: differential suite in ``tests/property/test_vm_agreement.py``
    #: enforces it.
    engine: Optional[str] = None
    #: Check depth: ``"full"`` runs the paper's deep checks;
    #: ``"transient"`` collapses re-snapshot bound checks and dfall
    #: guards to O(1) mode-tag comparisons with blame provenance
    #: (``repro run --checks transient``; see docs/ANALYSIS.md).
    #: Transient agrees with full on programs whose checks pass; on a
    #: failing check it raises the same exception class with the
    #: originating snapshot/cast site appended to the message.
    checks: str = "full"


@dataclass
class InterpStats:
    steps: int = 0
    messages: int = 0
    dfall_checks: int = 0
    #: Dfall checks skipped because the planner proved them safe.
    #: ``dfall_checks`` counts only *executed* checks; the sum of the
    #: two is invariant under elision (the transparency tests rely on
    #: this).
    dfall_elided: int = 0
    snapshots: int = 0
    copies: int = 0
    lazy_tags: int = 0
    bound_checks: int = 0
    #: Snapshot bound checks skipped by the planner (same split as
    #: ``dfall_elided``).
    bound_checks_elided: int = 0
    energy_exceptions: int = 0
    mcase_elims: int = 0
    objects_created: int = 0
    #: Checks executed as O(1) shallow tag comparisons under
    #: ``checks="transient"`` (always 0 in full mode).  Shallow checks
    #: are also counted in ``dfall_checks``/``bound_checks``: a shallow
    #: check is still an executed check, so the profiler's site counters
    #: and the static-vs-observed oracle are mode-independent.
    shallow_checks: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in field_list(self)}

    def reset(self) -> None:
        for f in field_list(self):
            setattr(self, f.name, f.default)


#: Sentinel distinguishing "the body fell off the end" from an explicit
#: ``return`` of any value (including ``None``) — attributor error
#: messages depend on the difference.
_NO_RETURN = object()


class _NativeRef:
    """A reference to a native static class (``Ext``, ``Sys``, ``Math``)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"<native {self.name}>"


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value: object) -> None:
        self.value = value


class _Frame:
    """One activation record.  A ``__slots__`` class (not a dataclass):
    the interpreter creates one per message send.

    The tree walk keeps a scope chain of dicts in ``locals``; the
    compiled engine stores slot-resolved locals in ``slots``.
    """

    __slots__ = ("this_obj", "mode_env", "current_mode", "locals",
                 "slots")

    def __init__(self, this_obj: Optional[ObjectV],
                 mode_env: Dict[str, Optional[Mode]],
                 current_mode: Optional[Mode],
                 locals: Optional[List[Dict[str, object]]] = None,
                 slots: Optional[List[object]] = None) -> None:
        self.this_obj = this_obj
        self.mode_env = mode_env
        self.current_mode = current_mode
        self.locals = [] if locals is None else locals
        self.slots = slots

    def push(self) -> None:
        self.locals.append({})

    def pop(self) -> None:
        self.locals.pop()

    def declare(self, name: str, value: object) -> None:
        self.locals[-1][name] = value

    def lookup(self, name: str):
        for frame in reversed(self.locals):
            if name in frame:
                return True, frame[name]
        return False, None

    def assign(self, name: str, value: object) -> bool:
        for frame in reversed(self.locals):
            if name in frame:
                frame[name] = value
                return True
        return False


def _java_div(a, b):
    if b == 0:
        raise EntRuntimeError("division by zero")
    if isinstance(a, int) and isinstance(b, int):
        return int(a / b)  # Java truncating division
    return a / b


def _java_mod(a, b):
    if b == 0:
        raise EntRuntimeError("modulo by zero")
    if isinstance(a, int) and isinstance(b, int):
        return a - int(a / b) * b
    return a % b


#: Arithmetic/comparison operators on numeric operands; ``/`` and ``%``
#: keep Java semantics (truncation toward zero, explicit zero checks).
_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _java_div,
    "%": _java_mod,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Interpreter:
    """Evaluates a typechecked ENT program."""

    def __init__(self, checked: CheckedProgram,
                 platform=None,
                 options: Optional[InterpOptions] = None,
                 seed: int = 0, tracer=None, profiler=None) -> None:
        self.checked = checked
        self.table = checked.table
        self.lattice: ModeLattice = checked.lattice
        self.platform = platform if platform is not None else NullPlatform()
        self.options = options or InterpOptions()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if self.tracer.enabled:
            attach_platform(self.tracer, self.platform)
        # Set before engine wiring: the VM reads ``profiler.enabled``
        # when deciding its fast-path gates.
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self.stats = InterpStats()
        self.output: List[str] = []
        self.rng = random.Random(seed)
        #: Optional instrumentation: called as
        #: ``on_message(receiver_mode, sender_mode, holds)`` before every
        #: user-object message (Corollary 1 tests).
        self.on_message: Optional[Callable] = None
        #: Called as ``on_snapshot(obj, mode, lower, upper, ok)``.
        self.on_snapshot: Optional[Callable] = None
        # ---- run-time caches (see docs/PERFORMANCE.md) ----------------
        #: Mode constants by name — static lattice data, always on.
        self._mode_by_name: Dict[str, Mode] = {
            m.name: m for m in self.lattice.modes}
        #: class name -> flattened {method name -> MethodInfo}.
        self._method_tables: Dict[str, Dict[str, MethodInfo]] = {}
        #: class name -> nearest AttributorDecl (or None).
        self._attributor_cache: Dict[str, Optional[ast.AttributorDecl]] = {}
        #: (class name, own-env items) -> full mode-env template.
        self._env_templates: Dict[tuple, Dict[str, Optional[Mode]]] = {}
        #: class name -> (field defaults, ((name, init, wants_mcase),…)).
        self._field_templates: Dict[str, tuple] = {}
        #: (receiver mode, sender mode) -> waterfall-invariant verdict.
        self._dfall_cache: Dict[Tuple[Mode, Mode], bool] = {}
        #: id(body block) -> (compiled code, slot count).
        self._body_cache: Dict[int, tuple] = {}
        #: (id(expr), want_mcase) -> compiled field-initializer code.
        self._init_code_cache: Dict[tuple, Callable] = {}
        #: id(MethodInfo) -> per-parameter wants-mcase tuple (static
        #: typed data, like ``_mode_by_name``; always on).
        self._param_wants: Dict[int, tuple] = {}
        #: Strong references backing the three id()-keyed caches above:
        #: a collected node's id can be reused by a different object,
        #: which would alias cache entries.  Every key's object is
        #: pinned on insert (zero cost on the hit path); the VM keeps
        #: the same invariant for its own code caches.
        self._cache_pins: List[object] = []
        #: Effective mode of the object a just-read mcase field belongs
        #: to; consumed by ``_eval`` for implicit elimination.
        self._elim_owner: Optional[Mode] = None
        #: Divergence bound and engine selection, fixed at construction
        #: (one attribute load instead of two on the per-node paths).
        self._fuel = self.options.fuel
        from repro.lang.engines import resolve_engine
        self.engine = engine = resolve_engine(
            self.options.engine, compile_flag=self.options.compile)
        self._compile_on = engine == "compiled"
        # Transient checking (``--checks transient``): deep checks
        # collapse to tag comparisons against a precomputed upward-
        # closure table — O(1) set probes instead of lattice walks.
        # Meaningless under baseline (no checks run at all).  Computed
        # before the VM is constructed: bytecode lowering and the VM's
        # fast-path gates read it.
        self._transient = (self.options.checks == "transient"
                           and not self.options.baseline)
        self._mode_up: Dict[Mode, frozenset] = {}
        if self._transient:
            modes = tuple(self.lattice.modes)
            self._mode_up = {
                m: frozenset(x for x in modes if self.lattice.leq(m, x))
                for m in modes}
        self._vm = None
        if engine == "vm" or engine == "jit":
            from repro.lang.vm import VM, JITVM
            self._vm = JITVM(self) if engine == "jit" else VM(self)
            self._call_body = self._vm.call_body
        elif engine == "compiled":
            self._call_body = self._call_body_compiled
        else:
            self._call_body = self._call_body_walk
        # Planner-driven check elision, fixed at construction.  Off
        # under silent (failed checks are *allowed* there, so snapshot
        # facts are not enforced) and baseline (no checks exist to
        # elide); the dfall variant additionally requires check_dfall.
        opts = self.options
        elide = (opts.elide_checks and not opts.silent
                 and not opts.baseline)
        self._elide_bound_on = elide
        self._elide_dfall_on = elide and opts.check_dfall
        if self.profiler.enabled:
            self._install_profiling()

    def _install_profiling(self) -> None:
        """Shadow the hot dispatch methods with profiled wrappers.

        Instance-attribute shadowing is the zero-cost-when-disabled
        mechanism for the walk and compiled engines: the class methods
        stay untouched, so an unprofiled interpreter pays nothing.  The
        closure compiler captures ``interp._invoke`` (and the walk's
        ``self._eval`` lookups resolve the attribute) lazily, after
        construction, so the wrappers are what every engine binds.
        """
        self._invoke = self._invoke_profiled
        if self.engine == "walk":
            self._eval = self._eval_profiled
            self._eval_leaf = self._eval_leaf_profiled
            self._exec_stmt = self._exec_stmt_profiled

    # ------------------------------------------------------------------
    # Entry point

    def run(self, args: Optional[List[str]] = None) -> object:
        """Boot the program: ``cl(⊤, mbody(main, Main⟨⊤⟩))``."""
        if "Main" not in self.table:
            raise EntRuntimeError("program has no class Main")
        boot_frame = _Frame(this_obj=None, mode_env={}, current_mode=TOP)
        boot_frame.push()
        main_obj = self._construct(self.table.get("Main"), (TOP,), [],
                                   boot_frame, span=None)
        minfo = self._find_method(main_obj.class_info, "main")
        if minfo is None:
            raise EntRuntimeError("class Main has no method main")
        call_args: List[object] = []
        if len(minfo.param_names) == 1:
            call_args = [list(args or [])]
        elif len(minfo.param_names) > 1 or args:
            if len(minfo.param_names) != (1 if args else 0):
                raise EntRuntimeError(
                    "main must take zero parameters or a single List")
        try:
            if self.tracer.enabled:
                self.tracer.mode_transition("closure", None, TOP)
                with self.tracer.span("main", category="program"):
                    return self._invoke(main_obj, minfo, call_args,
                                        boot_frame, self_call=False,
                                        span=None)
            return self._invoke(main_obj, minfo, call_args, boot_frame,
                                self_call=False, span=None)
        finally:
            # Flush the profiler's trailing interval so per-label
            # counts are exact (a no-op when disabled or re-run).
            self.profiler.finish()

    # ------------------------------------------------------------------
    # Bookkeeping

    def _tick(self) -> None:
        self.stats.steps += 1
        fuel = self._fuel
        if fuel is not None and self.stats.steps > fuel:
            raise FuelExhausted(
                f"evaluation exceeded {fuel} steps (divergence bound)")

    def _charge(self, count: int) -> None:
        """Batched fuel accounting for the compiled engine: one check per
        block entry / loop iteration instead of one per AST node."""
        steps = self.stats.steps + count
        self.stats.steps = steps
        fuel = self._fuel
        if fuel is not None and steps > fuel:
            raise FuelExhausted(
                f"evaluation exceeded {fuel} steps (divergence bound)")

    def _resolve_atom(self, atom: ModeAtom,
                      frame: _Frame) -> Optional[Mode]:
        """Resolve a mode atom to a concrete mode (None for ``?``)."""
        if isinstance(atom, Mode):
            return atom
        if atom is DYN:
            return None
        return frame.mode_env.get(atom)

    def render(self, value: object) -> str:
        """Java-flavoured string rendering (used by ``+`` and print)."""
        if value is None:
            return "null"
        if value is True:
            return "true"
        if value is False:
            return "false"
        if isinstance(value, float) and value.is_integer():
            return f"{value:.1f}"
        if isinstance(value, Mode):
            return value.name
        if isinstance(value, list):
            return "[" + ", ".join(self.render(v) for v in value) + "]"
        return str(value)

    def values_equal(self, a: object, b: object) -> bool:
        if isinstance(a, bool) or isinstance(b, bool):
            return a is b
        if isinstance(a, (int, float)) and isinstance(b, (int, float)):
            return a == b
        if isinstance(a, str) and isinstance(b, str):
            return a == b
        if a is None or b is None:
            return a is b
        # Modes are interned; objects and lists compare by identity.
        return a is b

    # ------------------------------------------------------------------
    # Object construction

    def _find_method(self, info: ClassInfo,
                     name: str) -> Optional[MethodInfo]:
        if self.options.inline_caches:
            return self._method_table(info).get(name)
        current: Optional[ClassInfo] = info
        while current is not None:
            if name in current.methods:
                return current.methods[name]
            current = (self.table.get(current.superclass)
                       if current.superclass else None)
        return None

    def _method_table(self, info: ClassInfo) -> Dict[str, MethodInfo]:
        """Flattened method table (inherited methods included), built
        once per class.  Classes are immutable after the typechecker
        registers them, so no invalidation is needed within a run."""
        table = self._method_tables.get(info.name)
        if table is None:
            if info.superclass:
                table = dict(
                    self._method_table(self.table.get(info.superclass)))
            else:
                table = {}
            table.update(info.methods)
            self._method_tables[info.name] = table
        return table

    def _find_attributor(self,
                         info: ClassInfo) -> Optional[ast.AttributorDecl]:
        if self.options.inline_caches:
            try:
                return self._attributor_cache[info.name]
            except KeyError:
                pass
        current: Optional[ClassInfo] = info
        found: Optional[ast.AttributorDecl] = None
        while current is not None:
            if current.decl is not None and current.decl.attributor:
                found = current.decl.attributor
                break
            current = (self.table.get(current.superclass)
                       if current.superclass else None)
        if self.options.inline_caches:
            self._attributor_cache[info.name] = found
        return found

    def _full_mode_env(self, info: ClassInfo,
                       own: Dict[str, Optional[Mode]]
                       ) -> Dict[str, Optional[Mode]]:
        """Extend an instantiation with the resolved parameters of every
        ancestor (so inherited method bodies resolve their variables)."""
        env = dict(own)
        current = info
        while current.superclass is not None:
            super_info = self.table.get(current.superclass)
            if current.super_args:
                atoms = current.super_args
            else:
                # Default: pass our mode through; bound extras at their
                # upper bounds.
                own_atom: ModeAtom = (
                    current.params[0].concrete
                    if current.params[0].concrete is not None
                    else current.params[0].var)
                atoms = (own_atom,) + tuple(
                    p.upper for p in super_info.params[1:])
            for param, atom in zip(super_info.params, atoms):
                if param.var is None:
                    continue
                if isinstance(atom, Mode):
                    env[param.var] = atom
                elif atom is DYN:
                    env[param.var] = None
                else:
                    env[param.var] = env.get(atom)
            current = super_info
        return env

    def _default_value(self, declared: ty.Type) -> object:
        if declared == ty.INT:
            return 0
        if declared == ty.DOUBLE:
            return 0.0
        if declared == ty.BOOLEAN:
            return False
        return None

    def _field_template(self, info: ClassInfo) -> tuple:
        """Per-class field defaults and initializer list, computed once.
        The defaults dict is copied into each new object (its values are
        immutable primitives/None); the initializer tuple is read-only."""
        entry = self._field_templates.get(info.name)
        if entry is None:
            defaults: Dict[str, object] = {}
            inits = []
            for finfo in self.table.all_fields(info.name):
                defaults[finfo.name] = self._default_value(finfo.declared)
                if finfo.decl is not None and finfo.decl.init is not None:
                    inits.append((finfo.name, finfo.decl.init,
                                  isinstance(finfo.declared,
                                             ty.MCaseType)))
            entry = (defaults, tuple(inits))
            self._field_templates[info.name] = entry
        return entry

    def _construct(self, info: ClassInfo, atoms, arg_values: List[object],
                   frame: _Frame, span) -> ObjectV:
        own_env: Dict[str, Optional[Mode]] = {}
        for param, atom in zip(info.params, atoms):
            if param.var is None:
                continue
            own_env[param.var] = (atom if isinstance(atom, Mode)
                                  else self._resolve_atom(atom, frame))
        if self.options.inline_caches:
            key = (info.name, tuple(own_env.items()))
            template = self._env_templates.get(key)
            if template is None:
                template = self._full_mode_env(info, own_env)
                self._env_templates[key] = template
            # Copied per object: snapshot tagging mutates mode_env.
            env = dict(template)
        else:
            env = self._full_mode_env(info, own_env)
        obj = ObjectV(info, env, {})
        self.stats.objects_created += 1
        if self._transient and span is not None and \
                obj.effective_mode is not None:
            # A concrete-mode construction fixes the tag for life: it
            # is the blame provenance for transient check failures on
            # this object (the "cast" arm of the blame map).
            obj.provenance = site_id("new", span)
        # Field defaults and initializers, superclass-first.
        init_frame = _Frame(this_obj=obj, mode_env=env,
                            current_mode=frame.current_mode)
        init_frame.push()
        if self.options.inline_caches:
            defaults, inits = self._field_template(info)
            obj.fields.update(defaults)
            for fname, init_expr, wants in inits:
                obj.fields[fname] = self._execute_expr(
                    init_expr, init_frame, want_mcase=wants)
        else:
            for finfo in self.table.all_fields(info.name):
                obj.fields[finfo.name] = self._default_value(finfo.declared)
            for finfo in self.table.all_fields(info.name):
                if finfo.decl is not None and finfo.decl.init is not None:
                    wants = isinstance(finfo.declared, ty.MCaseType)
                    obj.fields[finfo.name] = self._execute_expr(
                        finfo.decl.init, init_frame, want_mcase=wants)
        # Constructor body.
        ctor = info.decl.constructor if info.decl is not None else None
        if ctor is None:
            if arg_values:
                raise EntRuntimeError(
                    f"class {info.name} has no constructor")
        else:
            if len(arg_values) != len(ctor.params):
                raise StuckError(
                    f"constructor of class {info.name} expects "
                    f"{len(ctor.params)} argument(s), "
                    f"got {len(arg_values)}")
            ctor_frame = _Frame(this_obj=obj, mode_env=env,
                                current_mode=frame.current_mode)
            # Return value (if any) discarded; ``new`` yields the object.
            self._call_body(ctor.body, [p.name for p in ctor.params],
                            ctor_frame, arg_values)
        return obj

    # ------------------------------------------------------------------
    # Messaging

    def _invoke(self, receiver: ObjectV, minfo: MethodInfo,
                args: List[object], frame: _Frame, self_call: bool,
                span, elide_dfall: bool = False) -> object:
        if len(args) != len(minfo.param_names):
            # Before any accounting: the send never happens, so every
            # engine reports identical stats alongside the blame.
            raise StuckError(
                f"method {minfo.owner}.{minfo.name} expects "
                f"{len(minfo.param_names)} argument(s), "
                f"got {len(args)}")
        self.stats.messages += 1
        # The receiver's mode environment is only copied when a method-
        # level binding extends it; bodies never mutate it.
        mode_env = receiver.mode_env
        guard: Optional[Mode]
        closure: Optional[Mode]
        if minfo.mode_param is not None:
            mode_env = dict(receiver.mode_env)
            mp = minfo.mode_param
            if mp.concrete is not None:
                guard = closure = mp.concrete
            elif minfo.has_attributor:
                mode = self._eval_method_attributor(receiver, minfo, args)
                guard = closure = mode
                mode_env[mp.var] = mode
            else:
                assert mp.var is not None
                inferred = self._infer_runtime_mode(minfo, args)
                mode_env[mp.var] = inferred
                guard = inferred
                closure = (inferred if inferred is not None
                           else receiver.effective_mode
                           or frame.current_mode)
        elif receiver.class_info.transparent:
            # Mode-transparent (plain Java) receiver: no waterfall
            # check; the body runs at the caller's mode.
            guard = None
            closure = frame.current_mode
            self_call = True  # suppress the dfall check below
        else:
            guard = receiver.effective_mode
            closure = guard if guard is not None else frame.current_mode
        if elide_dfall and not self_call and self._elide_dfall_on:
            # The planner proved this check always holds (see
            # docs/ANALYSIS.md); skip it but keep the count so the
            # transparency suite can fold executed + elided together.
            self.stats.dfall_elided += 1
            if self.profiler.enabled:
                self.profiler.check_elided("dfall", span)
            if self.tracer.enabled and guard is not None:
                sender_mode = (frame.current_mode
                               if frame.current_mode is not None else TOP)
                self.tracer.emit(DfallCheckEvent(
                    ts=self.tracer.now(), cls=receiver.class_info.name,
                    method=minfo.name, receiver_mode=guard.name,
                    sender_mode=sender_mode.name, holds=True,
                    source="interp", elided=True))
        else:
            self._check_dfall(guard, frame.current_mode, self_call,
                              receiver, minfo, span)
        traced = (self.tracer.enabled
                  and closure is not frame.current_mode)
        if traced:
            self.tracer.mode_transition("closure", frame.current_mode,
                                        closure)
        body_frame = _Frame(receiver, mode_env, closure)
        assert minfo.decl is not None
        try:
            value = self._call_body(minfo.decl.body, minfo.param_names,
                                    body_frame, args,
                                    self._wants_for(minfo))
        finally:
            if traced:
                self.tracer.mode_transition("closure", closure,
                                            frame.current_mode)
        return value if value is not _NO_RETURN else None

    def _invoke_profiled(self, receiver: ObjectV, minfo: MethodInfo,
                         args: List[object], frame: _Frame,
                         self_call: bool, span,
                         elide_dfall: bool = False) -> object:
        """``_invoke`` plus call-site and call-stack accounting;
        installed by :meth:`_install_profiling` (all engines — the
        VM's leaf fast path is disabled while profiling, so every
        object send lands here, as under tracing)."""
        profiler = self.profiler
        name = f"{minfo.owner}.{minfo.name}"
        profiler.call(site_id("call", span), name)
        mode = frame.current_mode
        profiler.push(name, mode)
        try:
            return Interpreter._invoke(self, receiver, minfo, args,
                                       frame, self_call, span,
                                       elide_dfall=elide_dfall)
        finally:
            profiler.pop(mode)

    # ------------------------------------------------------------------
    # Body execution (engine indirection)

    def _call_body_walk(self, block: ast.Block, param_names, frame,
                        args, wants=()) -> object:
        """Tree-walk a body; returns the returned value or
        ``_NO_RETURN`` when the body falls off the end."""
        if len(args) != len(param_names):
            # Backstop (callers blame arity first): never bind a body
            # with silently dropped or missing parameters.
            raise StuckError(
                f"body expects {len(param_names)} argument(s), "
                f"got {len(args)}")
        frame.locals.append(dict(zip(param_names, args)))
        try:
            self._exec_block(block, frame)
        except _ReturnSignal as signal:
            return signal.value
        return _NO_RETURN

    def _call_body_compiled(self, block: ast.Block, param_names, frame,
                            args, wants=()) -> object:
        try:
            self._run_compiled_body(block, param_names, frame, args)
        except _ReturnSignal as signal:
            return signal.value
        return _NO_RETURN

    def _wants_for(self, minfo: MethodInfo) -> tuple:
        """Per-parameter "is mcase-typed" tuple (mcase parameters
        receive their arguments un-eliminated)."""
        wants = self._param_wants.get(id(minfo))
        if wants is None:
            wants = tuple(isinstance(p, ty.MCaseType)
                          for p in minfo.param_types)
            self._param_wants[id(minfo)] = wants
            self._cache_pins.append(minfo)
        return wants

    def _run_compiled_body(self, block: ast.Block, param_names,
                           frame: _Frame, args) -> None:
        """Execute a body through the closure compiler with a
        slot-resolved frame (parameters occupy slots ``0..n-1``)."""
        entry = self._body_cache.get(id(block))
        if entry is None:
            from repro.lang.compiler import compile_body
            entry = compile_body(self, block, param_names)
            self._body_cache[id(block)] = entry
            self._cache_pins.append(block)
        code, n_slots = entry
        nparams = len(param_names)
        if len(args) != nparams:
            raise StuckError(
                f"body expects {nparams} argument(s), got {len(args)}")
        slots = list(args)
        if len(slots) < n_slots:
            slots.extend([None] * (n_slots - len(slots)))
        frame.slots = slots
        code(frame)

    def _check_dfall(self, guard: Optional[Mode],
                     sender: Optional[Mode], self_call: bool,
                     receiver: ObjectV, minfo: MethodInfo, span) -> None:
        """The dynamic waterfall invariant ``dfall(o, m)``."""
        if self.options.baseline or not self.options.check_dfall:
            return
        if self_call:
            # Internal view: an object may always message itself.
            return
        self.stats.dfall_checks += 1
        if self.profiler.enabled:
            self.profiler.check("dfall", span, sender)
        if guard is None:
            if self.options.silent:
                return
            raise StuckError(
                f"messaging un-snapshotted dynamic object "
                f"{receiver!r} (method {minfo.name}); a well-typed "
                f"program cannot reach this state")
        sender_mode = sender if sender is not None else TOP
        if self._transient:
            # Shallow tag comparison: one set probe against the
            # precomputed upward closure, no lattice walk.
            self.stats.shallow_checks += 1
            holds = sender_mode in self._mode_up[guard]
        elif self.options.inline_caches:
            key = (guard, sender_mode)
            holds = self._dfall_cache.get(key)
            if holds is None:
                holds = self.lattice.leq(guard, sender_mode)
                self._dfall_cache[key] = holds
        else:
            holds = self.lattice.leq(guard, sender_mode)
        if self.tracer.enabled:
            self.tracer.emit(DfallCheckEvent(
                ts=self.tracer.now(), cls=receiver.class_info.name,
                method=minfo.name, receiver_mode=guard.name,
                sender_mode=sender_mode.name, holds=holds,
                source="interp"))
        if self.on_message is not None:
            self.on_message(guard, sender_mode, holds)
        if not holds and not self.options.silent:
            self.stats.energy_exceptions += 1
            message = (f"waterfall invariant violated: receiver mode "
                       f"{guard.name} > sender mode {sender_mode.name} "
                       f"(method {minfo.owner}.{minfo.name})")
            if self._transient:
                message += self._blame("dfall", span,
                                       receiver.provenance)
            if self.tracer.enabled:
                self.tracer.energy_exception(message, mode=guard,
                                             upper=sender_mode,
                                             source="interp")
            raise EnergyException(message, mode=guard, upper=sender_mode)

    def _blame(self, kind: str, span,
               provenance: Optional[str]) -> str:
        """Transient-mode failure suffix: the failing check site plus
        the provenance of the snapshot/cast that produced the value.
        Appended to the full-mode message, so full and transient agree
        up to this bracketed suffix."""
        where = site_id(kind, span)
        blame = provenance if provenance is not None else "construction"
        return f" [transient: site {where}; blame {blame}]"

    def _eval_method_attributor(self, receiver: ObjectV,
                                minfo: MethodInfo,
                                args: List[object]) -> Mode:
        assert minfo.decl is not None and minfo.decl.attributor is not None
        attr_frame = _Frame(this_obj=receiver,
                            mode_env=dict(receiver.mode_env),
                            current_mode=BOTTOM)
        return self._run_attributor_body(minfo.decl.attributor, attr_frame,
                                         f"{minfo.owner}.{minfo.name}",
                                         minfo.param_names, args,
                                         self._wants_for(minfo))

    def _run_attributor_body(self, attributor: ast.AttributorDecl,
                             frame: _Frame, what: str,
                             param_names=(), args=(), wants=()) -> Mode:
        value = self._call_body(attributor.body, param_names, frame,
                                args, wants)
        if value is _NO_RETURN:
            raise EntRuntimeError(
                f"attributor of {what} did not return a mode")
        if not isinstance(value, Mode):
            raise EntRuntimeError(
                f"attributor of {what} returned a non-mode value: "
                f"{value!r}")
        return value

    def _infer_runtime_mode(self, minfo: MethodInfo,
                            args: List[object]) -> Optional[Mode]:
        """Runtime counterpart of the checker's generic-method inference:
        read the binding off the argument objects' mode tags."""
        var = minfo.mode_param.var
        for ptype, value in zip(minfo.param_types, args):
            if isinstance(ptype, ObjectType) and isinstance(value, ObjectV):
                declared_info = self.table.get(ptype.class_name)
                for index, atom in enumerate(ptype.mode_args):
                    if atom == var:
                        param = declared_info.params[index]
                        if param.concrete is not None:
                            return param.concrete
                        return value.mode_env.get(param.var)
        return None

    # ------------------------------------------------------------------
    # Statements

    def _execute_expr(self, expr: ast.Expr, frame: _Frame,
                      want_mcase: bool = False) -> object:
        """Field-initializer entry point (compiles lazily per expr)."""
        if self._vm is not None:
            return self._vm.execute_expr(expr, frame,
                                         want_mcase=want_mcase)
        if self._compile_on:
            key = (id(expr), want_mcase)
            code = self._init_code_cache.get(key)
            if code is None:
                from repro.lang.compiler import compile_expr
                code = compile_expr(self, expr, want_mcase=want_mcase)
                self._init_code_cache[key] = code
                self._cache_pins.append(expr)
            return code(frame)
        return self._eval(expr, frame, want_mcase=want_mcase)

    def _exec_block(self, block: ast.Block, frame: _Frame) -> None:
        scopes = frame.locals
        scopes.append({})
        try:
            exec_stmt = self._exec_stmt
            for stmt in block.stmts:
                exec_stmt(stmt, frame)
        finally:
            scopes.pop()

    def _exec_stmt(self, stmt: ast.Stmt, frame: _Frame) -> None:
        stats = self.stats
        stats.steps += 1
        fuel = self._fuel
        if fuel is not None and stats.steps > fuel:
            raise FuelExhausted(
                f"evaluation exceeded {fuel} steps (divergence bound)")
        cls = stmt.__class__
        if cls is ast.ExprStmt:
            self._eval(stmt.expr, frame)
            return
        if cls is ast.Assign:
            self._exec_assign(stmt, frame)
            return
        if cls is ast.Return:
            raise _ReturnSignal(self._eval_leaf(stmt.expr, frame)
                                if stmt.expr is not None else None)
        if cls is ast.Block:
            self._exec_block(stmt, frame)
            return
        try:
            handler = _STMT_DISPATCH[cls]
        except KeyError:  # pragma: no cover
            raise StuckError(
                f"unknown statement {type(stmt).__name__}") from None
        handler(self, stmt, frame)

    def _stmt_block(self, stmt: ast.Block, frame: _Frame) -> None:
        self._exec_block(stmt, frame)

    def _stmt_local(self, stmt: ast.LocalVarDecl, frame: _Frame) -> None:
        wants = isinstance(getattr(stmt, "resolved_type", None),
                           ty.MCaseType)
        value = (self._eval(stmt.init, frame, want_mcase=wants)
                 if stmt.init is not None
                 else self._default_value(
                     getattr(stmt, "resolved_type", ty.NULL)))
        frame.declare(stmt.name, value)

    def _stmt_expr(self, stmt: ast.ExprStmt, frame: _Frame) -> None:
        self._eval(stmt.expr, frame)

    def _stmt_if(self, stmt: ast.If, frame: _Frame) -> None:
        if self._truth(self._eval(stmt.cond, frame)):
            self._exec_stmt(stmt.then, frame)
        elif stmt.otherwise is not None:
            self._exec_stmt(stmt.otherwise, frame)

    def _stmt_while(self, stmt: ast.While, frame: _Frame) -> None:
        stats = self.stats
        fuel = self._fuel
        cond = stmt.cond
        body = stmt.body
        cond_is_binary = cond.__class__ is ast.Binary
        body_is_block = body.__class__ is ast.Block
        while True:
            # One guaranteed fuel tick per iteration for the condition,
            # so even ``while (true) {}`` exhausts deterministically.
            stats.steps += 1
            if fuel is not None and stats.steps > fuel:
                raise FuelExhausted(
                    f"evaluation exceeded {fuel} steps (divergence bound)")
            if cond_is_binary:
                value = self._eval_binary(cond, frame, False)
            else:
                value = self._eval_leaf(cond, frame)
            if value is False:
                break
            if value is not True:
                raise StuckError(f"condition is not a boolean: {value!r}")
            try:
                if body_is_block:
                    stats.steps += 1
                    if fuel is not None and stats.steps > fuel:
                        raise FuelExhausted(
                            f"evaluation exceeded {fuel} steps "
                            f"(divergence bound)")
                    self._exec_block(body, frame)
                else:
                    self._exec_stmt(body, frame)
            except _BreakSignal:
                break
            except _ContinueSignal:
                continue

    def _stmt_return(self, stmt: ast.Return, frame: _Frame) -> None:
        value = (self._eval_leaf(stmt.expr, frame)
                 if stmt.expr is not None else None)
        raise _ReturnSignal(value)

    def _stmt_break(self, stmt: ast.Break, frame: _Frame) -> None:
        raise _BreakSignal()

    def _stmt_continue(self, stmt: ast.Continue, frame: _Frame) -> None:
        raise _ContinueSignal()

    def _stmt_try(self, stmt: ast.TryCatch, frame: _Frame) -> None:
        try:
            self._exec_stmt(stmt.body, frame)
        except EnergyException as exc:
            frame.push()
            try:
                frame.declare(stmt.exc_var, str(exc))
                self._exec_stmt(stmt.handler, frame)
            finally:
                frame.pop()

    def _stmt_throw(self, stmt: ast.Throw, frame: _Frame) -> None:
        message = self._eval(stmt.expr, frame)
        self.stats.energy_exceptions += 1
        if self.tracer.enabled:
            self.tracer.energy_exception(self.render(message),
                                         source="interp")
        raise EnergyException(self.render(message))

    def _truth(self, value: object) -> bool:
        if isinstance(value, bool):
            return value
        raise StuckError(f"condition is not a boolean: {value!r}")

    def _exec_assign(self, stmt: ast.Assign, frame: _Frame) -> None:
        if stmt.wants_mcase:
            value = self._eval(stmt.value, frame, want_mcase=True)
        else:
            node = stmt.value
            value = (self._eval_binary(node, frame, False)
                     if node.__class__ is ast.Binary
                     else self._eval_leaf(node, frame))
        target = stmt.target
        if isinstance(target, ast.Var):
            name = target.name
            # ``resolved_kind`` (from the typechecker) skips the scope
            # walk for field writes; locals shadowing a field resolve as
            # "local", so the direct store is safe.
            if target.resolved_kind == "field":
                this_obj = frame.this_obj
                if this_obj is not None and name in this_obj.fields:
                    this_obj.set_field(name, value)
                    return
            for scope in reversed(frame.locals):
                if name in scope:
                    scope[name] = value
                    return
            this_obj = frame.this_obj
            if this_obj is not None and name in this_obj.fields:
                this_obj.set_field(name, value)
                return
            raise StuckError(f"unknown variable {name!r}")
        assert isinstance(target, ast.FieldAccess)
        obj = self._eval(target.obj, frame)
        if not isinstance(obj, ObjectV):
            raise StuckError(f"cannot assign field of {obj!r}")
        obj.set_field(target.name, value)

    def _exec_foreach(self, stmt: ast.Foreach, frame: _Frame) -> None:
        iterable = self._eval(stmt.iterable, frame)
        if not isinstance(iterable, list):
            raise StuckError("foreach requires a List")
        for element in list(iterable):
            frame.push()
            try:
                frame.declare(stmt.var_name, element)
                self._exec_stmt(stmt.body, frame)
            except _BreakSignal:
                frame.pop()
                break
            except _ContinueSignal:
                frame.pop()
                continue
            else:
                frame.pop()

    # ------------------------------------------------------------------
    # Expressions

    def _eval(self, expr: ast.Expr, frame: _Frame,
              want_mcase: bool = False) -> object:
        stats = self.stats
        stats.steps += 1
        fuel = self._fuel
        if fuel is not None and stats.steps > fuel:
            raise FuelExhausted(
                f"evaluation exceeded {fuel} steps (divergence bound)")
        # The hottest node kinds are tested directly before falling back
        # to the dispatch table; literals can never be mode cases.
        cls = expr.__class__
        if cls is ast.Var:
            value = self._eval_var(expr, frame, want_mcase)
        elif cls is ast.IntLit:
            return expr.value
        elif cls is ast.Binary:
            value = self._eval_binary(expr, frame, want_mcase)
        elif cls is ast.MethodCall:
            value = self._eval_call(expr, frame, want_mcase)
        else:
            try:
                handler = _EVAL_DISPATCH[cls]
            except KeyError:  # pragma: no cover
                raise StuckError(
                    f"unknown expression {type(expr).__name__}") from None
            value = handler(self, expr, frame, want_mcase)
        if value.__class__ is MCaseV:
            owner = self._elim_owner
            if owner is not None:
                self._elim_owner = None
            if not want_mcase:
                return self._elim_with_mode(
                    value,
                    owner if owner is not None else frame.current_mode)
        return value

    def _eval_leaf(self, expr: ast.Expr, frame: _Frame) -> object:
        """Operand fast path: literals and resolved variable reads skip
        the per-node bookkeeping of :meth:`_eval` — the enclosing node
        already paid a fuel tick, so leaf operands ride for free.
        Anything more complex falls back to the full evaluator."""
        cls = expr.__class__
        if cls is ast.IntLit:
            return expr.value
        if cls is ast.Binary:
            # Binary never evaluates to an mcase (operands eliminate).
            return self._eval_binary(expr, frame, False)
        if cls is ast.Var:
            name = expr.name
            kind = expr.resolved_kind
            if kind == "local":
                for scope in reversed(frame.locals):
                    if name in scope:
                        return scope[name]
            elif kind == "field":
                this_obj = frame.this_obj
                if this_obj is not None:
                    fields = this_obj.fields
                    if name in fields:
                        value = fields[name]
                        if value.__class__ is MCaseV:
                            owner = this_obj.effective_mode
                            return self._elim_with_mode(
                                value,
                                owner if owner is not None
                                else frame.current_mode)
                        return value
            value = self._eval_var(expr, frame, False)
            if value.__class__ is MCaseV:
                owner = self._elim_owner
                if owner is not None:
                    self._elim_owner = None
                return self._elim_with_mode(
                    value,
                    owner if owner is not None else frame.current_mode)
            return value
        return self._eval(expr, frame)

    # ------------------------------------------------------------------
    # Profiled walk dispatch (installed by ``_install_profiling``; the
    # class methods above stay untouched so unprofiled runs pay nothing)

    def _eval_profiled(self, expr: ast.Expr, frame: _Frame,
                       want_mcase: bool = False) -> object:
        self.profiler.bump("node." + expr.__class__.__name__,
                           frame.current_mode)
        return Interpreter._eval(self, expr, frame, want_mcase)

    def _eval_leaf_profiled(self, expr: ast.Expr,
                            frame: _Frame) -> object:
        cls = expr.__class__
        if cls is ast.IntLit or cls is ast.Binary or cls is ast.Var:
            self.profiler.bump("node." + cls.__name__,
                               frame.current_mode)
            return Interpreter._eval_leaf(self, expr, frame)
        # Non-leaf operands take the full (already shadowed) evaluator,
        # which bumps exactly once.
        return self._eval(expr, frame)

    def _exec_stmt_profiled(self, stmt: ast.Stmt,
                            frame: _Frame) -> None:
        self.profiler.bump("stmt." + stmt.__class__.__name__,
                           frame.current_mode)
        return Interpreter._exec_stmt(self, stmt, frame)

    def _elim_with_mode(self, mcase: MCaseV,
                        mode: Optional[Mode]) -> object:
        """Implicit mode-case elimination at ``mode`` (the mode of the
        object owning the field the value was read from, else the
        current closure mode)."""
        self.stats.mcase_elims += 1
        if self.tracer.enabled:
            self.tracer.emit(MCaseElimEvent(
                ts=self.tracer.now(), mode=mode_name(mode),
                source="interp"))
        return mcase.select(mode)

    def _eval_literal(self, expr, frame: _Frame, want_mcase) -> object:
        return expr.value

    def _eval_null(self, expr, frame: _Frame, want_mcase) -> object:
        return None

    def _eval_this(self, expr, frame: _Frame, want_mcase) -> object:
        return frame.this_obj

    def _eval_var(self, expr: ast.Var, frame: _Frame,
                  want_mcase) -> object:
        name = expr.name
        kind = expr.resolved_kind
        if kind == "local":
            for scope in reversed(frame.locals):
                if name in scope:
                    return scope[name]
        elif kind == "field":
            this_obj = frame.this_obj
            if this_obj is not None:
                fields = this_obj.fields
                if name in fields:
                    value = fields[name]
                    if value.__class__ is MCaseV:
                        self._elim_owner = this_obj.effective_mode
                    return value
        elif kind == "mode":
            mode = self._mode_by_name.get(name)
            if mode is not None:
                return mode
        elif kind == "native":
            return _NativeRef(name)
        return self._eval_var_generic(name, frame)

    def _eval_var_generic(self, name: str, frame: _Frame) -> object:
        """Dynamic resolution order: locals, this-fields, mode constants,
        native classes.  Fallback for un-annotated ASTs."""
        found, value = frame.lookup(name)
        if found:
            return value
        this_obj = frame.this_obj
        if this_obj is not None and name in this_obj.fields:
            value = this_obj.fields[name]
            if isinstance(value, MCaseV):
                self._elim_owner = this_obj.effective_mode
            return value
        mode = self._mode_by_name.get(name)
        if mode is not None:
            return mode
        if name in NATIVE_STATIC_CLASSES:
            return _NativeRef(name)
        raise StuckError(f"unknown variable {name!r}")

    def _is_mode_name(self, name: str) -> bool:
        return name in self._mode_by_name

    def _eval_field_access(self, expr: ast.FieldAccess,
                           frame: _Frame, want_mcase) -> object:
        obj = self._eval(expr.obj, frame)
        if isinstance(obj, ObjectV):
            value = obj.get_field(expr.name)
            if isinstance(value, MCaseV):
                # Elimination projects on the mode of the object that
                # *encloses* the field.
                self._elim_owner = obj.effective_mode
            return value
        raise StuckError(f"cannot access field {expr.name!r} of {obj!r}")

    def _eval_call(self, expr: ast.MethodCall, frame: _Frame,
                   want_mcase) -> object:
        if expr.receiver is None:
            receiver: object = frame.this_obj
            self_call = True
        else:
            receiver = self._eval_leaf(expr.receiver, frame)
            self_call = (expr.receiver.__class__ is ast.This
                         or receiver is frame.this_obj)
        if receiver.__class__ is ObjectV:
            minfo = self._find_method(receiver.class_info, expr.name)
            if minfo is None:
                raise StuckError(
                    f"no method {expr.name!r} on class "
                    f"{receiver.class_info.name}")
            wants = self._wants_for(minfo)
            nwants = len(wants)
            args = []
            append = args.append
            # Every argument evaluates — including over-application
            # extras beyond the parameter list (eliminated, like any
            # non-mcase-wanting position) — so the arity blame in
            # ``_invoke`` lands on identical stats across engines.
            for i, arg_expr in enumerate(expr.args):
                if arg_expr.__class__ is ast.Binary:
                    append(self._eval_binary(arg_expr, frame, False))
                elif i < nwants and wants[i]:
                    append(self._eval(arg_expr, frame, True))
                else:
                    append(self._eval_leaf(arg_expr, frame))
            return self._invoke(receiver, minfo, args, frame,
                                self_call=self_call, span=expr.span,
                                elide_dfall=expr.elide_dfall)
        args = [self._eval(a, frame) for a in expr.args]
        if isinstance(receiver, _NativeRef):
            return call_native_static(self, receiver.name, expr.name, args)
        if isinstance(receiver, str):
            return call_string_method(self, receiver, expr.name, args)
        if isinstance(receiver, list):
            return call_list_method(self, receiver, expr.name, args)
        if receiver is None:
            raise StuckError(
                f"null receiver for method {expr.name!r}")
        raise StuckError(f"cannot invoke {expr.name!r} on {receiver!r}")

    def _eval_new(self, expr: ast.New, frame: _Frame,
                  want_mcase) -> object:
        resolved = getattr(expr, "resolved_type", None)
        if resolved == ty.LIST:
            return []
        if resolved is None:
            raise StuckError(
                "new-expression was not typechecked (missing resolution)")
        assert isinstance(resolved, ObjectType)
        info = self.table.get(resolved.class_name)
        arg_values = [self._eval(a, frame) for a in expr.args]
        return self._construct(info, resolved.mode_args, arg_values, frame,
                               expr.span)

    def _eval_cast(self, expr: ast.Cast, frame: _Frame,
                   want_mcase) -> object:
        value = self._eval(expr.expr, frame)
        target = getattr(expr, "resolved_target", None)
        if target is None:
            raise StuckError("cast was not typechecked")
        return self._cast_value(value, target, frame)

    def _cast_value(self, value: object, target: ty.Type,
                    frame: _Frame) -> object:
        """Cast an already-evaluated value (shared with the compiler)."""
        if target == ty.INT:
            if isinstance(value, (int, float)) and not isinstance(value,
                                                                  bool):
                return int(value)
            raise BadCastError(f"cannot cast {value!r} to int")
        if target == ty.DOUBLE:
            if isinstance(value, (int, float)) and not isinstance(value,
                                                                  bool):
                return float(value)
            raise BadCastError(f"cannot cast {value!r} to double")
        if target == ty.BOOLEAN:
            if isinstance(value, bool):
                return value
            raise BadCastError(f"cannot cast {value!r} to boolean")
        if target == ty.STRING:
            if value is None or isinstance(value, str):
                return value
            raise BadCastError(f"cannot cast {value!r} to String")
        if target == ty.LIST:
            if value is None or isinstance(value, list):
                return value
            raise BadCastError(f"cannot cast {value!r} to List")
        if isinstance(target, ObjectType):
            return self._cast_object(value, target, frame)
        raise BadCastError(f"unsupported cast target {target}")

    def _cast_object(self, value: object, target: ObjectType,
                     frame: _Frame) -> object:
        if value is None:
            return None
        if not isinstance(value, ObjectV):
            raise BadCastError(
                f"cannot cast {value!r} to {target}")
        if not self.table.is_subclass(value.class_info.name,
                                      target.class_name):
            raise BadCastError(
                f"bad cast: {value.class_info.name} is not a subclass of "
                f"{target.class_name}")
        target_mode = self._resolve_atom(target.omode, frame)
        if target.omode is DYN:
            return value
        if target_mode is None:
            # Unresolvable variable at run time: class check only.
            return value
        actual = value.effective_mode
        if actual is None or actual != target_mode:
            raise BadCastError(
                f"bad cast: object mode "
                f"{actual.name if actual else '?'} does not match "
                f"{target_mode.name}")
        return value

    def _eval_snapshot(self, expr: ast.Snapshot, frame: _Frame,
                       want_mcase) -> object:
        value = self._eval(expr.expr, frame)
        bounds = getattr(expr, "resolved_bounds", (BOTTOM, TOP))
        return self._snapshot_value(value, bounds, frame,
                                    elide_bound=expr.elide_bound,
                                    span=expr.span)

    def _snapshot_value(self, value: object, bounds,
                        frame: _Frame, elide_bound: bool = False,
                        span=None) -> object:
        """Snapshot an already-evaluated value against ``(lo, hi)`` bound
        atoms (shared with the compiler)."""
        if not isinstance(value, ObjectV):
            raise StuckError(f"cannot snapshot {value!r}")
        if self._transient and value.is_snapshot:
            # Transient re-snapshot: the tag was established by an
            # earlier (deep) snapshot and can never change again, so
            # the attributor re-run and the copy collapse to an O(1)
            # tag-vs-bounds comparison; the object passes through.
            return self._snapshot_shallow(value, bounds, frame,
                                          elide_bound, span)
        attributor = self._find_attributor(value.class_info)
        if attributor is None:
            raise StuckError(
                f"class {value.class_info.name} has no attributor")
        self.stats.snapshots += 1
        traced = self.tracer.enabled
        previous_mode = value.effective_mode
        attr_frame = _Frame(this_obj=value,
                            mode_env=dict(value.mode_env),
                            current_mode=BOTTOM)
        mode = self._run_attributor_body(attributor, attr_frame,
                                         value.class_info.name)
        if traced:
            self.tracer.emit(AttributorEvent(
                ts=self.tracer.now(), cls=value.class_info.name,
                mode=mode.name, source="interp"))
        if self.options.baseline:
            # Overhead baseline: no tagging bookkeeping, no checks.
            first = value.class_info.params[0]
            if first.var is not None:
                value.mode_env[first.var] = mode
            return value
        elided = elide_bound and self._elide_bound_on
        if elided:
            # The planner proved the bound check vacuous or entailed by
            # the attributor's possible modes (see docs/ANALYSIS.md);
            # the bounds are then always concrete, so resolution is only
            # needed when something observes them.
            self.stats.bound_checks_elided += 1
            if self.profiler.enabled:
                self.profiler.check_elided("snapshot_bound", span)
            ok = True
            if traced or self.on_snapshot is not None:
                lower = self._resolve_atom(bounds[0], frame)
                upper = self._resolve_atom(bounds[1], frame)
                lower = lower if lower is not None else BOTTOM
                upper = upper if upper is not None else TOP
            else:
                lower, upper = BOTTOM, TOP
        else:
            lower = self._resolve_atom(bounds[0], frame)
            upper = self._resolve_atom(bounds[1], frame)
            # An unresolvable bound variable degrades to the loosest
            # bound.
            lower = lower if lower is not None else BOTTOM
            upper = upper if upper is not None else TOP
            self.stats.bound_checks += 1
            if self.profiler.enabled:
                self.profiler.check("snapshot_bound", span,
                                    frame.current_mode)
            ok = (self.lattice.leq(lower, mode)
                  and self.lattice.leq(mode, upper))
        if traced:
            self.tracer.emit(SnapshotEvent(
                ts=self.tracer.now(), cls=value.class_info.name,
                mode=mode.name, lower=lower.name, upper=upper.name, ok=ok,
                lazy=ok and self.options.lazy_copy and not value.is_snapshot,
                source="interp", bound_elided=elided))
        if self.on_snapshot is not None:
            self.on_snapshot(value, mode, lower, upper, ok)
        if not ok and not self.options.silent:
            self.stats.energy_exceptions += 1
            message = (f"bad check: attributor of "
                       f"{value.class_info.name} returned {mode.name}, "
                       f"outside [{lower.name}, {upper.name}]")
            if self._transient:
                # The deep (first-snapshot) check also names its site
                # in transient mode; the failing site is its own blame.
                message += self._blame("snapshot_bound", span,
                                       value.provenance)
            if traced:
                self.tracer.energy_exception(message, mode=mode,
                                             lower=lower, upper=upper,
                                             source="interp")
            raise EnergyException(message, mode=mode, lower=lower,
                                  upper=upper)
        if traced and mode is not previous_mode:
            self.tracer.mode_transition(
                f"object:{value.class_info.name}", previous_mode, mode)
        if self.options.lazy_copy and not value.is_snapshot:
            self.stats.lazy_tags += 1
            if span is not None:
                value.provenance = site_id("snapshot_bound", span)
            return value.tag_in_place(mode)
        self.stats.copies += 1
        copy = value.shallow_copy(mode)
        if span is not None:
            copy.provenance = site_id("snapshot_bound", span)
        return copy

    def _snapshot_shallow(self, value: ObjectV, bounds, frame: _Frame,
                          elide_bound: bool, span) -> object:
        """The transient re-snapshot check (``--checks transient``): an
        O(1) comparison of the established mode tag against the bounds
        via the precomputed upward-closure table.  No attributor run,
        no copy — monotonic type change is preserved because the tag
        was fixed by the first (deep) snapshot."""
        self.stats.snapshots += 1
        mode = value.effective_mode
        if elide_bound and self._elide_bound_on:
            self.stats.bound_checks_elided += 1
            if self.profiler.enabled:
                self.profiler.check_elided("snapshot_bound", span)
            return value
        lower = self._resolve_atom(bounds[0], frame)
        upper = self._resolve_atom(bounds[1], frame)
        lower = lower if lower is not None else BOTTOM
        upper = upper if upper is not None else TOP
        self.stats.bound_checks += 1
        self.stats.shallow_checks += 1
        if self.profiler.enabled:
            self.profiler.check("snapshot_bound", span,
                                frame.current_mode)
        up = self._mode_up
        ok = mode in up[lower] and upper in up[mode]
        if self.tracer.enabled:
            self.tracer.emit(SnapshotEvent(
                ts=self.tracer.now(), cls=value.class_info.name,
                mode=mode.name, lower=lower.name, upper=upper.name,
                ok=ok, lazy=False, source="interp"))
        if self.on_snapshot is not None:
            self.on_snapshot(value, mode, lower, upper, ok)
        if not ok and not self.options.silent:
            self.stats.energy_exceptions += 1
            message = (f"bad check: attributor of "
                       f"{value.class_info.name} returned {mode.name}, "
                       f"outside [{lower.name}, {upper.name}]")
            message += self._blame("snapshot_bound", span,
                                   value.provenance)
            if self.tracer.enabled:
                self.tracer.energy_exception(message, mode=mode,
                                             lower=lower, upper=upper,
                                             source="interp")
            raise EnergyException(message, mode=mode, lower=lower,
                                  upper=upper)
        return value

    def _eval_mcase(self, expr: ast.MCaseExpr, frame: _Frame,
                    want_mcase) -> MCaseV:
        branches: Dict[Mode, object] = {}
        default = MCaseV._MISSING
        for branch in expr.branches:
            value = self._eval(branch.expr, frame)
            if branch.mode_name is None:
                default = value
            else:
                branches[Mode(branch.mode_name)] = value
        if default is MCaseV._MISSING:
            return MCaseV(branches)
        return MCaseV(branches, default)

    def _eval_mselect(self, expr: ast.MSelect, frame: _Frame,
                      want_mcase) -> object:
        value = self._eval(expr.expr, frame, want_mcase=True)
        atom = getattr(expr, "resolved_mode", expr.mode_name)
        return self._mselect_value(value, atom, frame)

    def _mselect_value(self, value: object, atom,
                       frame: _Frame) -> object:
        """Explicit elimination of an already-evaluated mode case at a
        bound atom (shared with the compiler)."""
        if not isinstance(value, MCaseV):
            raise StuckError(f"mselect on non-mcase value {value!r}")
        mode = self._resolve_atom(atom, frame)
        self.stats.mcase_elims += 1
        if self.tracer.enabled:
            self.tracer.emit(MCaseElimEvent(
                ts=self.tracer.now(), mode=mode_name(mode),
                source="interp"))
        return value.select(mode)

    def _eval_binary(self, expr: ast.Binary, frame: _Frame,
                     want_mcase) -> object:
        op = expr.op
        # Arithmetic/comparison dominates, so probe the operator table
        # first; the numeric type checks exclude bool, and everything
        # else goes through the shared checked helper.
        func = _ARITH.get(op)
        if func is not None:
            node = expr.left
            left = (node.value if node.__class__ is ast.IntLit
                    else self._eval_leaf(node, frame))
            node = expr.right
            right = (node.value if node.__class__ is ast.IntLit
                     else self._eval_leaf(node, frame))
            t = type(left)
            if t is int or t is float:
                t = type(right)
                if t is int or t is float:
                    return func(left, right)
            return self._binary_op(op, left, right)
        if op == "&&":
            left = self._eval_leaf(expr.left, frame)
            if not self._truth(left):
                return False
            return self._truth(self._eval_leaf(expr.right, frame))
        if op == "||":
            left = self._eval_leaf(expr.left, frame)
            if self._truth(left):
                return True
            return self._truth(self._eval_leaf(expr.right, frame))
        left = self._eval_leaf(expr.left, frame)
        right = self._eval_leaf(expr.right, frame)
        return self._binary_op(op, left, right)

    def _binary_op(self, op: str, left: object, right: object) -> object:
        """Apply a non-short-circuit binary operator to evaluated
        operands (shared with the compiler's slow path)."""
        # Numbers first: the exact type checks exclude bool (a subclass
        # of int), and ``==``/``!=`` are absent from the table so they
        # fall through to values_equal below.
        t = type(left)
        if t is int or t is float:
            t = type(right)
            if t is int or t is float:
                func = _ARITH.get(op)
                if func is not None:
                    return func(left, right)
        if op == "==":
            return self.values_equal(left, right)
        if op == "!=":
            return not self.values_equal(left, right)
        if op == "+" and (isinstance(left, str) or isinstance(right, str)):
            return self.render(left) + self.render(right)
        if not self._is_number(left) or not self._is_number(right):
            raise StuckError(
                f"operator {op!r} on non-numeric operands "
                f"{left!r}, {right!r}")
        func = _ARITH.get(op)
        if func is None:  # pragma: no cover
            raise StuckError(f"unknown operator {op!r}")
        return func(left, right)

    @staticmethod
    def _is_number(value: object) -> bool:
        return isinstance(value, (int, float)) and not isinstance(value,
                                                                  bool)

    def _eval_unary(self, expr: ast.Unary, frame: _Frame,
                    want_mcase) -> object:
        value = self._eval(expr.expr, frame)
        if expr.op == "-":
            if self._is_number(value):
                return -value
            raise StuckError(f"cannot negate {value!r}")
        if expr.op == "!":
            return not self._truth(value)
        raise StuckError(f"unknown unary {expr.op!r}")  # pragma: no cover

    def _eval_listlit(self, expr: ast.ListLit, frame: _Frame,
                      want_mcase) -> object:
        return [self._eval(e, frame) for e in expr.elements]

    def _eval_instanceof(self, expr: ast.InstanceOf,
                         frame: _Frame, want_mcase) -> bool:
        value = self._eval(expr.expr, frame)
        if value is None:
            return False
        if not isinstance(value, ObjectV):
            return False
        return self.table.is_subclass(value.class_info.name,
                                      expr.class_name)


#: Type-keyed dispatch: one dict probe per node instead of an
#: ``isinstance`` ladder.  Keyed by exact class (AST nodes are final).
_EVAL_DISPATCH = {
    ast.IntLit: Interpreter._eval_literal,
    ast.FloatLit: Interpreter._eval_literal,
    ast.StringLit: Interpreter._eval_literal,
    ast.BoolLit: Interpreter._eval_literal,
    ast.NullLit: Interpreter._eval_null,
    ast.This: Interpreter._eval_this,
    ast.Var: Interpreter._eval_var,
    ast.FieldAccess: Interpreter._eval_field_access,
    ast.MethodCall: Interpreter._eval_call,
    ast.New: Interpreter._eval_new,
    ast.Cast: Interpreter._eval_cast,
    ast.Snapshot: Interpreter._eval_snapshot,
    ast.MCaseExpr: Interpreter._eval_mcase,
    ast.MSelect: Interpreter._eval_mselect,
    ast.Binary: Interpreter._eval_binary,
    ast.Unary: Interpreter._eval_unary,
    ast.ListLit: Interpreter._eval_listlit,
    ast.InstanceOf: Interpreter._eval_instanceof,
}

_STMT_DISPATCH = {
    ast.Block: Interpreter._stmt_block,
    ast.LocalVarDecl: Interpreter._stmt_local,
    ast.Assign: Interpreter._exec_assign,
    ast.ExprStmt: Interpreter._stmt_expr,
    ast.If: Interpreter._stmt_if,
    ast.While: Interpreter._stmt_while,
    ast.Foreach: Interpreter._exec_foreach,
    ast.Return: Interpreter._stmt_return,
    ast.Break: Interpreter._stmt_break,
    ast.Continue: Interpreter._stmt_continue,
    ast.TryCatch: Interpreter._stmt_try,
    ast.Throw: Interpreter._stmt_throw,
}


def run_source(source: str, args: Optional[List[str]] = None,
               platform=None, options: Optional[InterpOptions] = None,
               seed: int = 0, strict_mcase_coverage: bool = True,
               tracer=None, elide: bool = False, profiler=None):
    """Parse, typecheck and run an ENT program; returns the interpreter
    (inspect ``.output``, ``.stats``, and the returned value).

    ``elide=True`` additionally runs the :mod:`repro.analysis` elision
    planner over the checked program, so proven-safe dynamic checks are
    skipped (subject to ``options.elide_checks``)."""
    from repro.lang.typechecker import check_program

    checked = check_program(source,
                            strict_mcase_coverage=strict_mcase_coverage)
    if elide:
        from repro.analysis import plan_elisions
        plan_elisions(checked)
    interp = Interpreter(checked, platform=platform, options=options,
                         seed=seed, tracer=tracer, profiler=profiler)
    result = interp.run(args)
    interp.result = result
    return interp
