"""The trace-JIT: ENT's fourth execution engine (``--engine jit``).

The register VM (:mod:`repro.lang.vm`) dispatches one opcode at a time.
This module removes that last layer of interpretation on hot paths: when
a body or loop crosses a hotness threshold (counted per call site in the
VM's dispatch loop, and per loop head at the ``FUEL`` charge point), the
register bytecode is translated to *specialized Python source*, compiled
with :func:`compile`/``exec``, and installed on the :class:`VMCode` as a
``jit`` entry point.  Three kinds of information are baked into the
emitted code:

* **Receiver-class guards** from the call site's inline cache: a
  monomorphic site emits a direct ``class_info is C`` identity test and,
  on success, enters the callee's register frame with no method lookup,
  no argument-descriptor interpretation and no dispatch loop.
* **Check elision** exactly where the PR 4 planner proved it safe: a
  ``CALL_NODFALL`` site emits a bare ``dfall_elided`` counter bump (the
  engine-invariant accounting), a ``CALL_DFALL`` site emits the inlined
  waterfall-memo probe with the full :meth:`Interpreter._check_dfall`
  fallback, and ``SNAPSHOT``/``SNAPSHOT_ELIDE`` keep their helper calls.
* **Deopt guards**: when a specialization assumption breaks (the
  receiver's class changed under a hot site), the emitted code falls
  back to :meth:`VM._site_send` — the generic send with the dispatch
  loop's exact semantics — so results, stats, check counts and blame
  messages stay bit-identical to the VM.  Repeated deopts invalidate
  the compiled body; one recompile is allowed (the inline cache has
  grown by then, so the offending site re-emits as a generic send),
  after which the body is blacklisted to the VM.

Tiering is deliberately simple (two tiers, counter driven):

* method entry — the VM's leaf-call fast path counts per-site heat
  (``CallSite.heat``); crossing ``HOT_CALL_THRESHOLD`` compiles the
  callee, and subsequent sends enter ``code.jit`` directly;
* on-stack replacement — every ``FUEL`` charge (one per loop
  iteration) counts ``VMCode.heat``; crossing ``HOT_LOOP_THRESHOLD``
  transfers the live register file into the compiled body mid-loop
  (the emitted function's ``_pc >= 0`` entry reloads every slot).

The JIT turns itself off whenever the VM's leaf fast path is off
(tracing or profiling attached): those runs need every send to flow
through ``_invoke`` so events and call-site profiles are emitted, which
is also why ``repro profile --engine jit`` satisfies the
static-vs-observed oracle by construction.

Step accounting is charged at the same three points as the VM (one per
activation, one per ``FUEL``, one per ``FOREACH_ITER`` element), so even
``steps`` — engine-defined and excluded from the differential suite —
matches the VM exactly, and the divergence bound holds unchanged.
"""

from __future__ import annotations

from repro.core.errors import StuckError
from repro.core.modes import TOP, Mode
from repro.lang.bytecode import (
    OP_ADD, OP_BREAK_NOLOOP, OP_CALL_DFALL, OP_CALL_NATIVE,
    OP_CALL_NODFALL, OP_CALL_SHALLOW, OP_CAST, OP_CAST_ERR,
    OP_CONT_NOLOOP, OP_DIV,
    OP_EQ, OP_FALLOFF, OP_FIELD_ADD, OP_FOREACH_INIT, OP_FOREACH_ITER,
    OP_FUEL, OP_GE, OP_GETF, OP_GETF_ARG, OP_GETF_RAW, OP_GETF_THIS,
    OP_GETF_THIS_ARG, OP_GETF_THIS_RAW, OP_GT, OP_INC, OP_INSTANCEOF,
    OP_JF, OP_JF_EQ, OP_JF_GE, OP_JF_GT, OP_JF_LE, OP_JF_LT, OP_JF_NE,
    OP_JT, OP_JUMP, OP_LE, OP_LIST_BUILD, OP_LOAD_NATIVE, OP_LOAD_THIS,
    OP_LT, OP_MCASE_BUILD, OP_MCASE_DISPATCH, OP_MOD, OP_MOVE,
    OP_MSELECT, OP_MUL, OP_NE, OP_NEG, OP_NEW, OP_NEW_LIST, OP_NOT,
    OP_POP_HANDLER, OP_PUSH_HANDLER, OP_RETURN, OP_RETURN_NONE,
    OP_RET_FIELD, OP_SETF, OP_SETF_THIS, OP_SNAPSHOT, OP_SNAPSHOT_ELIDE,
    OP_SNAPSHOT_SHALLOW, OP_SUB, OP_THROW, OP_VAR_DYN, OP_VAR_DYN_ARG,
    OP_VAR_DYN_RAW, _JUMP_OPS)
from repro.lang.natives import NATIVE_STATIC_CLASSES
from repro.lang.values import MCaseV

__all__ = ["JITUnsupported", "compile_body", "jit_source",
           "HOT_CALL_THRESHOLD", "HOT_LOOP_THRESHOLD", "DEOPT_LIMIT",
           "MAX_VERSIONS"]

#: Leaf sends through one call site before the callee body is compiled.
HOT_CALL_THRESHOLD = 16
#: Loop-head ``FUEL`` charges before a body is compiled for OSR entry.
HOT_LOOP_THRESHOLD = 36
#: Guard failures on one compiled body before it is invalidated.
DEOPT_LIMIT = 8
#: Compiled versions per body (initial + recompiles) before the body is
#: blacklisted back to the VM for good.
MAX_VERSIONS = 3


class JITUnsupported(Exception):
    """Raised (and caught by ``_jit_compile``) when a body contains an
    instruction the emitter refuses to translate; the body is then
    blacklisted and keeps running on the VM."""


#: Negated comparison for the fused jump-if-false fast paths.
_JF_NEGATED = {OP_JF_LT: (">=", "<"), OP_JF_LE: (">", "<="),
               OP_JF_GT: ("<=", ">"), OP_JF_GE: ("<", ">=")}

_ARITH = {OP_ADD: ("+", None), OP_SUB: ("-", None), OP_MUL: ("*", None),
          OP_DIV: ("/", "_java_div"), OP_MOD: ("%", "_java_mod")}

_CMP = {OP_LT: "<", OP_LE: "<=", OP_GT: ">", OP_GE: ">="}

_TERMINATORS = frozenset((OP_RETURN, OP_RETURN_NONE, OP_FALLOFF,
                          OP_RET_FIELD, OP_THROW, OP_CAST_ERR,
                          OP_BREAK_NOLOOP, OP_CONT_NOLOOP))

_SCALARS = (int, float, str, bool, type(None))


class _Emitter:
    """One body's translation state: the line buffer, the exec-globals
    namespace, and an identity memo for objects bound into it."""

    def __init__(self, vm, code) -> None:
        self.vm = vm
        self.interp = vm.interp
        self.code = code
        self.lines = []
        self.globals = {}
        self._bound = {}

    # -- small helpers --------------------------------------------------

    def w(self, depth: int, text: str) -> None:
        self.lines.append("    " * depth + text)

    def bind(self, obj, name=None) -> str:
        """Bind ``obj`` into the function's globals; returns its name."""
        key = id(obj)
        bound = self._bound.get(key)
        if bound is None:
            bound = name or f"_g{len(self._bound)}"
            self._bound[key] = bound
            self.globals[bound] = obj
        return bound

    def lit(self, value) -> str:
        """A Python expression for a constant value: scalars inline as
        literals (``repr`` round-trips them), everything else (modes,
        spans, metadata tuples) binds as a global."""
        if isinstance(value, _SCALARS):
            return repr(value)
        return self.bind(value)

    def reg(self, r: int) -> str:
        """Register operand -> expression.  Non-negative operands are
        frame slots (Python locals); negative operands index the
        constant pool from the back (``regs[-k] == consts[k - 1]``)."""
        if r >= 0:
            return f"r{r}"
        return self.lit(self.code.consts[-r - 1])

    def _is_num(self, r: int) -> bool:
        """True when the operand is statically a non-bool number, so
        its runtime type test can be constant-folded away."""
        if r >= 0:
            return False
        v = self.code.consts[-r - 1]
        return type(v) is int or type(v) is float

    def _num_test(self, expr: str, r: int) -> str:
        if self._is_num(r):
            return "True"
        return f"(type({expr}) is int or type({expr}) is float)"

    def charge(self, depth: int) -> None:
        """One fuel step, specialized on the run's fixed budget."""
        fuel = self.interp._fuel
        if fuel is None:
            self.w(depth, "_stats.steps += 1")
            return
        msg = f"evaluation exceeded {fuel} steps (divergence bound)"
        self.w(depth, "_stats.steps = _s = _stats.steps + 1")
        self.w(depth, f"if _s > {fuel}:")
        self.w(depth + 1, f"raise FuelExhausted({msg!r})")

    # -- compilation ----------------------------------------------------

    def compile(self):
        src = self.source()
        namespace = dict(self.globals)
        exec(compile(src, f"<jit:{self.code.name or 'body'}>", "exec"),
             namespace)
        return namespace["_jit_body"], src

    def source(self) -> str:
        interp = self.interp
        code = self.code
        instrs = code.instrs
        n = len(instrs)
        self._bind_runtime()

        has_handlers = any(inst[0] == OP_PUSH_HANDLER for inst in instrs)
        leaders = {0}
        for i, inst in enumerate(instrs):
            op = inst[0]
            if op in _JUMP_OPS:
                leaders.add(inst[1])
                leaders.add(i + 1)
            elif op == OP_FUEL:
                # Both sides of the charge are entry points: the loop
                # head is a jump target, and ``FUEL + 1`` is where OSR
                # resumes (the VM has already charged this iteration).
                leaders.add(i)
                leaders.add(i + 1)
            elif op in _TERMINATORS:
                leaders.add(i + 1)
        order = sorted(leader for leader in leaders if leader < n)

        w = self.w
        w(0, "def _jit_body(vm, regs, frame, _pc):")
        w(1, "this_obj = frame.this_obj")
        w(1, "current_mode = frame.current_mode")
        w(1, "if _pc < 0:")
        self.charge(2)
        for j in range(code.nparams):
            w(2, f"r{j} = regs[{j}]")
        if code.nparams < code.n_slots:
            tail = " = ".join(f"r{j}" for j in range(code.nparams,
                                                     code.n_slots))
            w(2, f"{tail} = None")
        w(2, "_pc = 0")
        w(1, "else:")
        if code.n_slots:
            # OSR entry: adopt the VM activation's live register file.
            for j in range(code.n_slots):
                w(2, f"r{j} = regs[{j}]")
        else:
            w(2, "pass")
        if has_handlers:
            w(1, "_handlers = []")
            w(1, "while True:")
            w(2, "try:")
            w(3, "while True:")
            depth = 4
        else:
            w(1, "while True:")
            depth = 2

        for index, leader in enumerate(order):
            end = order[index + 1] if index + 1 < len(order) else n
            w(depth, f"if _pc == {leader}:")
            terminated = False
            for i in range(leader, end):
                terminated = self.emit(depth + 1, i, instrs[i], end)
            if not terminated:
                w(depth + 1, f"_pc = {end}")
        w(depth, "raise StuckError('jit: dispatch fell off the "
                 "instruction stream')  # pragma: no cover")

        if has_handlers:
            # Mirrors the VM's handler unwind: pop the innermost
            # handler, bind the message to its catch slot, resume.
            slots = sorted({inst[2] for inst in instrs
                            if inst[0] == OP_PUSH_HANDLER})
            w(2, "except EnergyException as _exc:")
            w(3, "if not _handlers:")
            w(4, "raise")
            w(3, "_pc, _hs = _handlers.pop()")
            w(3, "_msg = str(_exc)")
            kw = "if"
            for slot in slots:
                w(3, f"{kw} _hs == {slot}:")
                w(4, f"r{slot} = _msg")
                kw = "elif"
        return "\n".join(self.lines) + "\n"

    def _bind_runtime(self) -> None:
        from repro.lang import interp as interp_mod
        from repro.lang.natives import (call_list_method,
                                        call_native_static,
                                        call_string_method)
        from repro.lang.values import MCaseV as _MCaseV, ObjectV
        from repro.core.errors import (EnergyException, FuelExhausted,
                                       StuckError)
        from repro.lang.vm import _SKIP_ELIM

        interp = self.interp
        for name, obj in (
                ("_stats", interp.stats),
                ("_interp", interp),
                ("MCaseV", _MCaseV),
                ("ObjectV", ObjectV),
                ("StuckError", StuckError),
                ("EnergyException", EnergyException),
                ("FuelExhausted", FuelExhausted),
                ("_NO_RETURN", interp_mod._NO_RETURN),
                ("_Frame", interp_mod._Frame),
                ("_NativeRef", interp_mod._NativeRef),
                ("_BreakSignal", interp_mod._BreakSignal),
                ("_ContinueSignal", interp_mod._ContinueSignal),
                ("_java_div", interp_mod._java_div),
                ("_java_mod", interp_mod._java_mod),
                ("_SKIP_ELIM", _SKIP_ELIM),
                ("_elim", interp._elim_with_mode),
                ("_binop", interp._binary_op),
                ("_veq", interp.values_equal),
                ("_truth", interp._truth),
                ("_check_dfall", interp._check_dfall),
                ("_construct", interp._construct),
                ("_invoke", interp._invoke),
                ("_snapshot", interp._snapshot_value),
                ("_mselect", interp._mselect_value),
                ("_cast", interp._cast_value),
                ("_render", interp.render),
                ("_modes", interp._mode_by_name),
                ("_dfall_cache", interp._dfall_cache),
                ("_is_sub", interp.table.is_subclass),
                ("call_native_static", call_native_static),
                ("call_string_method", call_string_method),
                ("call_list_method", call_list_method),
        ):
            self.bind(obj, name)

    # -- per-instruction emission --------------------------------------

    def _branch_tail(self, depth, i, target, taken_expr) -> None:
        """The shared ``if taken -> target else fall through`` tail of
        every conditional jump (always the last instruction of its
        block)."""
        w = self.w
        w(depth, f"if {taken_expr}:")
        w(depth + 1, f"_pc = {target}")
        if target <= i:
            w(depth + 1, "continue")
        w(depth, "else:")
        w(depth + 1, f"_pc = {i + 1}")

    def emit(self, d, i, inst, block_end) -> bool:
        """Emit one instruction at depth ``d``; returns True when it
        terminates the block (no fall-through assignment needed)."""
        w = self.w
        op = inst[0]
        if op == OP_FUEL:
            self.charge(d)
            return False
        if op == OP_JUMP:
            target = inst[1]
            w(d, f"_pc = {target}")
            if target <= i:
                w(d, "continue")
            return True
        if op in _JF_NEGATED:
            neg, sym = _JF_NEGATED[op]
            a, b = self.reg(inst[2]), self.reg(inst[3])
            w(d, f"_x = {a}")
            w(d, f"_y = {b}")
            w(d, f"if {self._num_test('_x', inst[2])} and "
                 f"{self._num_test('_y', inst[3])}:")
            w(d + 1, f"_t = _x {neg} _y")
            w(d, "else:")
            w(d + 1, f"_t = _binop({sym!r}, _x, _y) is False")
            self._branch_tail(d, i, inst[1], "_t")
            return True
        if op == OP_JF_EQ:
            self._branch_tail(
                d, i, inst[1],
                f"not _veq({self.reg(inst[2])}, {self.reg(inst[3])})")
            return True
        if op == OP_JF_NE:
            self._branch_tail(
                d, i, inst[1],
                f"_veq({self.reg(inst[2])}, {self.reg(inst[3])})")
            return True
        if op == OP_JF or op == OP_JT:
            jump_on, other = (("False", "True") if op == OP_JF
                              else ("True", "False"))
            target = inst[1]
            w(d, f"_x = {self.reg(inst[2])}")
            w(d, f"if _x is {jump_on}:")
            w(d + 1, f"_pc = {target}")
            if target <= i:
                w(d + 1, "continue")
            w(d, f"elif _x is not {other}:")
            w(d + 1, "raise StuckError('condition is not a boolean: '"
                     " + repr(_x))")
            w(d, "else:")
            w(d + 1, f"_pc = {i + 1}")
            return True
        if op == OP_CALL_DFALL or op == OP_CALL_NODFALL \
                or op == OP_CALL_SHALLOW:
            self._emit_call(d, inst, op)
            return False
        if op in _ARITH:
            sym, java = _ARITH[op]
            a, b = self.reg(inst[2]), self.reg(inst[3])
            fast = (f"_java_{'div' if sym == '/' else 'mod'}(_x, _y)"
                    if java else f"_x {sym} _y")
            w(d, f"_x = {a}")
            w(d, f"_y = {b}")
            w(d, f"if {self._num_test('_x', inst[2])} and "
                 f"{self._num_test('_y', inst[3])}:")
            w(d + 1, f"r{inst[1]} = {fast}")
            w(d, "else:")
            w(d + 1, f"r{inst[1]} = _binop({sym!r}, _x, _y)")
            return False
        if op in _CMP:
            sym = _CMP[op]
            a, b = self.reg(inst[2]), self.reg(inst[3])
            w(d, f"_x = {a}")
            w(d, f"_y = {b}")
            w(d, f"if {self._num_test('_x', inst[2])} and "
                 f"{self._num_test('_y', inst[3])}:")
            w(d + 1, f"r{inst[1]} = _x {sym} _y")
            w(d, "else:")
            w(d + 1, f"r{inst[1]} = _binop({sym!r}, _x, _y)")
            return False
        if op == OP_INC:
            slot, delta, sym, literal = inst[1], inst[2], inst[3], inst[4]
            w(d, f"_x = r{slot}")
            w(d, "if type(_x) is int or type(_x) is float:")
            w(d + 1, f"r{slot} = _x + {delta!r}")
            w(d, "else:")
            w(d + 1, f"r{slot} = _binop({sym!r}, _x, {self.lit(literal)})")
            return False
        if op == OP_EQ:
            w(d, f"r{inst[1]} = _veq({self.reg(inst[2])}, "
                 f"{self.reg(inst[3])})")
            return False
        if op == OP_NE:
            w(d, f"r{inst[1]} = not _veq({self.reg(inst[2])}, "
                 f"{self.reg(inst[3])})")
            return False
        if op == OP_MOVE:
            w(d, f"r{inst[1]} = {self.reg(inst[2])}")
            return False
        if op == OP_RETURN:
            w(d, f"return {self.reg(inst[1])}")
            return True
        if op == OP_RETURN_NONE:
            w(d, "return None")
            return True
        if op == OP_FALLOFF:
            w(d, "return _NO_RETURN")
            return True
        if op == OP_GETF_THIS or op == OP_GETF_THIS_RAW:
            name = inst[2]
            msg = f"unknown variable {name!r}"
            w(d, "try:")
            w(d + 1, f"_v = this_obj.fields[{name!r}]")
            w(d, "except (AttributeError, KeyError):")
            w(d + 1, f"raise StuckError({msg!r}) from None")
            if op == OP_GETF_THIS:
                w(d, "if _v.__class__ is MCaseV:")
                w(d + 1, "_o = this_obj.effective_mode")
                w(d + 1, "_v = _elim(_v, _o if _o is not None "
                         "else current_mode)")
            w(d, f"r{inst[1]} = _v")
            return False
        if op == OP_GETF_THIS_ARG:
            name = inst[2]
            msg = f"unknown variable {name!r}"
            w(d, "try:")
            w(d + 1, f"_v = this_obj.fields[{name!r}]")
            w(d, "except (AttributeError, KeyError):")
            w(d + 1, f"raise StuckError({msg!r}) from None")
            w(d, "if _v.__class__ is MCaseV:")
            w(d + 1, "_o = this_obj.effective_mode")
            w(d + 1, f"r{inst[3]} = _o if _o is not None else "
                     "current_mode")
            w(d, f"r{inst[1]} = _v")
            return False
        if op == OP_SETF_THIS:
            name = inst[1]
            w(d, f"if this_obj is not None and {name!r} in "
                 "this_obj.fields:")
            w(d + 1, f"this_obj.fields[{name!r}] = {self.reg(inst[2])}")
            w(d, "else:")
            w(d + 1, f"raise StuckError({f'unknown variable {name!r}'!r})")
            return False
        if op == OP_FIELD_ADD:
            name = inst[1]
            msg = f"unknown variable {name!r}"
            w(d, "if this_obj is None:")
            w(d + 1, f"raise StuckError({msg!r})")
            w(d, "_fl = this_obj.fields")
            w(d, "try:")
            w(d + 1, f"_v = _fl[{name!r}]")
            w(d, "except KeyError:")
            w(d + 1, f"raise StuckError({msg!r}) from None")
            w(d, "if _v.__class__ is MCaseV:")
            w(d + 1, "_o = this_obj.effective_mode")
            w(d + 1, "_v = _elim(_v, _o if _o is not None else "
                     "current_mode)")
            w(d, f"_y = {self.reg(inst[2])}")
            w(d, "if (type(_v) is int or type(_v) is float) and "
                 f"{self._num_test('_y', inst[2])}:")
            w(d + 1, f"_fl[{name!r}] = _v + _y")
            w(d, "else:")
            w(d + 1, f"_fl[{name!r}] = _binop('+', _v, _y)")
            return False
        if op == OP_RET_FIELD:
            name = inst[1]
            msg = f"unknown variable {name!r}"
            w(d, "if this_obj is None:")
            w(d + 1, f"raise StuckError({msg!r})")
            w(d, "try:")
            w(d + 1, f"_v = this_obj.fields[{name!r}]")
            w(d, "except KeyError:")
            w(d + 1, f"raise StuckError({msg!r}) from None")
            w(d, "if _v.__class__ is MCaseV:")
            w(d + 1, "_o = this_obj.effective_mode")
            w(d + 1, "return _elim(_v, _o if _o is not None else "
                     "current_mode)")
            w(d, "return _v")
            return True
        if op == OP_GETF or op == OP_GETF_RAW:
            name = inst[2]
            prefix = f"cannot access field {name!r} of "
            w(d, f"_ob = {self.reg(inst[3])}")
            w(d, "if not isinstance(_ob, ObjectV):")
            w(d + 1, f"raise StuckError({prefix!r} + repr(_ob))")
            w(d, f"_v = _ob.get_field({name!r})")
            if op == OP_GETF:
                w(d, "if _v.__class__ is MCaseV:")
                w(d + 1, "_o = _ob.effective_mode")
                w(d + 1, "_v = _elim(_v, _o if _o is not None else "
                         "current_mode)")
            w(d, f"r{inst[1]} = _v")
            return False
        if op == OP_GETF_ARG:
            name = inst[2]
            prefix = f"cannot access field {name!r} of "
            w(d, f"_ob = {self.reg(inst[3])}")
            w(d, "if not isinstance(_ob, ObjectV):")
            w(d + 1, f"raise StuckError({prefix!r} + repr(_ob))")
            w(d, f"_v = _ob.get_field({name!r})")
            w(d, "if _v.__class__ is MCaseV:")
            w(d + 1, "_o = _ob.effective_mode")
            w(d + 1, f"r{inst[4]} = _o if _o is not None else "
                     "current_mode")
            w(d, f"r{inst[1]} = _v")
            return False
        if op == OP_SETF:
            w(d, f"_ob = {self.reg(inst[2])}")
            w(d, "if not isinstance(_ob, ObjectV):")
            w(d + 1, "raise StuckError('cannot assign field of ' + "
                     "repr(_ob))")
            w(d, f"_ob.set_field({inst[1]!r}, {self.reg(inst[3])})")
            return False
        return self._emit_rare(d, i, inst, op)

    def _emit_rare(self, d, i, inst, op) -> bool:
        """The long tail: dynamic variable resolution, construction,
        snapshots, mode-case values, handlers, natives."""
        w = self.w
        if op == OP_VAR_DYN or op == OP_VAR_DYN_RAW or op == OP_VAR_DYN_ARG:
            name = inst[2]
            w(d, f"_found, _v = frame.lookup({name!r})")
            w(d, "if not _found:")
            w(d + 1, f"if this_obj is not None and {name!r} in "
                     "this_obj.fields:")
            w(d + 2, f"_v = this_obj.fields[{name!r}]")
            w(d + 2, "if _v.__class__ is MCaseV:")
            w(d + 3, "_o = this_obj.effective_mode")
            if op == OP_VAR_DYN:
                w(d + 3, "_v = _elim(_v, _o if _o is not None else "
                         "current_mode)")
            elif op == OP_VAR_DYN_ARG:
                w(d + 3, f"r{inst[3]} = _o if _o is not None else "
                         "current_mode")
            else:
                w(d + 3, "pass")
            w(d + 1, "else:")
            w(d + 2, f"_v = _modes.get({name!r})")
            w(d + 2, "if _v is None:")
            if name in NATIVE_STATIC_CLASSES:
                w(d + 3, f"_v = _NativeRef({name!r})")
            else:
                w(d + 3,
                  f"raise StuckError({f'unknown variable {name!r}'!r})")
            if op == OP_VAR_DYN:
                w(d, "elif _v.__class__ is MCaseV:")
                w(d + 1, "_v = _elim(_v, current_mode)")
            w(d, f"r{inst[1]} = _v")
            return False
        if op == OP_MCASE_DISPATCH:
            w(d, f"_v = {self.reg(inst[2])}")
            w(d, "if _v.__class__ is MCaseV:")
            w(d + 1, "_v = _elim(_v, current_mode)")
            w(d, f"r{inst[1]} = _v")
            return False
        if op == OP_MCASE_BUILD:
            branches = []
            default = None
            for mode, reg in inst[2]:
                if mode is None:
                    default = self.reg(reg)
                else:
                    branches.append(f"{self.bind(mode)}: {self.reg(reg)}")
            body = "{" + ", ".join(branches) + "}"
            if default is None:
                w(d, f"r{inst[1]} = MCaseV({body})")
            else:
                w(d, f"r{inst[1]} = MCaseV({body}, {default})")
            return False
        if op == OP_MSELECT:
            w(d, f"r{inst[1]} = _mselect({self.reg(inst[2])}, "
                 f"{self.lit(inst[3])}, frame)")
            return False
        if op == OP_SNAPSHOT or op == OP_SNAPSHOT_ELIDE \
                or op == OP_SNAPSHOT_SHALLOW:
            elide = op == OP_SNAPSHOT_ELIDE
            bounds = inst[3]
            if (op == OP_SNAPSHOT_SHALLOW and self.vm._shallow_plain
                    and bounds[0].__class__ is Mode
                    and bounds[1].__class__ is Mode):
                # Transient re-snapshot, concrete bounds: specialize
                # the passing probe to two set-membership tests; the
                # first snapshot, hooks, and failures take the helper.
                up = self.bind(self.interp._mode_up, "_mode_up")
                up_lo = self.bind(self.interp._mode_up[bounds[0]])
                hi = self.bind(bounds[1])
                slow = (f"_snapshot(_v, {self.lit(bounds)}, frame, "
                        f"elide_bound=False, span={self.lit(inst[4])})")
                w(d, f"_v = {self.reg(inst[2])}")
                w(d, "if (_v.__class__ is ObjectV and _v.is_snapshot "
                     "and _interp.on_snapshot is None):")
                w(d + 1, "_m = _v.effective_mode")
                w(d + 1, f"if _m in {up_lo} and {hi} in {up}[_m]:")
                w(d + 2, "_stats.snapshots += 1")
                w(d + 2, "_stats.bound_checks += 1")
                w(d + 2, "_stats.shallow_checks += 1")
                w(d + 2, f"r{inst[1]} = _v")
                w(d + 1, "else:")
                w(d + 2, f"r{inst[1]} = {slow}")
                w(d, "else:")
                w(d + 1, f"r{inst[1]} = {slow}")
                return False
            w(d, f"r{inst[1]} = _snapshot({self.reg(inst[2])}, "
                 f"{self.lit(bounds)}, frame, elide_bound={elide!r}, "
                 f"span={self.lit(inst[4])})")
            return False
        if op == OP_CAST:
            w(d, f"r{inst[1]} = _cast({self.reg(inst[2])}, "
                 f"{self.lit(inst[3])}, frame)")
            return False
        if op == OP_CAST_ERR:
            w(d, "raise StuckError('cast was not typechecked')")
            return True
        if op == OP_NEW:
            info, atoms, span = inst[2]
            argv = ", ".join(self.reg(r) for r in inst[3])
            w(d, f"r{inst[1]} = _construct({self.bind(info)}, "
                 f"{self.bind(atoms)}, [{argv}], frame, "
                 f"{self.lit(span)})")
            return False
        if op == OP_NEW_LIST:
            w(d, f"r{inst[1]} = []")
            return False
        if op == OP_LIST_BUILD:
            argv = ", ".join(self.reg(r) for r in inst[2])
            w(d, f"r{inst[1]} = [{argv}]")
            return False
        if op == OP_INSTANCEOF:
            w(d, f"_v = {self.reg(inst[2])}")
            w(d, f"r{inst[1]} = (isinstance(_v, ObjectV) and "
                 f"_is_sub(_v.class_info.name, {inst[3]!r}))")
            return False
        if op == OP_NEG:
            w(d, f"_v = {self.reg(inst[2])}")
            w(d, "if type(_v) is int or type(_v) is float:")
            w(d + 1, f"r{inst[1]} = -_v")
            w(d, "else:")
            w(d + 1, "raise StuckError('cannot negate ' + repr(_v))")
            return False
        if op == OP_NOT:
            w(d, f"r{inst[1]} = not _truth({self.reg(inst[2])})")
            return False
        if op == OP_LOAD_THIS:
            w(d, f"r{inst[1]} = this_obj")
            return False
        if op == OP_LOAD_NATIVE:
            w(d, f"r{inst[1]} = _NativeRef({inst[2]!r})")
            return False
        if op == OP_CALL_NATIVE:
            cls_name, method = inst[2]
            argv = ", ".join(self.reg(r) for r in inst[3])
            w(d, f"r{inst[1]} = call_native_static(_interp, "
                 f"{cls_name!r}, {method!r}, [{argv}])")
            return False
        if op == OP_FOREACH_INIT:
            w(d, f"_v = {self.reg(inst[2])}")
            w(d, "if not isinstance(_v, list):")
            w(d + 1, "raise StuckError('foreach requires a List')")
            w(d, f"r{inst[1]} = [list(_v), 0]")
            return False
        if op == OP_FOREACH_ITER:
            target = inst[1]
            w(d, f"_st = {self.reg(inst[2])}")
            w(d, "_it = _st[0]")
            w(d, "_ix = _st[1]")
            w(d, "if _ix >= len(_it):")
            w(d + 1, f"_pc = {target}")
            if target <= i:
                w(d + 1, "continue")
            w(d, "else:")
            w(d + 1, "_st[1] = _ix + 1")
            w(d + 1, f"r{inst[3]} = _it[_ix]")
            self.charge(d + 1)
            w(d + 1, f"_pc = {i + 1}")
            return True
        if op == OP_PUSH_HANDLER:
            w(d, f"_handlers.append(({inst[1]}, {inst[2]}))")
            return False
        if op == OP_POP_HANDLER:
            w(d, "_handlers.pop()")
            return False
        if op == OP_THROW:
            w(d, f"_msg = _render({self.reg(inst[1])})")
            w(d, "_stats.energy_exceptions += 1")
            w(d, "raise EnergyException(_msg)")
            return True
        if op == OP_BREAK_NOLOOP:
            w(d, "raise _BreakSignal()")
            return True
        if op == OP_CONT_NOLOOP:
            w(d, "raise _ContinueSignal()")
            return True
        raise JITUnsupported(f"opcode {op!r} has no JIT emitter")

    # -- call sites -----------------------------------------------------

    def _emit_call(self, d, inst, op) -> None:
        """A message send.  Monomorphic sites (one inline-cache entry at
        compile time) emit a receiver-class identity guard and the VM
        leaf path inline; everything else — and every guard failure —
        goes through ``vm._site_send``, the generic send with the
        dispatch loop's exact semantics."""
        w = self.w
        site = inst[2]
        rv = inst[3]
        dst = inst[1]
        site_name = self.bind(site)
        if rv is None:
            recv = "this_obj"
            self_call = "True"
        else:
            recv = self.reg(rv)
            self_call = ("True" if site.recv_is_this
                         else f"(_recv is this_obj)")
        argv = [self.reg(r) for r in site.arg_regs]
        elim_exprs = []
        for e in site.arg_elims:
            if e is None:
                elim_exprs.append("_SKIP_ELIM")
            elif e == -1:
                elim_exprs.append("current_mode")
            else:
                elim_exprs.append(f"r{e}")
        elims = ("(" + ", ".join(elim_exprs)
                 + ("," if len(elim_exprs) == 1 else "") + ")")

        def generic(expr_recv, expr_self_call):
            return (f"vm._site_send({site_name}, {expr_recv}, "
                    f"[{', '.join(argv)}], {elims}, frame, "
                    f"{expr_self_call})")

        entry = None
        if self.interp.options.inline_caches and len(site.ic) == 1:
            (cls_name, entry), = site.ic.items()
        if entry is not None:
            minfo, wants, callee, transparent = entry
            if len(site.arg_regs) != len(minfo.param_names):
                entry = None  # arity mismatch: the generic path blames
        if entry is None:
            w(d, f"_recv = {recv}")
            w(d, f"r{dst} = {generic('_recv', self_call)}")
            return

        info = self.interp.table.get(cls_name)
        minfo_name = self.bind(minfo)
        span_expr = self.lit(site.span)
        w(d, f"_recv = {recv}")
        w(d, f"if _recv.__class__ is ObjectV and _recv.class_info is "
             f"{self.bind(info)}:")
        # Arguments, with the deferred mode-case eliminations resolved
        # at compile time against the callee's parameter types.
        arg_exprs = []
        for j, expr in enumerate(argv):
            e = site.arg_elims[j]
            if e is None or (j < len(wants) and wants[j]):
                arg_exprs.append(expr)
                continue
            tmp = f"_a{j}"
            mode = "current_mode" if e == -1 else f"r{e}"
            w(d + 1, f"{tmp} = {expr}")
            w(d + 1, f"if {tmp}.__class__ is MCaseV:")
            w(d + 2, f"{tmp} = _elim({tmp}, {mode})")
            arg_exprs.append(tmp)
        compile_self_call = rv is None or site.recv_is_this
        if callee is not None:
            w(d + 1, "_stats.messages += 1")
            if transparent:
                closure = "current_mode"
            else:
                w(d + 1, "_gm = _recv.effective_mode")
                dd = d + 1
                if not compile_self_call:
                    w(d + 1, "if _recv is not this_obj:")
                    dd = d + 2
                    self._emit_dfall(dd, op, minfo_name, span_expr)
                closure = "(_gm if _gm is not None else current_mode)"
            w(d + 1, f"_f2 = _Frame(_recv, _recv.mode_env, {closure})")
            w(d + 1, f"_rg2 = {self.bind(callee.template)}.copy()")
            for j, expr in enumerate(arg_exprs):
                w(d + 1, f"_rg2[{j}] = {expr}")
            callee_name = self.bind(callee)
            w(d + 1, f"_jf = {callee_name}.jit")
            w(d + 1, "if _jf is None:")
            w(d + 2, f"{callee_name}.heat = _ch = "
                     f"{callee_name}.heat + 1")
            w(d + 2, f"if _ch >= {self.vm._hot_call}:")
            w(d + 3, f"_jf = vm._jit_compile({callee_name})")
            w(d + 1, "if _jf is not None:")
            w(d + 2, "_r = _jf(vm, _rg2, _f2, -1)")
            w(d + 1, "else:")
            w(d + 2, f"_r = vm._run({callee_name}, _rg2, _f2)")
            w(d + 1, "if _r is _NO_RETURN:")
            w(d + 2, "_r = None")
        else:
            # Known method but no leaf body (mode parameter, attributor,
            # generic method): skip the lookup, delegate to _invoke.
            args_list = "[" + ", ".join(arg_exprs) + "]"
            w(d + 1, f"_r = _invoke(_recv, {minfo_name}, {args_list}, "
                     f"frame, self_call={self_call}, span={span_expr}, "
                     f"elide_dfall={bool(site.elide_dfall)!r})")
        if not site.raw_result:
            w(d + 1, "if _r.__class__ is MCaseV:")
            w(d + 2, "_r = _elim(_r, current_mode)")
        w(d + 1, f"r{dst} = _r")
        w(d, "else:")
        w(d + 1, f"vm._note_deopt({self.bind(self.code)})")
        w(d + 1, f"r{dst} = {generic('_recv', self_call)}")

    def _emit_dfall(self, d, op, minfo_name, span_expr) -> None:
        """The waterfall check at a non-self leaf send: planner-elided
        counting, the transient shallow probe, the inlined memo probe,
        or the full helper — the same split as the VM's leaf path."""
        w = self.w
        if op == OP_CALL_NODFALL and self.interp._elide_dfall_on:
            w(d, "_stats.dfall_elided += 1")
        elif op == OP_CALL_SHALLOW and self.vm._dfall_plain:
            up = self.bind(self.interp._mode_up, "_mode_up")
            top = self.bind(TOP, "_TOP")
            w(d, "_sm = (current_mode if current_mode is not None "
                 f"else {top})")
            w(d, "if _interp.on_message is None and _gm is not None "
                 f"and _sm in {up}[_gm]:")
            w(d + 1, "_stats.dfall_checks += 1")
            w(d + 1, "_stats.shallow_checks += 1")
            w(d, "else:")
            w(d + 1, f"_check_dfall(_gm, current_mode, False, _recv, "
                     f"{minfo_name}, {span_expr})")
        elif self.vm._dfall_plain:
            w(d, "if _interp.on_message is None and _dfall_cache.get("
                 "(_gm, current_mode)) is True:")
            w(d + 1, "_stats.dfall_checks += 1")
            w(d, "else:")
            w(d + 1, f"_check_dfall(_gm, current_mode, False, _recv, "
                     f"{minfo_name}, {span_expr})")
        else:
            w(d, f"_check_dfall(_gm, current_mode, False, _recv, "
                 f"{minfo_name}, {span_expr})")


def compile_body(vm, code):
    """Translate ``code`` to a specialized Python function.

    Returns ``(fn, source)``; raises :class:`JITUnsupported` when the
    body contains an instruction the emitter cannot translate (the
    caller then blacklists the body)."""
    return _Emitter(vm, code).compile()


def jit_source(vm, code) -> str:
    """The emitted Python source for ``code`` (without installing it);
    used by ``repro disasm --jit``."""
    return _Emitter(vm, code).source()
