"""Pretty-printer: AST back to concrete ENT syntax.

Primarily used by tests (parse/print round-trips) and error tooling.
The output re-parses to a structurally identical AST.
"""

from __future__ import annotations

from typing import List, Optional

from repro.lang import ast_nodes as ast

_INDENT = "    "


def pretty_program(program: ast.Program) -> str:
    parts: List[str] = []
    for decl in program.modes:
        parts.append(_pretty_modes(decl))
    for cls in program.classes:
        parts.append(pretty_class(cls))
    return "\n\n".join(parts) + "\n"


def _pretty_modes(decl: ast.ModesDecl) -> str:
    clauses = [f"{a} <= {b};" for a, b in decl.pairs]
    clauses.extend(f"{name};" for name in decl.singletons)
    return "modes { " + " ".join(clauses) + " }"


def _pretty_mode_param(node: ast.ModeParamNode) -> str:
    prefix = "?" if node.dynamic else ""
    if node.var is None:
        return prefix
    if node.lower is not None and node.upper is not None:
        return f"{prefix}{node.lower} <= {node.var} <= {node.upper}"
    if node.upper is not None:
        return f"{prefix}{node.var} <= {node.upper}"
    return f"{prefix}{node.var}"


def _pretty_mode_args(args: Optional[List[ast.ModeArgNode]]) -> str:
    if args is None:
        return ""
    rendered = ", ".join("?" if a.dynamic else str(a.name) for a in args)
    return f"@mode<{rendered}>"


def pretty_type(node: ast.TypeNode) -> str:
    if isinstance(node, ast.PrimTypeNode):
        return node.name
    if isinstance(node, ast.MCaseTypeNode):
        return f"mcase<{pretty_type(node.element)}>"
    assert isinstance(node, ast.ClassTypeNode)
    return node.name + _pretty_mode_args(node.mode_args)


def pretty_class(cls: ast.ClassDecl) -> str:
    header = f"class {cls.name}"
    if cls.mode_param is not None:
        params = [cls.mode_param] + cls.extra_params
        rendered = ", ".join(_pretty_mode_param(p) for p in params)
        header += f"@mode<{rendered}>"
    if cls.superclass != "Object":
        header += f" extends {cls.superclass}"
        header += _pretty_mode_args(cls.super_mode_args)
    lines = [header + " {"]
    for fdecl in cls.fields:
        init = f" = {pretty_expr(fdecl.init)}" if fdecl.init else ""
        lines.append(f"{_INDENT}{pretty_type(fdecl.declared)} "
                     f"{fdecl.name}{init};")
    if cls.attributor is not None:
        lines.append(f"{_INDENT}attributor "
                     + _pretty_block(cls.attributor.body, 1))
    if cls.constructor is not None:
        params = ", ".join(f"{pretty_type(p.declared)} {p.name}"
                           for p in cls.constructor.params)
        lines.append(f"{_INDENT}{cls.name}({params}) "
                     + _pretty_block(cls.constructor.body, 1))
    for method in cls.methods:
        lines.append(_pretty_method(method))
    lines.append("}")
    return "\n".join(lines)


def _pretty_method(method: ast.MethodDecl) -> str:
    prefix = ""
    if method.mode_param is not None:
        prefix = f"@mode<{_pretty_mode_param(method.mode_param)}> "
    params = ", ".join(f"{pretty_type(p.declared)} {p.name}"
                       for p in method.params)
    header = (f"{_INDENT}{prefix}{pretty_type(method.return_type)} "
              f"{method.name}({params}) ")
    if method.attributor is not None:
        header += "attributor " + _pretty_block(method.attributor.body,
                                                1) + " "
    return header + _pretty_block(method.body, 1)


def _pretty_block(block: ast.Block, depth: int) -> str:
    pad = _INDENT * (depth + 1)
    close = _INDENT * depth
    if not block.stmts:
        return "{ }"
    lines = ["{"]
    for stmt in block.stmts:
        lines.append(pad + pretty_stmt(stmt, depth + 1))
    lines.append(close + "}")
    return "\n".join(lines)


def pretty_stmt(stmt: ast.Stmt, depth: int = 0) -> str:
    if isinstance(stmt, ast.Block):
        return _pretty_block(stmt, depth)
    if isinstance(stmt, ast.LocalVarDecl):
        init = f" = {pretty_expr(stmt.init)}" if stmt.init else ""
        return f"{pretty_type(stmt.declared)} {stmt.name}{init};"
    if isinstance(stmt, ast.Assign):
        return f"{pretty_expr(stmt.target)} = {pretty_expr(stmt.value)};"
    if isinstance(stmt, ast.ExprStmt):
        return f"{pretty_expr(stmt.expr)};"
    if isinstance(stmt, ast.If):
        out = (f"if ({pretty_expr(stmt.cond)}) "
               f"{pretty_stmt(stmt.then, depth)}")
        if stmt.otherwise is not None:
            out += f" else {pretty_stmt(stmt.otherwise, depth)}"
        return out
    if isinstance(stmt, ast.While):
        return (f"while ({pretty_expr(stmt.cond)}) "
                f"{pretty_stmt(stmt.body, depth)}")
    if isinstance(stmt, ast.Foreach):
        return (f"foreach ({pretty_type(stmt.var_type)} {stmt.var_name} : "
                f"{pretty_expr(stmt.iterable)}) "
                f"{pretty_stmt(stmt.body, depth)}")
    if isinstance(stmt, ast.Return):
        if stmt.expr is None:
            return "return;"
        return f"return {pretty_expr(stmt.expr)};"
    if isinstance(stmt, ast.Break):
        return "break;"
    if isinstance(stmt, ast.Continue):
        return "continue;"
    if isinstance(stmt, ast.TryCatch):
        return (f"try {pretty_stmt(stmt.body, depth)} catch "
                f"({stmt.exc_class} {stmt.exc_var}) "
                f"{pretty_stmt(stmt.handler, depth)}")
    if isinstance(stmt, ast.Throw):
        return f"throw {pretty_expr(stmt.expr)};"
    raise TypeError(f"unknown statement {type(stmt).__name__}")


def pretty_expr(expr: ast.Expr) -> str:
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.FloatLit):
        return repr(expr.value)
    if isinstance(expr, ast.StringLit):
        escaped = (expr.value.replace("\\", "\\\\").replace('"', '\\"')
                   .replace("\n", "\\n").replace("\t", "\\t"))
        return f'"{escaped}"'
    if isinstance(expr, ast.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.NullLit):
        return "null"
    if isinstance(expr, ast.Var):
        return expr.name
    if isinstance(expr, ast.This):
        return "this"
    if isinstance(expr, ast.FieldAccess):
        return f"{pretty_expr(expr.obj)}.{expr.name}"
    if isinstance(expr, ast.MethodCall):
        args = ", ".join(pretty_expr(a) for a in expr.args)
        if expr.receiver is None:
            return f"{expr.name}({args})"
        return f"{pretty_expr(expr.receiver)}.{expr.name}({args})"
    if isinstance(expr, ast.New):
        args = ", ".join(pretty_expr(a) for a in expr.args)
        return (f"new {expr.class_name}"
                f"{_pretty_mode_args(expr.mode_args)}({args})")
    if isinstance(expr, ast.Cast):
        return f"(({pretty_type(expr.target)}) {pretty_expr(expr.expr)})"
    if isinstance(expr, ast.Snapshot):
        out = f"snapshot {pretty_expr(expr.expr)}"
        if expr.lower is not None or expr.upper is not None:
            lo = expr.lower.name if expr.lower and expr.lower.name else "_"
            hi = expr.upper.name if expr.upper and expr.upper.name else "_"
            out += f" [{lo}, {hi}]"
        return out
    if isinstance(expr, ast.MCaseExpr):
        element = (f"<{pretty_type(expr.element)}>"
                   if expr.element is not None else "")
        branches = " ".join(
            f"{b.mode_name if b.mode_name else 'default'}: "
            f"{pretty_expr(b.expr)};" for b in expr.branches)
        return f"mcase{element}{{ {branches} }}"
    if isinstance(expr, ast.MSelect):
        return f"mselect({pretty_expr(expr.expr)}, {expr.mode_name})"
    if isinstance(expr, ast.Binary):
        return (f"({pretty_expr(expr.left)} {expr.op} "
                f"{pretty_expr(expr.right)})")
    if isinstance(expr, ast.Unary):
        return f"({expr.op}{pretty_expr(expr.expr)})"
    if isinstance(expr, ast.ListLit):
        return "[" + ", ".join(pretty_expr(e) for e in expr.elements) + "]"
    if isinstance(expr, ast.InstanceOf):
        return f"({pretty_expr(expr.expr)} instanceof {expr.class_name})"
    raise TypeError(f"unknown expression {type(expr).__name__}")
