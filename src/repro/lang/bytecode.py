"""Register-bytecode lowering for the ENT VM (the third engine).

``lower_body`` translates a typechecked (and, when the elision planner
ran, analysis-annotated) AST body into a flat instruction stream over a
register file:

* **Registers** — non-negative indices are frame slots (parameters
  occupy ``0..n-1``, locals and expression temporaries follow; shadowed
  names get fresh slots, exactly like the closure compiler's
  ``_CompileScope``).  *Negative* indices address the constant pool:
  the k-th interned constant lives at index ``-(k+1)``, so
  ``regs[-(k+1)]`` reads it with no operand-fixup pass — the register
  file is materialized as ``[slots...] + reversed(consts)`` and writes
  only ever target non-negative indices.
* **Explicit check instructions** — the dynamic mode checks the paper
  counts are first-class opcodes: ``CALL_DFALL`` carries the waterfall
  check, ``SNAPSHOT`` the bound check, ``MCASE_DISPATCH`` the implicit
  mode-case elimination.  The :mod:`repro.analysis` planner's verdicts
  are consumed at lowering time by *opcode selection*: a call site the
  planner proved safe lowers to ``CALL_NODFALL`` and a proven snapshot
  to ``SNAPSHOT_ELIDE`` — the check simply is not emitted (the elided
  counters keep the executed+elided sum invariant).  Under
  ``--checks transient`` the residual checks lower to the dedicated
  shallow opcodes instead (``CALL_SHALLOW``, ``SNAPSHOT_SHALLOW``):
  the VM and JIT collapse them to O(1) probes against the
  interpreter's precomputed upward-closure table.
* **Superinstructions** — fused compare-and-branch (``JF_LT`` & co),
  ``INC`` for the canonical ``i = i + 1``, ``FIELD_ADD`` for
  ``this.f = this.f + x``, ``RET_FIELD`` for ``return this.f``, and
  ``CALL_NATIVE`` for statically-known native receivers.

Semantics are *not* duplicated: slow paths call straight back into the
interpreter's shared helpers (``_binary_op``, ``_snapshot_value``,
``_mselect_value``, ``_cast_value``, ``_elim_with_mode``, ``_invoke``,
``_construct``), so the mode machinery lives in exactly one place and
error messages match the tree walk byte for byte.

See ``docs/VM.md`` for the instruction-set reference and
:mod:`repro.lang.vm` for the dispatch loop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.errors import StuckError
from repro.core.modes import BOTTOM, TOP, Mode
from repro.lang import ast_nodes as ast
from repro.lang import types as ty

__all__ = ["VMCode", "CallSite", "lower_body", "lower_expr",
           "instrument", "disassemble", "OP_NAMES", "OP_COST_KEYS",
           "op_cost_key"]

# ---------------------------------------------------------------------------
# Opcodes.  Roughly hotness-ordered: the dispatch loop in vm.py probes
# them in this order.

OP_FUEL = 0            # ()               loop-head fuel charge
OP_JF_LT = 1           # (target, a, b)   jump if not (a < b)
OP_JF_LE = 2           # (target, a, b)
OP_JF_GT = 3           # (target, a, b)
OP_JF_GE = 4           # (target, a, b)
OP_JF_EQ = 5           # (target, a, b)   values_equal
OP_JF_NE = 6           # (target, a, b)
OP_CALL_DFALL = 7      # (dst, site, recv|None)  message + DFALL_CHECK
OP_CALL_NODFALL = 8    # (dst, site, recv|None)  check elided by planner
OP_INC = 9             # (slot, delta, op, lit)  slot = slot +/- lit
OP_MOD = 10            # (dst, a, b)
OP_JUMP = 11           # (target,)
OP_FIELD_ADD = 12      # (name, src)      this.name = this.name + r[src]
OP_RET_FIELD = 13      # (name,)          return this.name
OP_RETURN = 14         # (src,)
OP_ADD = 15            # (dst, a, b)
OP_MOVE = 16           # (dst, src)
OP_GETF_THIS = 17      # (dst, name)      mcase values eliminate
OP_SUB = 18
OP_MUL = 19
OP_DIV = 20
OP_LT = 21
OP_LE = 22
OP_GT = 23
OP_GE = 24
OP_EQ = 25
OP_NE = 26
OP_JF = 27             # (target, src)    jump if False (StuckError else)
OP_JT = 28             # (target, src)
OP_SETF_THIS = 29      # (name, src)
OP_SETF = 30           # (name, obj, src)
OP_GETF = 31           # (dst, name, obj)
OP_GETF_RAW = 32       # (dst, name, obj) no elimination
OP_GETF_THIS_RAW = 33  # (dst, name)
OP_GETF_THIS_ARG = 34  # (dst, name, owner)  raw + owner-mode capture
OP_GETF_ARG = 35       # (dst, name, obj, owner)
OP_VAR_DYN = 36        # (dst, name)      dynamic resolution fallback
OP_VAR_DYN_RAW = 37    # (dst, name)
OP_VAR_DYN_ARG = 38    # (dst, name, owner)
OP_MCASE_DISPATCH = 39 # (dst, src)       implicit mode-case elimination
OP_MCASE_BUILD = 40    # (dst, spec)      spec = ((mode|None, reg), ...)
OP_MSELECT = 41        # (dst, src, atom)
OP_SNAPSHOT = 42       # (dst, src, bounds)  attributor + BOUND_CHECK
OP_SNAPSHOT_ELIDE = 43 # (dst, src, bounds)  check elided by planner
OP_CAST = 44           # (dst, src, target)
OP_CAST_ERR = 45       # (src,)           un-typechecked cast
OP_NEW = 46            # (dst, meta, arg_regs)  meta=(info, atoms, span)
OP_NEW_LIST = 47       # (dst,)
OP_LIST_BUILD = 48     # (dst, regs)
OP_INSTANCEOF = 49     # (dst, src, class_name)
OP_NEG = 50            # (dst, src)
OP_NOT = 51            # (dst, src)
OP_LOAD_THIS = 52      # (dst,)
OP_LOAD_NATIVE = 53    # (dst, name)
OP_CALL_NATIVE = 54    # (dst, (cls, method), arg_regs)
OP_FOREACH_INIT = 55   # (dst, src)
OP_FOREACH_ITER = 56   # (target, state, var_slot)
OP_PUSH_HANDLER = 57   # (target, exc_slot)
OP_POP_HANDLER = 58    # ()
OP_THROW = 59          # (src,)
OP_RETURN_NONE = 60    # ()
OP_FALLOFF = 61        # ()               body end without return
OP_BREAK_NOLOOP = 62   # ()
OP_CONT_NOLOOP = 63    # ()
OP_PROFILE = 64        # (label,)  profiler bump (instrument() only)
OP_CALL_SHALLOW = 65   # (dst, site, recv|None)  transient shallow dfall
OP_SNAPSHOT_SHALLOW = 66  # (dst, src, bounds, span)  transient re-snapshot

OP_NAMES = {
    OP_FUEL: "FUEL", OP_JF_LT: "JF_LT", OP_JF_LE: "JF_LE",
    OP_JF_GT: "JF_GT", OP_JF_GE: "JF_GE", OP_JF_EQ: "JF_EQ",
    OP_JF_NE: "JF_NE", OP_CALL_DFALL: "CALL_DFALL",
    OP_CALL_NODFALL: "CALL_NODFALL", OP_INC: "INC", OP_MOD: "MOD",
    OP_JUMP: "JUMP", OP_FIELD_ADD: "FIELD_ADD",
    OP_RET_FIELD: "RET_FIELD", OP_RETURN: "RETURN", OP_ADD: "ADD",
    OP_MOVE: "MOVE", OP_GETF_THIS: "GETF_THIS", OP_SUB: "SUB",
    OP_MUL: "MUL", OP_DIV: "DIV", OP_LT: "LT", OP_LE: "LE",
    OP_GT: "GT", OP_GE: "GE", OP_EQ: "EQ", OP_NE: "NE", OP_JF: "JF",
    OP_JT: "JT", OP_SETF_THIS: "SETF_THIS", OP_SETF: "SETF",
    OP_GETF: "GETF", OP_GETF_RAW: "GETF_RAW",
    OP_GETF_THIS_RAW: "GETF_THIS_RAW",
    OP_GETF_THIS_ARG: "GETF_THIS_ARG", OP_GETF_ARG: "GETF_ARG",
    OP_VAR_DYN: "VAR_DYN", OP_VAR_DYN_RAW: "VAR_DYN_RAW",
    OP_VAR_DYN_ARG: "VAR_DYN_ARG", OP_MCASE_DISPATCH: "MCASE_DISPATCH",
    OP_MCASE_BUILD: "MCASE_BUILD", OP_MSELECT: "MSELECT",
    OP_SNAPSHOT: "SNAPSHOT", OP_SNAPSHOT_ELIDE: "SNAPSHOT_ELIDE",
    OP_CAST: "CAST", OP_CAST_ERR: "CAST_ERR", OP_NEW: "NEW",
    OP_NEW_LIST: "NEW_LIST", OP_LIST_BUILD: "LIST_BUILD",
    OP_INSTANCEOF: "INSTANCEOF", OP_NEG: "NEG", OP_NOT: "NOT",
    OP_LOAD_THIS: "LOAD_THIS", OP_LOAD_NATIVE: "LOAD_NATIVE",
    OP_CALL_NATIVE: "CALL_NATIVE", OP_FOREACH_INIT: "FOREACH_INIT",
    OP_FOREACH_ITER: "FOREACH_ITER", OP_PUSH_HANDLER: "PUSH_HANDLER",
    OP_POP_HANDLER: "POP_HANDLER", OP_THROW: "THROW",
    OP_RETURN_NONE: "RETURN_NONE", OP_FALLOFF: "FALLOFF",
    OP_BREAK_NOLOOP: "BREAK_NOLOOP", OP_CONT_NOLOOP: "CONT_NOLOOP",
    OP_PROFILE: "PROFILE", OP_CALL_SHALLOW: "CALL_SHALLOW",
    OP_SNAPSHOT_SHALLOW: "SNAPSHOT_SHALLOW",
}

# ---------------------------------------------------------------------------
# Stable cost keys.  The energy cost model (``repro.advise.costmodel``)
# prices work per *cost key*, not per opcode number: opcode numbering is
# hotness-ordered and free to change between PRs, but the keys below are
# a stable, documented vocabulary that per-architecture cost tables are
# written against.  Families mirror the profiler's label scheme
# (``op.ADD`` → key ``alu``; ``check.dfall@3:4`` → key ``check.dfall``)
# so calibration can join measured joules back onto the same keys.

OP_COST_KEYS = {
    OP_FUEL: "control", OP_JF_LT: "branch", OP_JF_LE: "branch",
    OP_JF_GT: "branch", OP_JF_GE: "branch", OP_JF_EQ: "branch",
    OP_JF_NE: "branch", OP_CALL_DFALL: "check.dfall",
    OP_CALL_NODFALL: "call", OP_INC: "alu", OP_MOD: "alu",
    OP_JUMP: "branch", OP_FIELD_ADD: "field", OP_RET_FIELD: "field",
    OP_RETURN: "control", OP_ADD: "alu", OP_MOVE: "move",
    OP_GETF_THIS: "field", OP_SUB: "alu", OP_MUL: "alu",
    OP_DIV: "alu", OP_LT: "alu", OP_LE: "alu", OP_GT: "alu",
    OP_GE: "alu", OP_EQ: "alu", OP_NE: "alu", OP_JF: "branch",
    OP_JT: "branch", OP_SETF_THIS: "field", OP_SETF: "field",
    OP_GETF: "field", OP_GETF_RAW: "field",
    OP_GETF_THIS_RAW: "field", OP_GETF_THIS_ARG: "field",
    OP_GETF_ARG: "field", OP_VAR_DYN: "move", OP_VAR_DYN_RAW: "move",
    OP_VAR_DYN_ARG: "move", OP_MCASE_DISPATCH: "check.mcase_elim",
    OP_MCASE_BUILD: "alloc", OP_MSELECT: "check.mcase_elim",
    OP_SNAPSHOT: "check.snapshot_bound", OP_SNAPSHOT_ELIDE: "call",
    OP_CAST: "check.snapshot_bound", OP_CAST_ERR: "control",
    OP_NEW: "alloc",
    OP_NEW_LIST: "alloc", OP_LIST_BUILD: "alloc",
    OP_INSTANCEOF: "alu", OP_NEG: "alu", OP_NOT: "alu",
    OP_LOAD_THIS: "move", OP_LOAD_NATIVE: "move",
    OP_CALL_NATIVE: "native", OP_FOREACH_INIT: "control",
    OP_FOREACH_ITER: "branch", OP_PUSH_HANDLER: "control",
    OP_POP_HANDLER: "control", OP_THROW: "control",
    OP_RETURN_NONE: "control", OP_FALLOFF: "control",
    OP_BREAK_NOLOOP: "control", OP_CONT_NOLOOP: "control",
    OP_PROFILE: "control", OP_CALL_SHALLOW: "check.dfall",
    OP_SNAPSHOT_SHALLOW: "check.snapshot_bound",
}


def op_cost_key(op: int) -> str:
    """Stable cost-model key for an opcode (``'default'`` if unknown)."""
    return OP_COST_KEYS.get(op, "default")


#: Fused conditional jumps and value-producing compare ops by operator.
_JF_MAP = {"<": OP_JF_LT, "<=": OP_JF_LE, ">": OP_JF_GT,
           ">=": OP_JF_GE, "==": OP_JF_EQ, "!=": OP_JF_NE}
_BINOP_MAP = {"+": OP_ADD, "-": OP_SUB, "*": OP_MUL, "/": OP_DIV,
              "%": OP_MOD, "<": OP_LT, "<=": OP_LE, ">": OP_GT,
              ">=": OP_GE, "==": OP_EQ, "!=": OP_NE}

#: Node classes whose values can never be an un-eliminated MCaseV (the
#: closure compiler's ``_NEVER_MCASE``); their ``raw`` lowering equals
#: the standard one and call arguments need no elimination descriptor.
_NEVER_MCASE = frozenset({
    ast.IntLit, ast.FloatLit, ast.StringLit, ast.BoolLit, ast.NullLit,
    ast.This, ast.New, ast.Snapshot, ast.Binary, ast.Unary, ast.ListLit,
    ast.InstanceOf,
})


class VMCode:
    """A lowered body: instruction tuple plus the register-file template
    (``[None] * n_slots + reversed(consts)``; see module docstring).

    The trailing slots are the JIT tier's per-body state (see
    :mod:`repro.lang.jit`): ``heat`` counts loop-head charges toward the
    OSR threshold, ``jit``/``jit_src`` hold the installed entry point
    and its emitted Python source, ``jit_deopts`` counts guard failures
    since the last (re)compile, and ``jit_versions`` counts compiles so
    repeatedly-deoptimizing bodies can be blacklisted back to the VM.
    All stay at their zero values unless the interpreter runs with
    ``engine="jit"``."""

    __slots__ = ("instrs", "template", "nparams", "n_slots", "consts",
                 "name", "param_names", "heat", "jit", "jit_src",
                 "jit_deopts", "jit_versions")

    def __init__(self, instrs, template, nparams, n_slots, consts,
                 name, param_names) -> None:
        self.instrs = instrs
        self.template = template
        self.nparams = nparams
        self.n_slots = n_slots
        self.consts = consts
        self.name = name
        self.param_names = param_names
        self.heat = 0
        self.jit = None
        self.jit_src = None
        self.jit_deopts = 0
        self.jit_versions = 0


class CallSite:
    """Per-call-site metadata carried by ``CALL_DFALL``/``CALL_NODFALL``:
    the argument registers, their deferred mode-case elimination
    descriptors, and the polymorphic inline cache (receiver class name
    -> ``(minfo, wants, leaf code or None, transparent)``)."""

    __slots__ = ("name", "span", "arg_regs", "arg_elims", "any_elim",
                 "elide_dfall", "recv_is_this", "raw_result", "ic",
                 "heat")

    def __init__(self, name, span, arg_regs, arg_elims, elide_dfall,
                 recv_is_this, raw_result) -> None:
        self.name = name
        self.span = span
        self.arg_regs = arg_regs
        #: Per-argument elimination descriptor: ``None`` — the value can
        #: never be an mcase; ``-1`` — eliminate at the caller's current
        #: mode; ``>= 0`` — a register holding the owner mode of the
        #: field the value was read from, captured *at read time* (a
        #: later argument may re-tag the owner before the send).
        self.arg_elims = arg_elims
        self.any_elim = any(e is not None for e in arg_elims)
        self.elide_dfall = elide_dfall
        self.recv_is_this = recv_is_this
        #: True when the call sits in an mcase-wanting context: the
        #: result is handed back un-eliminated.
        self.raw_result = raw_result
        self.ic: Dict[str, tuple] = {}
        #: Sends through this site toward the JIT's per-call-site
        #: hotness threshold (engine="jit" only; see repro.lang.jit).
        self.heat = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<site .{self.name} args={self.arg_regs}>"


class _Lowering:
    """One body's lowering state: a growing instruction list (mutable
    4-ish-lists until ``finish`` freezes them to tuples), the constant
    pool, and the compile-time scope (name -> slot, shadowing gets a
    fresh slot, ``push``/``pop`` save only name visibility)."""

    def __init__(self, interp) -> None:
        self.interp = interp
        #: Transient check depth (``--checks transient``): residual
        #: checks lower to the dedicated shallow opcodes so the VM and
        #: JIT pay an O(1) tag probe instead of the deep helper call.
        self.transient = interp._transient
        self.instrs: List[list] = []
        self.consts: List[object] = []
        self.const_map: Dict[tuple, int] = {}
        self.names: Dict[str, int] = {}
        self._saved: List[Dict[str, int]] = []
        self.n_slots = 0
        #: Slots that may hold an un-eliminated MCaseV (statically
        #: mcase-typed locals and mcase-typed parameters).  Reads of any
        #: other slot skip the elimination check entirely.
        self.mcase_slots = set()
        #: Stack of (break-patch list, continue target, handler depth).
        self.loops: List[list] = []
        self.handler_depth = 0

    # -- infrastructure ------------------------------------------------

    def emit(self, *inst) -> int:
        index = len(self.instrs)
        self.instrs.append(list(inst))
        return index

    def here(self) -> int:
        return len(self.instrs)

    def patch(self, indices) -> None:
        target = len(self.instrs)
        for index in indices:
            self.instrs[index][1] = target

    def const(self, value) -> int:
        key = (value.__class__, value)
        index = self.const_map.get(key)
        if index is None:
            index = len(self.consts)
            self.consts.append(value)
            self.const_map[key] = index
        return -(index + 1)

    def alloc(self) -> int:
        slot = self.n_slots
        self.n_slots = slot + 1
        return slot

    def temp(self) -> int:
        return self.alloc()

    def push_names(self) -> None:
        self._saved.append(dict(self.names))

    def pop_names(self) -> None:
        self.names = self._saved.pop()

    def finish(self, nparams, name, param_names) -> VMCode:
        self.emit(OP_FALLOFF)
        instrs = tuple(tuple(inst) for inst in self.instrs)
        template = [None] * self.n_slots + list(reversed(self.consts))
        return VMCode(instrs, template, nparams, self.n_slots,
                      tuple(self.consts), name, tuple(param_names))

    # -- statements ----------------------------------------------------

    def stmt(self, stmt) -> None:
        cls = stmt.__class__
        if cls is ast.Block:
            self.push_names()
            for inner in stmt.stmts:
                self.stmt(inner)
            self.pop_names()
            return
        if cls is ast.ExprStmt:
            self.expr(stmt.expr)
            return
        if cls is ast.Assign:
            self._stmt_assign(stmt)
            return
        if cls is ast.LocalVarDecl:
            self._stmt_local(stmt)
            return
        if cls is ast.If:
            self._stmt_if(stmt)
            return
        if cls is ast.While:
            self._stmt_while(stmt)
            return
        if cls is ast.Return:
            self._stmt_return(stmt)
            return
        if cls is ast.Foreach:
            self._stmt_foreach(stmt)
            return
        if cls is ast.Break:
            self._stmt_break()
            return
        if cls is ast.Continue:
            self._stmt_continue()
            return
        if cls is ast.TryCatch:
            self._stmt_try(stmt)
            return
        if cls is ast.Throw:
            self.emit(OP_THROW, self.expr(stmt.expr))
            return
        raise StuckError(  # pragma: no cover
            f"cannot lower statement {type(stmt).__name__}")

    def _stmt_local(self, stmt) -> None:
        wants = isinstance(getattr(stmt, "resolved_type", None),
                           ty.MCaseType)
        # A fresh slot, but the *name* binds only after the initializer
        # is lowered: ``int x = x;`` reads the outer x, exactly like the
        # typechecker (and the closure compiler) scope it.
        slot = self.alloc()
        if stmt.init is not None:
            reg = self.expr(stmt.init, raw=wants, dst=slot)
            if reg != slot:
                self.emit(OP_MOVE, slot, reg)
        else:
            default = self.interp._default_value(
                getattr(stmt, "resolved_type", ty.NULL))
            self.emit(OP_MOVE, slot, self.const(default))
        self.names[stmt.name] = slot
        if wants:
            self.mcase_slots.add(slot)

    def _stmt_assign(self, stmt) -> None:
        target = stmt.target
        value = stmt.value
        if target.__class__ is ast.Var:
            name = target.name
            slot = self.names.get(name)
            if slot is not None:
                if (not stmt.wants_mcase
                        and slot not in self.mcase_slots
                        and value.__class__ is ast.Binary
                        and value.op in ("+", "-")
                        and value.left.__class__ is ast.Var
                        and self.names.get(value.left.name) == slot
                        and value.right.__class__ in (ast.IntLit,
                                                      ast.FloatLit)):
                    lit = value.right.value
                    delta = lit if value.op == "+" else -lit
                    self.emit(OP_INC, slot, delta, value.op, lit)
                    return
                reg = self.expr(value, raw=stmt.wants_mcase, dst=slot)
                if reg != slot:
                    self.emit(OP_MOVE, slot, reg)
                return
            # Not a visible local: a field of ``this`` (or an error).
            src = self._field_add_operand(stmt, name)
            if src is not None:
                self.emit(OP_FIELD_ADD, name, src)
                return
            reg = self.expr(value, raw=stmt.wants_mcase)
            self.emit(OP_SETF_THIS, name, reg)
            return
        assert target.__class__ is ast.FieldAccess
        # Value before receiver, matching the tree walk.
        val = self.expr(value, raw=stmt.wants_mcase)
        obj = self.expr(target.obj)
        self.emit(OP_SETF, target.name, obj, val)

    def _field_add_operand(self, stmt, name) -> Optional[int]:
        """``this.f = this.f + operand`` with a pure operand fuses to
        ``FIELD_ADD``; returns the operand register, or None."""
        value = stmt.value
        if (stmt.wants_mcase or value.__class__ is not ast.Binary
                or value.op != "+"):
            return None
        left = value.left
        if (left.__class__ is not ast.Var or left.name != name
                or self.names.get(name) is not None
                or left.resolved_kind != "field"
                or stmt.target.resolved_kind != "field"):
            return None
        right = value.right
        if right.__class__ in (ast.IntLit, ast.FloatLit):
            return self.const(right.value)
        if right.__class__ is ast.Var:
            slot = self.names.get(right.name)
            if slot is not None and slot not in self.mcase_slots:
                return slot
        return None

    def _stmt_if(self, stmt) -> None:
        exits: List[int] = []
        self.cond_false(stmt.cond, exits)
        self.stmt(stmt.then)
        if stmt.otherwise is None:
            self.patch(exits)
            return
        end = self.emit(OP_JUMP, None)
        self.patch(exits)
        self.stmt(stmt.otherwise)
        self.patch([end])

    def _stmt_while(self, stmt) -> None:
        head = self.here()
        # One fuel charge per iteration at the loop head: every backedge
        # (including ``continue``) passes through it, so even
        # ``while (true) { continue; }`` exhausts deterministically.
        self.emit(OP_FUEL)
        exits: List[int] = []
        self.cond_false(stmt.cond, exits)
        self.loops.append([[], head, self.handler_depth])
        self.stmt(stmt.body)
        self.emit(OP_JUMP, head)
        breaks = self.loops.pop()[0]
        self.patch(exits + breaks)

    def _stmt_foreach(self, stmt) -> None:
        iterable = self.expr(stmt.iterable)
        state = self.temp()
        self.emit(OP_FOREACH_INIT, state, iterable)
        self.push_names()
        var_slot = self.alloc()
        self.names[stmt.var_name] = var_slot
        head = self.here()
        iter_index = self.emit(OP_FOREACH_ITER, None, state, var_slot)
        self.loops.append([[], head, self.handler_depth])
        self.stmt(stmt.body)
        self.emit(OP_JUMP, head)
        breaks = self.loops.pop()[0]
        self.patch([iter_index] + breaks)
        self.pop_names()

    def _stmt_return(self, stmt) -> None:
        expr = stmt.expr
        if expr is None:
            self.emit(OP_RETURN_NONE)
            return
        if (expr.__class__ is ast.Var and expr.resolved_kind == "field"
                and self.names.get(expr.name) is None):
            self.emit(OP_RET_FIELD, expr.name)
            return
        self.emit(OP_RETURN, self.expr(expr))

    def _unwind_to(self, depth) -> None:
        for _ in range(self.handler_depth - depth):
            self.emit(OP_POP_HANDLER)

    def _stmt_break(self) -> None:
        if not self.loops:
            self.emit(OP_BREAK_NOLOOP)
            return
        breaks, _cont, depth = self.loops[-1]
        self._unwind_to(depth)
        breaks.append(self.emit(OP_JUMP, None))

    def _stmt_continue(self) -> None:
        if not self.loops:
            self.emit(OP_CONT_NOLOOP)
            return
        _breaks, cont, depth = self.loops[-1]
        self._unwind_to(depth)
        self.emit(OP_JUMP, cont)

    def _stmt_try(self, stmt) -> None:
        exc_slot = self.alloc()
        push = self.emit(OP_PUSH_HANDLER, None, exc_slot)
        self.handler_depth += 1
        self.stmt(stmt.body)
        self.handler_depth -= 1
        self.emit(OP_POP_HANDLER)
        end = self.emit(OP_JUMP, None)
        self.patch([push])
        self.push_names()
        self.names[stmt.exc_var] = exc_slot
        self.stmt(stmt.handler)
        self.pop_names()
        self.patch([end])

    # -- conditions (short-circuit jump lowering) ----------------------

    def cond_false(self, expr, patches) -> None:
        """Emit jumps (appended to ``patches``) taken when ``expr`` is
        false; falls through when true.  Mirrors the walk's
        ``_truth``-checked short-circuit evaluation."""
        cls = expr.__class__
        if cls is ast.Binary:
            op = expr.op
            if op == "&&":
                self.cond_false(expr.left, patches)
                self.cond_false(expr.right, patches)
                return
            if op == "||":
                taken: List[int] = []
                self.cond_true(expr.left, taken)
                self.cond_false(expr.right, patches)
                self.patch(taken)
                return
            fused = _JF_MAP.get(op)
            if fused is not None:
                left = self.expr(expr.left)
                right = self.expr(expr.right)
                patches.append(self.emit(fused, None, left, right))
                return
        elif cls is ast.Unary and expr.op == "!":
            self.cond_true(expr.expr, patches)
            return
        elif cls is ast.BoolLit:
            if not expr.value:
                patches.append(self.emit(OP_JUMP, None))
            return
        patches.append(self.emit(OP_JF, None, self.expr(expr)))

    def cond_true(self, expr, patches) -> None:
        cls = expr.__class__
        if cls is ast.Binary:
            op = expr.op
            if op == "&&":
                fall: List[int] = []
                self.cond_false(expr.left, fall)
                self.cond_true(expr.right, patches)
                self.patch(fall)
                return
            if op == "||":
                self.cond_true(expr.left, patches)
                self.cond_true(expr.right, patches)
                return
            value_op = _BINOP_MAP.get(op)
            if value_op is not None and op in _JF_MAP:
                left = self.expr(expr.left)
                right = self.expr(expr.right)
                dest = self.temp()
                self.emit(value_op, dest, left, right)
                patches.append(self.emit(OP_JT, None, dest))
                return
        elif cls is ast.Unary and expr.op == "!":
            self.cond_false(expr.expr, patches)
            return
        elif cls is ast.BoolLit:
            if expr.value:
                patches.append(self.emit(OP_JUMP, None))
            return
        patches.append(self.emit(OP_JT, None, self.expr(expr)))

    # -- expressions ---------------------------------------------------

    def expr(self, expr, raw: bool = False,
             dst: Optional[int] = None) -> int:
        """Lower ``expr``; returns the register holding its value.
        ``raw`` suppresses the final mode-case elimination (mcase-typed
        contexts); ``dst`` is a destination hint honoured by
        instruction-producing nodes (slot/const operands are returned
        as-is unless a MOVE is forced)."""
        cls = expr.__class__
        if cls is ast.IntLit or cls is ast.FloatLit \
                or cls is ast.StringLit or cls is ast.BoolLit:
            return self._into(dst, self.const(expr.value))
        if cls is ast.NullLit:
            return self._into(dst, self.const(None))
        if cls is ast.Var:
            return self._expr_var(expr, raw, dst)
        if cls is ast.Binary:
            return self._expr_binary(expr, dst)
        if cls is ast.MethodCall:
            return self._expr_call(expr, raw, dst)
        if cls is ast.This:
            dest = self.temp() if dst is None else dst
            self.emit(OP_LOAD_THIS, dest)
            return dest
        if cls is ast.FieldAccess:
            obj = self.expr(expr.obj)
            dest = self.temp() if dst is None else dst
            self.emit(OP_GETF_RAW if raw else OP_GETF, dest, expr.name,
                      obj)
            return dest
        if cls is ast.New:
            return self._expr_new(expr, dst)
        if cls is ast.Snapshot:
            src = self.expr(expr.expr)
            bounds = (getattr(expr, "resolved_bounds", None)
                      or (BOTTOM, TOP))
            dest = self.temp() if dst is None else dst
            if expr.elide_bound:
                snap_op = OP_SNAPSHOT_ELIDE
            elif self.transient:
                snap_op = OP_SNAPSHOT_SHALLOW
            else:
                snap_op = OP_SNAPSHOT
            self.emit(snap_op, dest, src, bounds, expr.span)
            return dest
        if cls is ast.Cast:
            src = self.expr(expr.expr)
            target = getattr(expr, "resolved_target", None)
            if target is None:
                self.emit(OP_CAST_ERR, src)
                return src
            dest = self.temp() if dst is None else dst
            self.emit(OP_CAST, dest, src, target)
            return dest
        if cls is ast.MCaseExpr:
            spec = tuple(
                (None if b.mode_name is None else Mode(b.mode_name),
                 self.expr(b.expr))
                for b in expr.branches)
            built = self.temp()
            self.emit(OP_MCASE_BUILD, built, spec)
            if raw:
                return self._into(dst, built)
            dest = self.temp() if dst is None else dst
            self.emit(OP_MCASE_DISPATCH, dest, built)
            return dest
        if cls is ast.MSelect:
            src = self.expr(expr.expr, raw=True)
            atom = getattr(expr, "resolved_mode", expr.mode_name)
            dest = self.temp() if dst is None else dst
            self.emit(OP_MSELECT, dest, src, atom)
            return dest
        if cls is ast.Unary:
            src = self.expr(expr.expr)
            dest = self.temp() if dst is None else dst
            self.emit(OP_NEG if expr.op == "-" else OP_NOT, dest, src)
            return dest
        if cls is ast.ListLit:
            regs = tuple(self.expr(e) for e in expr.elements)
            dest = self.temp() if dst is None else dst
            self.emit(OP_LIST_BUILD, dest, regs)
            return dest
        if cls is ast.InstanceOf:
            src = self.expr(expr.expr)
            dest = self.temp() if dst is None else dst
            self.emit(OP_INSTANCEOF, dest, src, expr.class_name)
            return dest
        raise StuckError(  # pragma: no cover
            f"cannot lower expression {type(expr).__name__}")

    def _into(self, dst, reg) -> int:
        if dst is None or dst == reg:
            return reg
        self.emit(OP_MOVE, dst, reg)
        return dst

    def _expr_var(self, expr, raw, dst) -> int:
        name = expr.name
        slot = self.names.get(name)
        if slot is not None:
            if raw or slot not in self.mcase_slots:
                return self._into(dst, slot)
            dest = self.temp() if dst is None else dst
            self.emit(OP_MCASE_DISPATCH, dest, slot)
            return dest
        kind = expr.resolved_kind
        if kind == "field":
            dest = self.temp() if dst is None else dst
            self.emit(OP_GETF_THIS_RAW if raw else OP_GETF_THIS, dest,
                      name)
            return dest
        if kind == "mode":
            mode = self.interp._mode_by_name.get(name)
            if mode is not None:
                return self._into(dst, self.const(mode))
        elif kind == "native":
            dest = self.temp() if dst is None else dst
            self.emit(OP_LOAD_NATIVE, dest, name)
            return dest
        dest = self.temp() if dst is None else dst
        self.emit(OP_VAR_DYN_RAW if raw else OP_VAR_DYN, dest, name)
        return dest

    def _expr_binary(self, expr, dst) -> int:
        op = expr.op
        if op in ("&&", "||"):
            return self._bool_value(expr, dst)
        value_op = _BINOP_MAP.get(op)
        if value_op is None:  # pragma: no cover - parser rejects
            raise StuckError(f"unknown operator {op!r}")
        left = self.expr(expr.left)
        right = self.expr(expr.right)
        dest = self.temp() if dst is None else dst
        self.emit(value_op, dest, left, right)
        return dest

    def _bool_value(self, expr, dst) -> int:
        dest = self.temp() if dst is None else dst
        false_patches: List[int] = []
        self.cond_false(expr, false_patches)
        self.emit(OP_MOVE, dest, self.const(True))
        end = self.emit(OP_JUMP, None)
        self.patch(false_patches)
        self.emit(OP_MOVE, dest, self.const(False))
        self.patch([end])
        return dest

    def _expr_new(self, expr, dst) -> int:
        resolved = getattr(expr, "resolved_type", None)
        if resolved == ty.LIST:
            dest = self.temp() if dst is None else dst
            self.emit(OP_NEW_LIST, dest)
            return dest
        if resolved is None:
            raise StuckError("new-expression was not typechecked")
        info = self.interp.table.get(resolved.class_name)
        arg_regs = tuple(self.expr(a) for a in expr.args)
        dest = self.temp() if dst is None else dst
        self.emit(OP_NEW, dest, (info, resolved.mode_args, expr.span),
                  arg_regs)
        return dest

    def _expr_call(self, expr, raw, dst) -> int:
        receiver = expr.receiver
        # Statically-known native receiver (``Sys.print`` & co, not
        # shadowed by a local): skip the generic send machinery.
        if (receiver is not None and receiver.__class__ is ast.Var
                and receiver.resolved_kind == "native"
                and self.names.get(receiver.name) is None):
            arg_regs = tuple(self.expr(a) for a in expr.args)
            dest = self.temp() if dst is None else dst
            self.emit(OP_CALL_NATIVE, dest,
                      (receiver.name, expr.name), arg_regs)
            return dest
        if receiver is None or receiver.__class__ is ast.This:
            recv_reg: Optional[int] = None
            recv_is_this = True
        else:
            recv_reg = self.expr(receiver)
            recv_is_this = False
        pairs = [self._arg(a) for a in expr.args]
        site = CallSite(expr.name, expr.span,
                        tuple(p[0] for p in pairs),
                        tuple(p[1] for p in pairs),
                        expr.elide_dfall, recv_is_this, raw)
        dest = self.temp() if dst is None else dst
        if expr.elide_dfall:
            call_op = OP_CALL_NODFALL
        elif self.transient:
            call_op = OP_CALL_SHALLOW
        else:
            call_op = OP_CALL_DFALL
        self.emit(call_op, dest, site, recv_reg)
        return dest

    def _arg(self, expr) -> Tuple[int, Optional[int]]:
        """Lower a call argument *raw* plus its deferred-elimination
        descriptor (see :attr:`CallSite.arg_elims`).  Whether the value
        is eliminated depends on the resolved method's parameter type,
        which is only known at the send."""
        cls = expr.__class__
        if cls in _NEVER_MCASE:
            return self.expr(expr), None
        if cls is ast.Var:
            name = expr.name
            slot = self.names.get(name)
            if slot is not None:
                if slot in self.mcase_slots:
                    return slot, -1
                return slot, None
            kind = expr.resolved_kind
            if kind == "field":
                dest = self.temp()
                owner = self.temp()
                self.emit(OP_GETF_THIS_ARG, dest, name, owner)
                return dest, owner
            if kind == "mode":
                mode = self.interp._mode_by_name.get(name)
                if mode is not None:
                    return self.const(mode), None
            elif kind == "native":
                dest = self.temp()
                self.emit(OP_LOAD_NATIVE, dest, name)
                return dest, None
            dest = self.temp()
            owner = self.temp()
            self.emit(OP_VAR_DYN_ARG, dest, name, owner)
            return dest, owner
        if cls is ast.FieldAccess:
            obj = self.expr(expr.obj)
            dest = self.temp()
            owner = self.temp()
            self.emit(OP_GETF_ARG, dest, expr.name, obj, owner)
            return dest, owner
        if cls is ast.MSelect:
            # mselect results are already eliminated.
            return self.expr(expr), None
        # MethodCall / MCaseExpr / Cast: raw value, eliminate (when the
        # parameter is not mcase-typed) at the caller's current mode.
        return self.expr(expr, raw=True), -1


def lower_body(interp, block, param_names, wants=(),
               name: Optional[str] = None) -> VMCode:
    """Lower a method/constructor/attributor body.  ``wants`` marks the
    mcase-typed parameters (their slots may hold raw MCaseV values)."""
    lowering = _Lowering(interp)
    for index, pname in enumerate(param_names):
        slot = lowering.alloc()
        lowering.names[pname] = slot
        if index < len(wants) and wants[index]:
            lowering.mcase_slots.add(slot)
    lowering.stmt(block)
    return lowering.finish(len(param_names), name, param_names)


def lower_expr(interp, expr, want_mcase: bool = False,
               name: Optional[str] = None) -> VMCode:
    """Lower a standalone expression (field initializers)."""
    lowering = _Lowering(interp)
    reg = lowering.expr(expr, raw=want_mcase)
    lowering.emit(OP_RETURN, reg)
    return lowering.finish(0, name, ())


# ---------------------------------------------------------------------------
# Profiling instrumentation (``repro profile --engine vm``)

#: Opcodes whose first operand is an instruction index.
_JUMP_OPS = (OP_JUMP, OP_JF, OP_JT, OP_JF_LT, OP_JF_LE, OP_JF_GT,
             OP_JF_GE, OP_JF_EQ, OP_JF_NE, OP_FOREACH_ITER,
             OP_PUSH_HANDLER)


def instrument(code: VMCode) -> VMCode:
    """Weave a ``PROFILE`` pre-instruction before every instruction.

    Old instruction ``i`` lands at ``2*i + 1`` with its ``PROFILE`` at
    ``2*i``; jump targets are remapped ``t -> 2*t`` so every jump lands
    on the target's ``PROFILE`` first and the landing is counted.  The
    uninstrumented dispatch loop never sees ``PROFILE`` (the VM only
    instruments bodies it lowers while the profiler is enabled), so
    disabled-profiling cost is exactly zero.
    """
    instrs = []
    for inst in code.instrs:
        op = inst[0]
        instrs.append((OP_PROFILE, "op." + OP_NAMES[op]))
        if op in _JUMP_OPS and inst[1] is not None:
            inst = (op, inst[1] * 2) + inst[2:]
        instrs.append(inst)
    return VMCode(tuple(instrs), list(code.template), code.nparams,
                  code.n_slots, code.consts, code.name,
                  code.param_names)


# ---------------------------------------------------------------------------
# Disassembler (``repro disasm``)

#: Check-instruction annotations appended by the disassembler; keeping
#: the analysis handoff visible is the point of ``repro disasm``.
_CHECK_NOTES = {
    OP_CALL_DFALL: ";; DFALL_CHECK",
    OP_CALL_NODFALL: ";; DFALL_CHECK elided by repro.analysis",
    OP_CALL_SHALLOW: ";; DFALL_CHECK (transient: shallow tag probe)",
    OP_SNAPSHOT: ";; BOUND_CHECK",
    OP_SNAPSHOT_ELIDE: ";; BOUND_CHECK elided by repro.analysis",
    OP_SNAPSHOT_SHALLOW:
        ";; BOUND_CHECK (transient: tag-vs-bounds probe)",
    OP_MCASE_DISPATCH: ";; MCASE_DISPATCH (implicit elimination)",
}


def _render_operand(code: VMCode, value) -> str:
    if isinstance(value, int) and not isinstance(value, bool):
        if value < 0:
            return f"k{-value - 1}={code.consts[-value - 1]!r}"
        return f"r{value}"
    if isinstance(value, CallSite):
        regs = ", ".join(_render_operand(code, r)
                         for r in value.arg_regs)
        return f".{value.name}({regs})"
    if isinstance(value, tuple):
        return "(" + ", ".join(_render_operand(code, v)
                               for v in value) + ")"
    if value is None:
        return "this"
    return repr(value)


def disassemble(code: VMCode) -> str:
    """Pretty-print a lowered body with check-instruction annotations."""
    header = (f"; {code.name or '<anonymous>'} "
              f"params={list(code.param_names)} "
              f"slots={code.n_slots} consts={len(code.consts)}")
    lines = [header]
    jump_ops = _JUMP_OPS
    for index, inst in enumerate(code.instrs):
        op = inst[0]
        parts = [OP_NAMES.get(op, f"OP<{op}>")]
        operands = list(inst[1:])
        if op in jump_ops and operands:
            parts.append(f"->{operands[0]}")
            operands = operands[1:]
        if op == OP_INC:
            # (slot, delta, op, lit): only the slot is a register.
            parts.append(_render_operand(code, operands[0]))
            parts.extend(repr(value) for value in operands[1:])
        else:
            parts.extend(_render_operand(code, value)
                         for value in operands)
        line = f"  {index:4d}  " + " ".join(parts)
        note = _CHECK_NOTES.get(op)
        if note:
            line = f"{line:<52s} {note}"
        lines.append(line)
    return "\n".join(lines)
