"""A regex-driven lexer for the ENT surface language.

Supports Java-style ``//`` and ``/* */`` comments, decimal integer and
floating literals, double-quoted strings with the usual escapes, and the
operator set listed in :mod:`repro.lang.tokens`.

The scanner is a single master regular expression applied in a tight
loop — one match per token or trivia run — rather than a per-character
state machine.  Line/column bookkeeping happens only when a matched chunk
actually contains a newline, which makes lexing the cheapest stage of the
pipeline instead of the one that dominated typechecking wall-clock.
String literals take a slow path so escape validation and the error spans
stay exactly as before.
"""

from __future__ import annotations

import re
from typing import Iterator, List, Tuple

from repro.core.errors import EntSyntaxError, SourceSpan
from repro.lang.tokens import KEYWORDS, Token, TokenKind

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    '"': '"',
    "\\": "\\",
    "'": "'",
    "0": "\0",
}

#: Operator spellings mapped to kinds; multi-character operators appear
#: before their prefixes in the master pattern below.
_OPERATOR_KINDS = {
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "==": TokenKind.EQ,
    "!=": TokenKind.NE,
    "&&": TokenKind.AND,
    "||": TokenKind.OR,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    ":": TokenKind.COLON,
    "@": TokenKind.AT,
    "?": TokenKind.QUESTION,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "!": TokenKind.NOT,
}

#: One alternation per lexical category.  Trivia (whitespace/comments)
#: uses unnamed groups so ``lastgroup`` is ``None`` for it.  The number
#: pattern only commits to a fraction/exponent when the characters after
#: ``.``/``e`` make it one, mirroring the old hand-rolled scanner (so
#: ``1.foo`` lexes as INT DOT IDENT and ``2e`` as INT IDENT).
_MASTER = re.compile(
    r"""[ \t\r\n]+
      | //[^\n]*
      | /\*(?:[^*]|\*(?!/))*\*/
      | (?P<num>\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
      | (?P<word>(?:[^\W\d]|\$)[\w$]*)
      | (?P<op><=|>=|==|!=|&&|\|\||[{}()\[\];,.:@?=+\-*/%<>!])
    """,
    re.VERBOSE,
)


class Lexer:
    """Tokenizes ENT source text."""

    def __init__(self, source: str, filename: str = "<ent>") -> None:
        self._source = source
        self._filename = filename

    # ------------------------------------------------------------------

    def tokenize(self) -> List[Token]:
        """Produce the full token stream, ending with an EOF token."""
        source = self._source
        filename = self._filename
        tokens: List[Token] = []
        append = tokens.append
        match = _MASTER.match
        keyword = KEYWORDS.get
        operators = _OPERATOR_KINDS
        size = len(source)
        pos = 0
        line = 1
        line_start = 0  # offset of the first character of `line`
        while pos < size:
            m = match(source, pos)
            if m is None:
                span = SourceSpan(line, pos - line_start + 1,
                                  filename=filename)
                ch = source[pos]
                if ch == '"':
                    token, pos = self._lex_string(pos, line, line_start,
                                                  span)
                    append(token)
                    continue
                raise EntSyntaxError(f"unexpected character {ch!r}", span)
            start = pos
            pos = m.end()
            # Group indices: 1 = num, 2 = word, 3 = op; None = trivia
            # (the trivia alternatives carry no capturing groups).
            group = m.lastindex
            if group is None:
                # Whitespace or a comment; the only chunks that may span
                # lines, so this is the only newline bookkeeping needed.
                # Offset-based rfind/count avoid slicing the trivia run.
                newline = source.rfind("\n", start, pos)
                if newline >= 0:
                    line += source.count("\n", start, pos)
                    line_start = newline + 1
                continue
            text = source[start:pos]
            span = SourceSpan(line, start - line_start + 1,
                              filename=filename)
            if group == 2:  # word
                if text == "_":
                    append(Token(TokenKind.UNDERSCORE, text, span))
                else:
                    append(Token(keyword(text, TokenKind.IDENT), text,
                                 span))
            elif group == 3:  # operator
                if text == "/" and source.startswith("*", pos):
                    # A '/' directly followed by '*' only survives the
                    # master pattern when the block comment never closes.
                    raise EntSyntaxError("unterminated block comment",
                                         span)
                append(Token(operators[text], text, span))
            else:  # number
                if "." in text or "e" in text or "E" in text:
                    append(Token(TokenKind.FLOAT, text, span, float(text)))
                else:
                    append(Token(TokenKind.INT, text, span, int(text)))
        append(Token(TokenKind.EOF, "",
                     SourceSpan(line, pos - line_start + 1,
                                filename=filename)))
        return tokens

    def __iter__(self) -> Iterator[Token]:
        return iter(self.tokenize())

    # ------------------------------------------------------------------

    def _lex_string(self, pos: int, line: int, line_start: int,
                    span: SourceSpan) -> Tuple[Token, int]:
        """Scan a string literal starting at the opening quote."""
        source = self._source
        size = len(source)
        pos += 1  # opening quote
        chars: List[str] = []
        while True:
            if pos >= size or source[pos] == "\n":
                raise EntSyntaxError("unterminated string literal", span)
            ch = source[pos]
            if ch == '"':
                pos += 1
                break
            if ch == "\\":
                escape = source[pos + 1] if pos + 1 < size else ""
                if escape not in _ESCAPES:
                    raise EntSyntaxError(
                        f"invalid escape sequence \\{escape}",
                        SourceSpan(line, pos - line_start + 1,
                                   filename=self._filename))
                chars.append(_ESCAPES[escape])
                pos += 2
            else:
                chars.append(ch)
                pos += 1
        value = "".join(chars)
        return Token(TokenKind.STRING, f'"{value}"', span, value), pos


def tokenize(source: str, filename: str = "<ent>") -> List[Token]:
    """Convenience wrapper: tokenize ``source`` into a list of tokens."""
    return Lexer(source, filename).tokenize()
