"""A hand-written lexer for the ENT surface language.

Supports Java-style ``//`` and ``/* */`` comments, decimal integer and
floating literals, double-quoted strings with the usual escapes, and the
operator set listed in :mod:`repro.lang.tokens`.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.core.errors import EntSyntaxError, SourceSpan
from repro.lang.tokens import KEYWORDS, Token, TokenKind

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    '"': '"',
    "\\": "\\",
    "'": "'",
    "0": "\0",
}

# Multi-character operators must be tried longest-first.
_OPERATORS = [
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("==", TokenKind.EQ),
    ("!=", TokenKind.NE),
    ("&&", TokenKind.AND),
    ("||", TokenKind.OR),
    ("{", TokenKind.LBRACE),
    ("}", TokenKind.RBRACE),
    ("(", TokenKind.LPAREN),
    (")", TokenKind.RPAREN),
    ("[", TokenKind.LBRACKET),
    ("]", TokenKind.RBRACKET),
    (";", TokenKind.SEMI),
    (",", TokenKind.COMMA),
    (".", TokenKind.DOT),
    (":", TokenKind.COLON),
    ("@", TokenKind.AT),
    ("?", TokenKind.QUESTION),
    ("=", TokenKind.ASSIGN),
    ("+", TokenKind.PLUS),
    ("-", TokenKind.MINUS),
    ("*", TokenKind.STAR),
    ("/", TokenKind.SLASH),
    ("%", TokenKind.PERCENT),
    ("<", TokenKind.LT),
    (">", TokenKind.GT),
    ("!", TokenKind.NOT),
]


class Lexer:
    """Tokenizes ENT source text."""

    def __init__(self, source: str, filename: str = "<ent>") -> None:
        self._source = source
        self._filename = filename
        self._pos = 0
        self._line = 1
        self._column = 1

    # ------------------------------------------------------------------

    def tokenize(self) -> List[Token]:
        """Produce the full token stream, ending with an EOF token."""
        return list(self)

    def __iter__(self) -> Iterator[Token]:
        while True:
            token = self._next_token()
            yield token
            if token.kind is TokenKind.EOF:
                return

    # ------------------------------------------------------------------

    def _span(self) -> SourceSpan:
        return SourceSpan(self._line, self._column, filename=self._filename)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index < len(self._source):
            return self._source[index]
        return ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self._source):
                return
            ch = self._source[self._pos]
            self._pos += 1
            if ch == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1

    def _skip_trivia(self) -> None:
        while self._pos < len(self._source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._pos < len(self._source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._span()
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self._pos >= len(self._source):
                        raise EntSyntaxError("unterminated block comment",
                                             start)
                    self._advance()
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        span = self._span()
        if self._pos >= len(self._source):
            return Token(TokenKind.EOF, "", span)

        ch = self._peek()
        if ch.isdigit():
            return self._lex_number(span)
        if ch == '"':
            return self._lex_string(span)
        if ch.isalpha() or ch == "_" or ch == "$":
            return self._lex_word(span)

        for text, kind in _OPERATORS:
            if self._source.startswith(text, self._pos):
                self._advance(len(text))
                return Token(kind, text, span)

        raise EntSyntaxError(f"unexpected character {ch!r}", span)

    def _lex_number(self, span: SourceSpan) -> Token:
        start = self._pos
        while self._peek().isdigit():
            self._advance()
        is_float = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() and self._peek() in "eE" and (
                self._peek(1).isdigit()
                or (self._peek(1) and self._peek(1) in "+-"
                    and self._peek(2).isdigit())):
            is_float = True
            self._advance()
            if self._peek() and self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self._source[start:self._pos]
        if is_float:
            return Token(TokenKind.FLOAT, text, span, float(text))
        return Token(TokenKind.INT, text, span, int(text))

    def _lex_string(self, span: SourceSpan) -> Token:
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            ch = self._peek()
            if not ch or ch == "\n":
                raise EntSyntaxError("unterminated string literal", span)
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                escape = self._peek(1)
                if escape not in _ESCAPES:
                    raise EntSyntaxError(
                        f"invalid escape sequence \\{escape}", self._span())
                chars.append(_ESCAPES[escape])
                self._advance(2)
            else:
                chars.append(ch)
                self._advance()
        value = "".join(chars)
        return Token(TokenKind.STRING, f'"{value}"', span, value)

    def _lex_word(self, span: SourceSpan) -> Token:
        start = self._pos
        while True:
            ch = self._peek()
            if not ch or not (ch.isalnum() or ch in "_$"):
                break
            self._advance()
        text = self._source[start:self._pos]
        if text == "_":
            return Token(TokenKind.UNDERSCORE, text, span)
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        return Token(kind, text, span)


def tokenize(source: str, filename: str = "<ent>") -> List[Token]:
    """Convenience wrapper: tokenize ``source`` into a list of tokens."""
    return Lexer(source, filename).tokenize()
