"""ent-lint: static checking for embedded-ENT Python code.

The embedded runtime checks the waterfall invariant *dynamically*.
This module recovers a useful slice of ENT's *static* half for Python
host code — the part a mypy plugin would provide, without the plugin
machinery.  It analyzes a module's source with :mod:`ast` and reports:

* **E001 message-before-snapshot** — a variable bound to a dynamic-class
  construction (``x = Agent(...)``) is messaged before any
  ``rt.snapshot(x)`` rebinds or tags it (the static error
  "cannot message an object of dynamic mode; snapshot it first").
* **E002 static waterfall violation** — inside ``with rt.booted("m")``
  blocks with a literal mode, messaging a variable bound to a
  ``@rt.static("m2")`` instance where ``m2 <= m`` does not hold in the
  module's mode lattice.  The lattice is recovered from the source
  (``EntRuntime.standard()``, ``EntRuntime.thermal()``,
  ``ModeLattice.linear([...])`` with literal names), so the check
  works for any declared lattice; without a recognizable declaration
  the two built-in lattices are assumed.
* **E003 unused snapshot** — a ``rt.snapshot(...)`` result that is
  discarded (the tagged copy is lost; the original stays dynamic).
* **W101 snapshot-unbounded in bounded context** — a snapshot without
  bounds assigned inside a ``booted`` block, where a bad-check handler
  cannot fire (advisory; mirrors section 6.3's debugging walkthrough).

The lint is intraprocedural and conservative: it only reports when the
decorator/construction/messaging chain is syntactically evident, so
every finding is actionable.  It is available as an API
(:func:`lint_source`, :func:`lint_file`) and powers
``python -m repro lint`` via :mod:`repro.cli`.
"""

from __future__ import annotations

import ast as pyast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.modes import Mode, ModeLattice

__all__ = ["LintFinding", "lint_source", "lint_file"]


@dataclass(frozen=True)
class LintFinding:
    code: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.line}: {self.code} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {"code": self.code, "line": self.line,
                "message": self.message}


def _literal_strings(node: pyast.expr) -> Optional[List[str]]:
    if isinstance(node, (pyast.List, pyast.Tuple)):
        out: List[str] = []
        for element in node.elts:
            if isinstance(element, pyast.Constant) and \
                    isinstance(element.value, str):
                out.append(element.value)
            else:
                return None
        return out if out else None
    return None


def _fallback_lattices() -> List[ModeLattice]:
    from repro.runtime.embedded import STANDARD_MODES, THERMAL_MODES
    return [ModeLattice.linear(list(STANDARD_MODES)),
            ModeLattice.linear(list(THERMAL_MODES))]


def _detect_lattices(tree: pyast.AST) -> List[ModeLattice]:
    """Recover the mode lattice(s) the module declares.

    Recognizes ``EntRuntime.standard()`` / ``EntRuntime.thermal()`` and
    literal ``ModeLattice.linear([...])`` expressions.  Falls back to
    the two built-in lattices when nothing is recognizable, keeping the
    lint useful on partial files.
    """
    lattices: List[ModeLattice] = []
    for node in pyast.walk(tree):
        if not isinstance(node, pyast.Call):
            continue
        func = node.func
        if not (isinstance(func, pyast.Attribute)
                and isinstance(func.value, pyast.Name)):
            continue
        owner = func.value.id
        if owner == "EntRuntime" and func.attr in ("standard", "thermal"):
            from repro.runtime.embedded import (STANDARD_MODES,
                                                THERMAL_MODES)
            names = (STANDARD_MODES if func.attr == "standard"
                     else THERMAL_MODES)
            lattices.append(ModeLattice.linear(list(names)))
        elif owner == "ModeLattice" and func.attr == "linear" \
                and node.args:
            names = _literal_strings(node.args[0])
            if names is not None:
                lattices.append(ModeLattice.linear(names))
    return lattices if lattices else _fallback_lattices()


def _decorator_kind(node: pyast.ClassDef) -> Tuple[Optional[str],
                                                   Optional[str]]:
    """Classify a class decorated with the embedded API.

    Returns ``("dynamic", None)``, ``("static", mode_literal_or_None)``,
    or ``(None, None)`` for unmanaged classes.
    """
    for decorator in node.decorator_list:
        # @rt.dynamic  or  @anything.dynamic
        if isinstance(decorator, pyast.Attribute) and \
                decorator.attr == "dynamic":
            return "dynamic", None
        if isinstance(decorator, pyast.Call):
            func = decorator.func
            if isinstance(func, pyast.Attribute):
                if func.attr == "dynamic":
                    return "dynamic", None
                if func.attr == "static":
                    mode = None
                    if decorator.args and isinstance(
                            decorator.args[0], pyast.Constant):
                        value = decorator.args[0].value
                        if isinstance(value, str):
                            mode = value
                    return "static", mode
    return None, None


def _is_snapshot_call(node: pyast.expr) -> bool:
    return (isinstance(node, pyast.Call)
            and isinstance(node.func, pyast.Attribute)
            and node.func.attr == "snapshot")


def _snapshot_has_bounds(node: pyast.Call) -> bool:
    if len(node.args) > 1:
        return True
    return any(kw.arg in ("lower", "upper") for kw in node.keywords)


def _booted_item(item: pyast.withitem) -> Tuple[bool, Optional[str]]:
    """``(is_booted, literal_mode)`` for a ``with`` item."""
    expr = item.context_expr
    if (isinstance(expr, pyast.Call)
            and isinstance(expr.func, pyast.Attribute)
            and expr.func.attr == "booted"):
        if expr.args and isinstance(expr.args[0], pyast.Constant) and \
                isinstance(expr.args[0].value, str):
            return True, expr.args[0].value
        return True, None
    return False, None


class _FunctionLinter(pyast.NodeVisitor):
    """Intraprocedural abstract interpretation of variable states."""

    def __init__(self, classes: Dict[str, Tuple[str, Optional[str]]],
                 findings: List[LintFinding],
                 lattices: Optional[List[ModeLattice]] = None) -> None:
        self.classes = classes
        self.findings = findings
        self.lattices = lattices if lattices is not None \
            else _fallback_lattices()
        #: var -> ("dynamic" | "snapshotted" | ("static", mode))
        self.state: Dict[str, object] = {}
        #: (inside a booted block?, literal boot mode if known)
        self.boot_stack: List[Tuple[bool, Optional[str]]] = [(False,
                                                              None)]

    # -- helpers -------------------------------------------------------

    def _construction_class(self,
                            node: pyast.expr) -> Optional[str]:
        if (isinstance(node, pyast.Call)
                and isinstance(node.func, pyast.Name)
                and node.func.id in self.classes):
            return node.func.id
        return None

    def _report(self, code: str, node: pyast.AST, message: str) -> None:
        self.findings.append(LintFinding(code, node.lineno, message))

    def _violates_waterfall(self, mode: str, boot: str) -> bool:
        """Does messaging a static-``mode`` object from a ``boot``-mode
        block violate the waterfall (``mode <= boot`` fails)?

        Decided against every detected lattice that declares both
        modes; undecidable pairs (unknown modes) never report.
        """
        decided = False
        a, b = Mode(mode), Mode(boot)
        for lattice in self.lattices:
            if a in lattice and b in lattice:
                if lattice.leq(a, b):
                    return False
                decided = True
        return decided

    # -- assignments ----------------------------------------------------

    def visit_Assign(self, node: pyast.Assign) -> None:
        self.visit(node.value)
        targets = [t.id for t in node.targets
                   if isinstance(t, pyast.Name)]
        cls = self._construction_class(node.value)
        if cls is not None:
            kind, mode = self.classes[cls]
            for name in targets:
                self.state[name] = ("dynamic" if kind == "dynamic"
                                    else ("static", mode))
            return
        if _is_snapshot_call(node.value):
            call = node.value
            if not _snapshot_has_bounds(call) and \
                    self.boot_stack[-1][0]:
                self._report(
                    "W101", node,
                    "unbounded snapshot inside a booted block: a "
                    "heavyweight attribution will only surface at the "
                    "next message; bound it with upper=... to fail "
                    "fast at the snapshot")
            for name in targets:
                self.state[name] = "snapshotted"
            return
        for name in targets:
            self.state.pop(name, None)

    def visit_Expr(self, node: pyast.Expr) -> None:
        if _is_snapshot_call(node.value):
            self._report(
                "E003", node,
                "snapshot result discarded: the mode-tagged copy is "
                "lost and the original object stays dynamic")
        self.generic_visit(node)

    # -- messaging -------------------------------------------------------

    def visit_Call(self, node: pyast.Call) -> None:
        func = node.func
        if isinstance(func, pyast.Attribute) and isinstance(
                func.value, pyast.Name):
            receiver = func.value.id
            state = self.state.get(receiver)
            if state == "dynamic" and func.attr not in (
                    "attributor",):
                self._report(
                    "E001", node,
                    f"messaging {receiver!r} before snapshot: its mode "
                    f"is still '?' and the call will raise "
                    f"EnergyException")
            elif (isinstance(state, tuple) and state[0] == "static"
                  and state[1] is not None):
                boot = self.boot_stack[-1][1]
                if boot is not None and \
                        self._violates_waterfall(state[1], boot):
                    self._report(
                        "E002", node,
                        f"waterfall violation: {receiver!r} has static "
                        f"mode {state[1]} but the enclosing booted "
                        f"block runs at {boot}")
        self.generic_visit(node)

    # -- control flow ------------------------------------------------------

    def visit_With(self, node: pyast.With) -> None:
        booted = False
        mode: Optional[str] = None
        for item in node.items:
            self.visit(item.context_expr)
            item_booted, item_mode = _booted_item(item)
            booted = booted or item_booted
            mode = item_mode if item_mode is not None else mode
        if booted:
            self.boot_stack.append((True, mode))
        else:
            self.boot_stack.append(self.boot_stack[-1])
        for stmt in node.body:
            self.visit(stmt)
        self.boot_stack.pop()

    def visit_If(self, node: pyast.If) -> None:
        # Branches are analyzed with a copy; states that survive both
        # arms unchanged are kept, anything else is forgotten
        # (conservative join).
        self.visit(node.test)
        before = dict(self.state)
        for stmt in node.body:
            self.visit(stmt)
        after_then = self.state
        self.state = dict(before)
        for stmt in node.orelse:
            self.visit(stmt)
        after_else = self.state
        self.state = {name: value
                      for name, value in after_then.items()
                      if after_else.get(name) == value}

    def visit_FunctionDef(self, node: pyast.FunctionDef) -> None:
        # Nested functions get a fresh scope.
        nested = _FunctionLinter(self.classes, self.findings,
                                 self.lattices)
        for stmt in node.body:
            nested.visit(stmt)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: pyast.ClassDef) -> None:
        # Method bodies inside managed classes are messaging *self*,
        # which the internal view always allows; skip them.
        return


def lint_source(source: str,
                filename: str = "<string>") -> List[LintFinding]:
    """Lint Python source using the embedded ENT API."""
    tree = pyast.parse(source, filename=filename)
    classes: Dict[str, Tuple[str, Optional[str]]] = {}
    for node in pyast.walk(tree):
        if isinstance(node, pyast.ClassDef):
            kind, mode = _decorator_kind(node)
            if kind is not None:
                classes[node.name] = (kind, mode)
    findings: List[LintFinding] = []
    linter = _FunctionLinter(classes, findings,
                             _detect_lattices(tree))
    for stmt in tree.body:
        linter.visit(stmt)
    findings.sort(key=lambda f: (f.line, f.code))
    return findings


def lint_file(path: str) -> List[LintFinding]:
    with open(path, "r", encoding="utf-8") as handle:
        return lint_source(handle.read(), filename=path)
