"""Embedded ENT: the paper's abstractions for plain Python programs.

The full ENT language (with its *static* half of mixed typechecking)
lives in :mod:`repro.lang`.  Porting multi-hundred-KLoC applications
onto a tree-walking interpreter is not realistic, and statically
checking host-language (Python) code would need a type-checker plugin —
exactly the friction the reproduction notes anticipate.  This module
therefore provides ENT's *dynamic* half as an embedded API: modes,
attributors, snapshot (with bounds and the EnergyException), mode cases
and the waterfall invariant, all checked at run time with the same
semantics as the interpreter.  The paper's 15 benchmarks are written
against this API.

Example::

    rt = EntRuntime.standard(platform)

    @rt.dynamic
    class Agent:
        def attributor(self):
            if rt.ext.battery() >= 0.75:
                return "full_throttle"
            ...
        def work(self, site): ...

    da = Agent()
    agent = rt.snapshot(da)                      # attributor decides
    with rt.booted(agent):                       # boot-mode closure
        agent.work(site)                         # waterfall-checked

Dynamic classes must define an ``attributor`` method returning a mode
(name or :class:`Mode`).  ``ModeCase`` is a descriptor: reading it from
an instance eliminates on the instance's mode (the paper's implicit
mode-case elimination).
"""

from __future__ import annotations

import copy
import functools
from contextlib import contextmanager
from dataclasses import dataclass, field
from dataclasses import fields as dataclass_fields
from typing import Dict, Optional, Tuple, Union

from repro.core.errors import EnergyException, EntError
from repro.core.modes import BOTTOM, TOP, Mode, ModeLattice
from repro.obs.events import (AttributorEvent, DfallCheckEvent,
                              MCaseElimEvent, SnapshotEvent, mode_name)
from repro.obs.prof import NULL_PROFILER
from repro.obs.tracer import NULL_TRACER, attach_platform
from repro.runtime.ext import Ext
from repro.runtime.tagging import TAG_ATTR, ObjectTag, ensure_tag, get_tag

__all__ = ["EmbeddedDeviceState", "EntRuntime", "ModeCase",
           "RuntimeStats", "STANDARD_MODES", "THERMAL_MODES"]

#: The battery-mode chain used across the paper's benchmarks.
STANDARD_MODES = ("energy_saver", "managed", "full_throttle")

#: The temperature-mode chain used by the E3 experiments.
THERMAL_MODES = ("overheating", "hot", "safe")

ModeLike = Union[Mode, str]


@dataclass
class RuntimeStats:
    """Counters mirroring :class:`repro.lang.interp.InterpStats`."""

    messages: int = 0
    dfall_checks: int = 0
    #: Dfall checks answered from the verdict memo instead of a fresh
    #: lattice comparison.  The memo is the embedded runtime's dynamic
    #: fallback for check elision: the ENT-language planner proves
    #: checks away statically, while the embedded API (no static
    #: types) amortizes repeated (guard, sender) verdicts at run time.
    dfall_memo_hits: int = 0
    snapshots: int = 0
    copies: int = 0
    lazy_tags: int = 0
    bound_checks: int = 0
    energy_exceptions: int = 0
    mcase_elims: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name)
                for f in dataclass_fields(self)}

    def reset(self) -> None:
        for f in dataclass_fields(self):
            setattr(self, f.name, f.default)


@dataclass
class EmbeddedDeviceState:
    """The per-device slice of an :class:`EntRuntime`, picklable.

    A fleet shard keeps ONE runtime (the shared immutable config: the
    mode lattice, the dfall verdict memo, the instrumented classes and
    their mode-case tables) and swaps this struct per simulated
    device.  It captures exactly what varies device to device: the
    closure-mode stack, the stats counters, and the mode tag of the
    device's agent object.  Mode objects travel as names — they are
    interned, so restore reconstructs identical instances.
    """

    #: Closure-mode stack as mode names, bottom (boot ``$top``) first.
    mode_stack: Tuple[str, ...]
    #: Stats counter values in :class:`RuntimeStats` field order.
    stats: Tuple[int, ...]
    #: The agent object's snapshot tag (None = un-snapshotted ``?``).
    agent_mode: Optional[str] = None
    agent_is_snapshot: bool = False
    agent_snap_tagged: bool = False


class EntRuntime:
    """The embedded ENT runtime: lattice + mode context + checking.

    Parameters mirror the interpreter's options: ``silent`` suppresses
    ``EnergyException`` (the E1 "silent" build — tagging stays in
    place), ``baseline`` disables tagging bookkeeping and checks
    entirely (the Figure-6 overhead baseline), ``lazy_copy`` enables the
    section-5 copy optimization.
    """

    def __init__(self, lattice: ModeLattice, platform=None,
                 silent: bool = False, baseline: bool = False,
                 lazy_copy: bool = True, tracer=None,
                 profiler=None) -> None:
        self.lattice = lattice
        self.ext = Ext(platform)
        self.silent = silent
        self.baseline = baseline
        self.lazy_copy = lazy_copy
        self.stats = RuntimeStats()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Check sites in the embedded API have no source spans, so the
        # profiler keys them symbolically (``dfall@Class.method``) —
        # counted and timed, but outside static-vs-observed's scope.
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        if platform is not None:
            attach_platform(self.tracer, platform)
        self._mode_stack = [TOP]
        self._self_stack = [None]
        # (receiver mode, sender mode) -> waterfall verdict.  The
        # lattice is fixed at construction, so entries never invalidate;
        # only the verdict is memoized — stats, tracer events and the
        # EnergyException path below are identical with a cold cache
        # (see docs/PERFORMANCE.md).
        self._dfall_cache: Dict[Tuple[Mode, Mode], bool] = {}

    # ------------------------------------------------------------------
    # Construction helpers

    @classmethod
    def standard(cls, platform=None, **kwargs) -> "EntRuntime":
        """A runtime over the es <= managed <= full_throttle chain."""
        return cls(ModeLattice.linear(list(STANDARD_MODES)),
                   platform=platform, **kwargs)

    @classmethod
    def thermal(cls, platform=None, **kwargs) -> "EntRuntime":
        """A runtime over the overheating <= hot <= safe chain.

        ``safe`` is the *greatest* mode: the cooler the CPU, the more
        work the program may boot."""
        return cls(ModeLattice.linear(list(THERMAL_MODES)),
                   platform=platform, **kwargs)

    @property
    def platform(self):
        return self.ext.platform

    def bind_platform(self, platform) -> None:
        self.ext.bind(platform)
        attach_platform(self.tracer, platform)

    def mode(self, name: ModeLike) -> Mode:
        mode = Mode(name) if isinstance(name, str) else name
        return self.lattice.require(mode)

    # ------------------------------------------------------------------
    # Mode context (the current closure mode)

    @property
    def current_mode(self) -> Mode:
        return self._mode_stack[-1]

    @contextmanager
    def booted(self, obj_or_mode):
        """Run a block in the mode of ``obj_or_mode`` (the boot mode).

        Typically used with a freshly snapshotted "entry" object (the
        paper's Agent): all messaging inside the block is waterfall-
        checked against this mode.
        """
        if isinstance(obj_or_mode, (Mode, str)):
            mode = self.mode(obj_or_mode)
        else:
            tag = get_tag(obj_or_mode)
            if tag is None or tag.mode is None:
                raise EnergyException(
                    "cannot boot from an un-snapshotted dynamic object")
            mode = tag.mode
        traced = self.tracer.enabled
        if traced:
            self.tracer.mode_transition("closure", self.current_mode, mode)
        self._mode_stack.append(mode)
        self._self_stack.append(None)
        try:
            yield mode
        finally:
            self._mode_stack.pop()
            self._self_stack.pop()
            if traced:
                self.tracer.mode_transition("closure", mode,
                                            self.current_mode)

    # ------------------------------------------------------------------
    # Class decorators

    def dynamic(self, cls=None):
        """Class decorator: a dynamic ENT class (``@mode<?>``).

        The class must define an ``attributor(self)`` method returning
        a mode.  Instances start at mode ``?`` and acquire a concrete
        mode via :meth:`snapshot`.
        """
        def apply(target):
            if not hasattr(target, "attributor"):
                raise EntError(
                    f"dynamic class {target.__name__} must define an "
                    f"attributor method")
            return self._instrument(target, dynamic=True, fixed=None)

        return apply if cls is None else apply(cls)

    def static(self, mode_name: ModeLike):
        """Class decorator: a fixed-mode ENT class (``@mode<m>``)."""
        fixed = self.mode(mode_name)

        def apply(target):
            if hasattr(target, "attributor"):
                raise EntError(
                    f"fixed-mode class {target.__name__} must not define "
                    f"an attributor")
            return self._instrument(target, dynamic=False, fixed=fixed)

        return apply

    def mode_override(self, mode_name: ModeLike):
        """Method decorator: method-level mode characterization.

        The waterfall check for calls to this method uses the override
        mode instead of the receiver's mode (Listing 3's
        ``mediaCrawl``)."""
        override = self.mode(mode_name)

        def apply(func):
            func._ent_mode_override = override
            return func

        return apply

    def _instrument(self, cls, dynamic: bool, fixed: Optional[Mode]):
        cls._ent_runtime = self
        cls._ent_dynamic = dynamic
        cls._ent_fixed_mode = fixed
        original_init = cls.__init__

        @functools.wraps(original_init)
        def init(obj, *args, **kwargs):
            tag = ensure_tag(obj)
            tag.dynamic = dynamic
            tag.mode = fixed if not dynamic else None
            original_init(obj, *args, **kwargs)

        cls.__init__ = init
        for name, attr in list(vars(cls).items()):
            if name.startswith("_") or name in ("attributor",):
                continue
            if callable(attr) and not isinstance(attr, (staticmethod,
                                                        classmethod,
                                                        ModeCase)):
                setattr(cls, name, self._wrap_method(attr))
        return cls

    def _wrap_method(self, func):
        runtime = self
        override: Optional[Mode] = getattr(func, "_ent_mode_override", None)

        @functools.wraps(func)
        def wrapper(obj, *args, **kwargs):
            runtime.stats.messages += 1
            if runtime.baseline:
                return func(obj, *args, **kwargs)
            tag = get_tag(obj)
            guard = override
            if guard is None and tag is not None:
                guard = tag.mode
            self_call = obj is runtime._self_stack[-1]
            if not self_call:
                runtime._check_dfall(guard, obj, func.__name__)
            closure = guard if guard is not None else runtime.current_mode
            traced = (runtime.tracer.enabled
                      and closure is not runtime._mode_stack[-1])
            if traced:
                runtime.tracer.mode_transition(
                    "closure", runtime._mode_stack[-1], closure)
            profiled = runtime.profiler.enabled
            if profiled:
                name = f"{type(obj).__name__}.{func.__name__}"
                runtime.profiler.call(f"call@{name}", name)
                runtime.profiler.push(name, closure)
            runtime._mode_stack.append(closure)
            runtime._self_stack.append(obj)
            try:
                return func(obj, *args, **kwargs)
            finally:
                runtime._mode_stack.pop()
                runtime._self_stack.pop()
                if profiled:
                    runtime.profiler.pop(runtime._mode_stack[-1])
                if traced:
                    runtime.tracer.mode_transition(
                        "closure", closure, runtime._mode_stack[-1])

        wrapper._ent_wrapped = True
        return wrapper

    def _check_dfall(self, guard: Optional[Mode], obj: object,
                     method: str) -> None:
        self.stats.dfall_checks += 1
        if self.profiler.enabled:
            self.profiler.check_id(
                f"dfall@{type(obj).__name__}.{method}", "dfall",
                self.current_mode)
        if guard is None:
            if self.silent:
                return
            message = (f"messaging un-snapshotted dynamic object "
                       f"{type(obj).__name__} (method {method}); "
                       f"snapshot first")
            if self.tracer.enabled:
                self.tracer.energy_exception(message)
            raise EnergyException(message)
        sender = self.current_mode
        key = (guard, sender)
        holds = self._dfall_cache.get(key)
        if holds is None:
            holds = self.lattice.leq(guard, sender)
            self._dfall_cache[key] = holds
        else:
            self.stats.dfall_memo_hits += 1
        if self.tracer.enabled:
            self.tracer.emit(DfallCheckEvent(
                ts=self.tracer.now(), cls=type(obj).__name__,
                method=method, receiver_mode=guard.name,
                sender_mode=sender.name, holds=holds))
        if not holds and not self.silent:
            self.stats.energy_exceptions += 1
            message = (f"waterfall invariant violated: receiver mode "
                       f"{guard.name} > sender mode {sender.name} "
                       f"({type(obj).__name__}.{method})")
            if self.tracer.enabled:
                self.tracer.energy_exception(message, mode=guard,
                                             upper=sender)
            raise EnergyException(message, mode=guard, upper=sender)

    # ------------------------------------------------------------------
    # Snapshot

    def snapshot(self, obj, lower: Optional[ModeLike] = None,
                 upper: Optional[ModeLike] = None):
        """The snapshot expression: evaluate the attributor, bound-check
        the resulting mode, and return a mode-tagged (shallow) copy.

        Raises :class:`EnergyException` on a *bad check* unless the
        runtime is silent.  With ``lazy_copy`` the first snapshot tags
        the object in place (section 5)."""
        tag = get_tag(obj)
        if tag is None or not tag.dynamic:
            raise EntError(
                f"snapshot requires an instance of a dynamic ENT class, "
                f"got {type(obj).__name__}")
        self.stats.snapshots += 1
        traced = self.tracer.enabled
        previous_mode = tag.mode
        mode = self._run_attributor(obj)
        if traced:
            self.tracer.emit(AttributorEvent(
                ts=self.tracer.now(), cls=type(obj).__name__,
                mode=mode.name))
        if self.baseline:
            tag.mode = mode
            return obj
        lo = self.mode(lower) if lower is not None else BOTTOM
        hi = self.mode(upper) if upper is not None else TOP
        self.stats.bound_checks += 1
        if self.profiler.enabled:
            self.profiler.check_id(
                f"snapshot_bound@{type(obj).__name__}", "snapshot_bound",
                self.current_mode)
        ok = self.lattice.leq(lo, mode) and self.lattice.leq(mode, hi)
        lazy = ok and self.lazy_copy and not tag.is_snapshot
        if traced:
            self.tracer.emit(SnapshotEvent(
                ts=self.tracer.now(), cls=type(obj).__name__,
                mode=mode.name, lower=lo.name, upper=hi.name, ok=ok,
                lazy=lazy))
        if not ok and not self.silent:
            self.stats.energy_exceptions += 1
            message = (f"bad check: attributor of {type(obj).__name__} "
                       f"returned {mode.name}, outside "
                       f"[{lo.name}, {hi.name}]")
            if traced:
                self.tracer.energy_exception(message, mode=mode, lower=lo,
                                             upper=hi)
            raise EnergyException(message, mode=mode, lower=lo, upper=hi)
        if traced and mode is not previous_mode:
            self.tracer.mode_transition(
                f"object:{type(obj).__name__}", previous_mode, mode)
        if self.lazy_copy and not tag.is_snapshot:
            self.stats.lazy_tags += 1
            tag.mode = mode
            tag.is_snapshot = True
            tag.snap_tagged = True
            return obj
        self.stats.copies += 1
        clone = copy.copy(obj)
        setattr(clone, TAG_ATTR,
                ObjectTag(mode=mode, dynamic=True, is_snapshot=True))
        return clone

    def _run_attributor(self, obj) -> Mode:
        result = obj.attributor()
        if isinstance(result, str):
            result = Mode(result)
        if not isinstance(result, Mode) or result not in self.lattice:
            raise EntError(
                f"attributor of {type(obj).__name__} returned "
                f"{result!r}, which is not a declared mode")
        return result

    def mode_of(self, obj) -> Optional[Mode]:
        tag = get_tag(obj)
        return tag.mode if tag is not None else None

    # ------------------------------------------------------------------
    # Per-device state (fleet-scale sharding)

    def capture_device_state(self, agent=None) -> EmbeddedDeviceState:
        """Capture the mutable per-device half of this runtime.

        The lattice, the dfall verdict memo, and every instrumented
        class stay behind as shared config — a restored device never
        duplicates them.  ``agent`` optionally names the device's
        entry object so its snapshot tag travels with the state.
        """
        state = EmbeddedDeviceState(
            mode_stack=tuple(mode.name for mode in self._mode_stack),
            stats=tuple(getattr(self.stats, f.name)
                        for f in dataclass_fields(self.stats)))
        if agent is not None:
            tag = get_tag(agent)
            if tag is not None:
                state.agent_mode = (tag.mode.name
                                    if tag.mode is not None else None)
                state.agent_is_snapshot = tag.is_snapshot
                state.agent_snap_tagged = tag.snap_tagged
        return state

    def restore_device_state(self, state: EmbeddedDeviceState,
                             agent=None) -> None:
        """Seat a captured device state into this runtime.

        Subsequent checking behaves exactly as it did on the runtime
        the state was captured from (same lattice required).  The
        self-call stack cannot meaningfully migrate across processes
        and restores to top-level (no pending self-sends).
        """
        self._mode_stack = [Mode(name) for name in state.mode_stack]
        self._self_stack = [None] * len(self._mode_stack)
        for f, value in zip(dataclass_fields(self.stats), state.stats):
            setattr(self.stats, f.name, value)
        if agent is not None:
            tag = ensure_tag(agent)
            tag.dynamic = True
            tag.mode = (Mode(state.agent_mode)
                        if state.agent_mode is not None else None)
            tag.is_snapshot = state.agent_is_snapshot
            tag.snap_tagged = state.agent_snap_tagged

    def reset_device(self) -> None:
        """Zero the per-device state (a fresh device on this runtime).

        Equivalent to restoring the state of a newly constructed
        runtime: mode stack back to ``$top``, stats cleared.  Shared
        config (lattice, dfall memo, instrumented classes) is kept —
        that reuse is the fleet's batching win.
        """
        self._mode_stack = [TOP]
        self._self_stack = [None]
        self.stats.reset()

    # ------------------------------------------------------------------
    # Mode cases

    def mcase(self, branches: Dict[str, object],
              default: object = None, has_default: bool = False):
        """Build a :class:`ModeCase` bound to this runtime."""
        return ModeCase(self, branches, default=default,
                        has_default=has_default)


class ModeCase:
    """A mode case: a tagged union over modes (the paper's ``mcase``).

    Usable two ways:

    * as a plain value: ``depth.select(mode)`` or ``depth.for_object(o)``;
    * as a class attribute of an ENT class, where attribute access from
      an instance performs implicit elimination on the instance's mode::

          @rt.dynamic
          class Site:
              depth = rt.mcase({"energy_saver": 1, "managed": 2,
                                "full_throttle": 3})
              ...
              def crawl(self):
                  d = self.depth      # eliminated on this Site's mode
    """

    def __init__(self, runtime: EntRuntime, branches: Dict[str, object],
                 default: object = None, has_default: bool = False) -> None:
        self.runtime = runtime
        self.branches: Dict[Mode, object] = {
            runtime.mode(name): value for name, value in branches.items()}
        self.has_default = has_default
        self.default = default
        if not has_default:
            missing = runtime.lattice.declared_modes - set(self.branches)
            if missing:
                names = ", ".join(sorted(m.name for m in missing))
                raise EntError(
                    f"mode case does not cover modes: {names} "
                    f"(add branches or a default)")

    def select(self, mode: Optional[Mode]):
        """Explicit elimination (the paper's ``e ◃ η``)."""
        self.runtime.stats.mcase_elims += 1
        tracer = self.runtime.tracer
        if tracer.enabled:
            tracer.emit(MCaseElimEvent(ts=tracer.now(),
                                       mode=mode_name(mode)))
        if mode is None:
            raise EnergyException(
                "cannot eliminate a mode case against a dynamic mode; "
                "snapshot the enclosing object first")
        if mode in self.branches:
            return self.branches[mode]
        if self.has_default:
            return self.default
        raise EnergyException(
            f"mode case has no branch for mode {mode.name}")

    def for_object(self, obj):
        return self.select(self.runtime.mode_of(obj))

    def __get__(self, instance, owner=None):
        if instance is None:
            return self
        tag = get_tag(instance)
        mode = tag.mode if tag is not None else None
        if mode is None and self.runtime.baseline:
            # Baseline build keeps behaviour: fall back to the current
            # closure mode.
            mode = self.runtime.current_mode
        return self.select(mode)
