"""Run-time mode metadata for embedded-ENT objects (paper section 5).

The ENT compiler tracks two pieces of metadata per dynamic object — its
mode tag and whether it has been snapshotted (for the lazy-copy
strategy) — and a mode tag per post-snapshot copy.  The embedded Python
runtime stores the same metadata in an :class:`ObjectTag` attached to
each managed instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.modes import Mode

TAG_ATTR = "_ent_tag"


@dataclass
class ObjectTag:
    """Per-object runtime metadata."""

    #: Concrete mode, or None for the dynamic mode ``?``.
    mode: Optional[Mode] = None
    #: True for instances of dynamic classes (pre- and post-snapshot).
    dynamic: bool = False
    #: True once this storage has been claimed by an in-place lazy tag.
    snap_tagged: bool = False
    #: True for objects produced by (or lazily claimed by) a snapshot.
    is_snapshot: bool = False


def get_tag(obj: object) -> Optional[ObjectTag]:
    """The object's tag, or None for unmanaged objects."""
    return getattr(obj, TAG_ATTR, None)


def ensure_tag(obj: object) -> ObjectTag:
    tag = getattr(obj, TAG_ATTR, None)
    if tag is None:
        tag = ObjectTag()
        setattr(obj, TAG_ATTR, tag)
    return tag


def mode_of(obj: object) -> Optional[Mode]:
    """The object's concrete mode, or None (dynamic / unmanaged)."""
    tag = get_tag(obj)
    if tag is None:
        return None
    return tag.mode
