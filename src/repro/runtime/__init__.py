"""Embedded ENT runtime for plain Python programs, plus the Ext utility."""

from repro.runtime.embedded import (STANDARD_MODES, THERMAL_MODES,
                                    EntRuntime, ModeCase, RuntimeStats)
from repro.runtime.ext import Ext
from repro.runtime.lint import LintFinding, lint_file, lint_source
from repro.runtime.tagging import ObjectTag, ensure_tag, get_tag, mode_of

__all__ = [
    "EntRuntime",
    "Ext",
    "LintFinding",
    "ModeCase",
    "ObjectTag",
    "RuntimeStats",
    "STANDARD_MODES",
    "THERMAL_MODES",
    "ensure_tag",
    "get_tag",
    "lint_file",
    "lint_source",
    "mode_of",
]
