"""The ``Ext`` utility: battery and temperature queries (paper section 5).

ENT ships a library class ``Ext`` that answers external-context queries.
On System A it wraps ACPI, on System B a simulated battery, on System C
Android's BatteryManager; here all three are answered by the attached
platform simulator.  The embedded runtime exposes an :class:`Ext`
instance; the ENT interpreter reaches the same platform through its
native ``Ext`` static class.
"""

from __future__ import annotations

from typing import Optional


class Ext:
    """External context queries, bound to a platform simulator."""

    def __init__(self, platform=None) -> None:
        self._platform = platform

    def bind(self, platform) -> None:
        self._platform = platform

    @property
    def platform(self):
        return self._platform

    def battery(self) -> float:
        """Remaining battery as a fraction in [0, 1]."""
        if self._platform is None:
            return 1.0
        return float(self._platform.battery_fraction())

    def temperature(self) -> float:
        """Current CPU temperature in degrees Celsius."""
        if self._platform is None:
            return 45.0
        return float(self._platform.cpu_temperature())

    def now(self) -> float:
        """Simulation time in seconds."""
        if self._platform is None:
            return 0.0
        return float(self._platform.now())
