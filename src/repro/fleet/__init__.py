"""Fleet-scale device simulation: millions of devices, one governor.

The paper evaluates ENT on single-device episodes; this package turns
the reproduction into a serving-stack-shaped service that simulates a
whole device *population* — each device a platform model plus an
embedded-ENT workload plus a drain profile — sharded across worker
processes and batched within each shard.

Layers (see ``docs/FLEET.md``):

* :mod:`repro.fleet.spec` — the population description
  (:class:`FleetSpec`) and the splitmix-derived per-device parameters;
* :mod:`repro.fleet.device` — one device's ENT episode (the same code
  runs under both execution engines);
* :mod:`repro.fleet.shard` — the per-process worker: builds the
  shared immutable config once, then streams devices through it in
  batches;
* :mod:`repro.fleet.service` — the asyncio orchestrator: partitions
  the population, fans shards out over a process pool, and folds the
  keyed aggregates back in arrival order (order-independence is
  guaranteed by construction — every aggregate is integer-exact).

Everything is deterministic from ``FleetSpec.seed``: the aggregates of
``repro fleet run`` are bit-identical for any ``--shards`` value and
any shard completion order.
"""

from repro.fleet.service import FleetReport, run_fleet
from repro.fleet.spec import DeviceParams, FleetSpec, device_params

__all__ = ["DeviceParams", "FleetReport", "FleetSpec", "device_params",
           "run_fleet"]
