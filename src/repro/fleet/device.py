"""One simulated device: an embedded-ENT adaptive episode.

A device is Listing 1's shape at population scale: a dynamic ``Agent``
whose attributor reads the live battery level, a mode case selecting
the per-mode step plan (CPU work, telemetry bytes, sleep), and a
fixed-``full_throttle`` ``Uplink`` whose waterfall check *fails by
design* whenever the device has degraded below full throttle — the
fleet's violation counter is the population-wide rate of those
refused telemetry pushes.

The same :func:`run_device` body serves both execution engines; they
differ only in what they reuse:

* the ``embedded`` (reference) engine builds a fresh platform,
  runtime, and instrumented classes per device — exactly what a naive
  port of :func:`repro.eval.sweeps.battery_drain_run` would do;
* the ``batched`` engine seats devices one after another into shared
  per-shard objects (``Platform.reset``,
  ``EntRuntime.reset_device``, one :class:`DeviceApp` per runtime),
  so the per-device cost is the episode itself, not construction.

Because the *step code* is literally the same function over the same
simulator math, the two engines produce bit-identical per-device
outcomes — the property suite asserts it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.errors import EnergyException
from repro.fleet.spec import LOAD_FACTORS, DeviceParams, FleetSpec
from repro.runtime.embedded import EntRuntime
from repro.workloads.base import battery_boot_mode

__all__ = ["DeviceApp", "DeviceOutcome", "run_device"]

#: RuntimeStats fields aggregated fleet-wide.  ``dfall_memo_hits`` is
#: deliberately absent: the verdict memo is shared per shard in the
#: batched engine, so its hit count depends on batching — a cache
#: diagnostic, not a semantic quantity.
STAT_FIELDS: Tuple[str, ...] = (
    "messages", "dfall_checks", "snapshots", "copies", "lazy_tags",
    "bound_checks", "energy_exceptions", "mcase_elims")


class DeviceApp:
    """The instrumented ENT classes for one runtime (shared config).

    Instrumentation closes over its runtime, so the classes cannot be
    shared *across* runtimes — but one app serves every device seated
    on its runtime, which is the batched engine's whole point.  The
    mode-case tables (one per archetype) are built once here too.
    """

    def __init__(self, rt: EntRuntime, spec: FleetSpec) -> None:
        self.rt = rt

        @rt.dynamic
        class FleetAgent:
            def attributor(self):
                return battery_boot_mode(rt.ext.battery())

            def run_step(self, platform, units):
                platform.cpu_work(units)

        @rt.static("full_throttle")
        class FleetUplink:
            def push(self, platform, count):
                platform.net_bytes(count)

        self.agent_cls = FleetAgent
        self.uplink = FleetUplink()
        self.plans = {
            archetype.name: rt.mcase(archetype.plan_dict())
            for archetype in spec.archetypes}


@dataclass
class DeviceOutcome:
    """Integer-exact per-device aggregate contribution.

    Everything a device feeds into the fleet aggregates is an integer
    (microjoules, microseconds, per-mille, counts), so folding
    outcomes is associative and commutative *exactly* — the shard
    partition and arrival order cannot perturb the totals.
    """

    steps: int
    died: int
    violations: int
    pushes: int
    #: Component microjoules in EnergyLedger.COMPONENTS order.
    energy_uj: Tuple[int, ...]
    total_uj: int
    #: Final battery level in per-mille of capacity.
    battery_pm: int
    #: Simulated microseconds dwelt per boot mode.
    dwell_us: Dict[str, int]
    #: RuntimeStats deltas in :data:`STAT_FIELDS` order.
    stats: Tuple[int, ...]


def run_device(platform, rt: EntRuntime, app: DeviceApp,
               params: DeviceParams, steps: int) -> DeviceOutcome:
    """Run one device's adaptive episode and return its contribution.

    ``platform`` must already be seated (fresh construction or
    ``Platform.reset``) and ``rt`` at its device-zero state; the
    caller owns that choice — it is exactly the engine difference.
    """
    stats = rt.stats
    before = tuple(getattr(stats, name) for name in STAT_FIELDS)
    plan_case = app.plans[params.archetype.name]
    agent_cls = app.agent_cls
    uplink = app.uplink
    stream = params.stream
    profile = params.profile
    load = LOAD_FACTORS[params.load_k]
    capacity = platform.battery.capacity_joules
    vampire_j = profile.vampire_frac * capacity
    burst_j = profile.burst_frac * capacity
    battery = platform.battery
    dwell_s: Dict[str, float] = {}
    steps_run = 0
    pushes = 0
    for _ in range(steps):
        if battery.empty:
            break
        # Listing 1's loop: re-snapshot each iteration so the boot
        # mode tracks the battery, eliminate the plan on it, work.
        agent = rt.snapshot(agent_cls())
        units, net_bytes, sleep_ms = plan_case.for_object(agent)
        start = platform.now()
        with rt.booted(agent) as mode:
            agent.run_step(platform, units * load)
            if net_bytes:
                pushes += 1
                try:
                    uplink.push(platform, net_bytes)
                except EnergyException:
                    # Waterfall refusal: the device is below
                    # full_throttle, telemetry is shed this step.
                    pass
            if sleep_ms:
                platform.sleep(sleep_ms / 1000.0)
        mode_name = mode.name
        dwell_s[mode_name] = (dwell_s.get(mode_name, 0.0)
                              + (platform.now() - start))
        # External drain: the profile's background draw plus bursts
        # from the device's one splitmix stream (never a fresh RNG).
        drain_j = vampire_j
        if profile.burst_pm and stream.below(1000) < profile.burst_pm:
            drain_j += burst_j
        if drain_j:
            battery.drain(min(drain_j, battery.charge_joules))
        steps_run += 1
    after = tuple(getattr(stats, name) for name in STAT_FIELDS)
    ledger = platform.ledger
    energy_uj = tuple(
        int(round(getattr(ledger, component) * 1e6))
        for component in ledger.COMPONENTS)
    return DeviceOutcome(
        steps=steps_run,
        died=1 if battery.empty else 0,
        violations=after[STAT_FIELDS.index("energy_exceptions")]
        - before[STAT_FIELDS.index("energy_exceptions")],
        pushes=pushes,
        energy_uj=energy_uj,
        total_uj=sum(energy_uj),
        battery_pm=int(round(battery.fraction(platform.now()) * 1000)),
        dwell_us={name: int(round(seconds * 1e6))
                  for name, seconds in dwell_s.items()},
        stats=tuple(a - b for a, b in zip(after, before)))
