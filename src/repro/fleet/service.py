"""The fleet orchestrator: shard fan-out and order-independent fold.

:func:`run_fleet` partitions the population into contiguous index
ranges, fans the shards out over a process pool from an asyncio event
loop, and folds each :class:`~repro.fleet.shard.ShardResult` into the
fleet-wide :class:`~repro.obs.metrics.MetricsRegistry` and
:class:`~repro.obs.prof.Profile` *as it arrives* — no sorting, no
buffering.  Folding on arrival is safe because every aggregate the
shards emit is integer-exact, so the merge is associative and
commutative exactly; the unit suite asserts bit-identical aggregates
across shard counts and deliberately shuffled completion orders.

``shards <= 1`` (or a single-device population) runs in-process with
no pool at all — the degenerate case costs nothing and is the
reference for the multiprocess paths.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.fleet.shard import (ENGINES, ShardResult, ShardTask,
                               run_shard)
from repro.fleet.spec import FleetSpec
from repro.obs.metrics import MetricsRegistry
from repro.obs.prof import Profile

__all__ = ["FleetReport", "partition", "run_fleet"]


def partition(devices: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``[start, stop)`` ranges, sizes differing by <= 1.

    Pure arithmetic on ``(devices, shards)`` — the partition (like the
    per-device parameter derivation) never depends on runtime state,
    which is half of the determinism story.
    """
    shards = max(1, min(shards, devices)) if devices else 1
    base, extra = divmod(devices, shards)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


@dataclass
class FleetReport:
    """The folded result of one fleet run."""

    spec: FleetSpec
    engine: str
    shards: int
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    profile: Profile = field(default_factory=lambda: Profile("fleet"))
    #: ``(shard_index, devices, seconds)`` per shard, arrival order.
    shard_timings: List[Tuple[int, int, float]] = field(
        default_factory=list)
    elapsed_s: float = 0.0

    @property
    def devices(self) -> int:
        return sum(devices for _, devices, _ in self.shard_timings)

    @property
    def devices_per_sec(self) -> float:
        return self.devices / self.elapsed_s if self.elapsed_s else 0.0

    def aggregate_digest(self) -> Dict[str, object]:
        """The deterministic slice of the report: everything that must
        be bit-identical across shard counts and completion orders.

        Wall-clock fields (timings, throughput) are excluded; the
        rest — every counter, every histogram bucket, the profile's
        check sites — is pure function of the spec.
        """
        return {
            "counters": {name: counter.value for name, counter
                         in sorted(self.registry.counters.items())},
            "histograms": {
                name: {"count": hist.count, "sum": hist.total,
                       "buckets": list(hist.bucket_counts)}
                for name, hist
                in sorted(self.registry.histograms.items())},
            "check_sites": {sid: dict(entry) for sid, entry
                            in sorted(self.profile.check_sites.items())},
        }

    def as_dict(self) -> Dict[str, object]:
        return {
            "devices": self.devices,
            "shards": self.shards,
            "engine": self.engine,
            "seed": self.spec.seed,
            "steps": self.spec.steps,
            "elapsed_s": self.elapsed_s,
            "devices_per_sec": self.devices_per_sec,
            "shard_timings": [
                {"shard": index, "devices": devices, "seconds": secs}
                for index, devices, secs in self.shard_timings],
            "metrics": self.registry.as_dict(),
            "check_sites": {sid: dict(entry) for sid, entry
                            in sorted(self.profile.check_sites.items())},
        }

    def render(self) -> str:
        counters = self.registry.counters
        lines = [
            f"fleet: {self.devices} devices, {self.shards} shard(s), "
            f"engine={self.engine}, seed={self.spec.seed}",
            f"  elapsed {self.elapsed_s:.3f}s "
            f"({self.devices_per_sec:,.0f} devices/s)",
        ]
        for index, devices, secs in sorted(self.shard_timings):
            rate = devices / secs if secs else 0.0
            lines.append(f"    shard {index}: {devices} devices "
                         f"in {secs:.3f}s ({rate:,.0f}/s)")
        def count(name: str) -> int:
            counter = counters.get(name)
            return counter.value if counter else 0
        lines.append(
            f"  steps {count('fleet.steps')}, "
            f"died {count('fleet.devices_died')}, "
            f"violations {count('fleet.violations')}"
            f"/{count('fleet.pushes')} pushes")
        total_uj = count("fleet.energy_uj.total")
        lines.append(f"  energy {total_uj / 1e6:,.1f} J total")
        dwell = {name.split(".")[-1]: counter.value
                 for name, counter in sorted(counters.items())
                 if name.startswith("fleet.dwell_us.")}
        if dwell:
            total_us = sum(dwell.values()) or 1
            parts = ", ".join(
                f"{mode} {100.0 * us / total_us:.1f}%"
                for mode, us in dwell.items())
            lines.append(f"  mode dwell: {parts}")
        return "\n".join(lines)


def _fold(report: FleetReport, result: ShardResult) -> None:
    report.registry.merge(result.registry)
    report.profile.merge(result.profile)
    report.shard_timings.append(
        (result.shard_index, result.devices, result.seconds))


async def _run_sharded(tasks: List[ShardTask], report: FleetReport,
                       progress: Optional[Callable[[ShardResult], None]]
                       ) -> None:
    loop = asyncio.get_running_loop()
    with ProcessPoolExecutor(max_workers=len(tasks)) as pool:
        pending = [loop.run_in_executor(pool, run_shard, task)
                   for task in tasks]
        for future in asyncio.as_completed(pending):
            result = await future
            _fold(report, result)
            if progress is not None:
                progress(result)


def run_fleet(spec: FleetSpec, shards: int = 1, engine: str = "batched",
              progress: Optional[Callable[[ShardResult], None]] = None
              ) -> FleetReport:
    """Simulate the population described by ``spec``.

    ``shards`` worker processes each run one contiguous slice;
    ``shards <= 1`` runs in-process.  The report's aggregates are a
    pure function of ``(spec, engine)`` — see
    :meth:`FleetReport.aggregate_digest`.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown fleet engine {engine!r}; "
                         f"expected one of {', '.join(ENGINES)}")
    ranges = partition(spec.devices, shards)
    tasks = [ShardTask(spec=spec, shard_index=index, start=start,
                       stop=stop, engine=engine)
             for index, (start, stop) in enumerate(ranges)
             if stop > start]
    report = FleetReport(spec=spec, engine=engine,
                         shards=max(1, len(tasks)))
    started = time.perf_counter()
    if not tasks:
        report.elapsed_s = time.perf_counter() - started
        return report
    if len(tasks) == 1:
        result = run_shard(tasks[0])
        _fold(report, result)
        if progress is not None:
            progress(result)
    else:
        asyncio.run(_run_sharded(tasks, report, progress))
    report.elapsed_s = time.perf_counter() - started
    return report
