"""The per-process fleet worker: one shard of the device population.

A shard owns a contiguous index range ``[start, stop)`` of the
population and runs it to completion, accumulating keyed aggregates.
The interesting part is what it builds *once* versus *per device*:

========================  =======================  ====================
                          ``batched`` engine       ``embedded`` engine
========================  =======================  ====================
Platform objects          one per system letter,   fresh per device
                          ``Platform.reset`` per
                          device
EntRuntime                one, ``reset_device``    fresh per device
                          per device
Instrumented ENT classes  one :class:`DeviceApp`   fresh per device
+ mode-case tables        (shared dfall memo)
========================  =======================  ====================

The ``embedded`` engine is the reference: it is what a straightforward
loop over :mod:`repro.eval.sweeps`-style episodes would do, and it is
kept as the differential oracle — both engines run the identical
:func:`repro.fleet.device.run_device` body over the identical
simulator math, so their aggregates are bit-equal (the property suite
asserts it) while the batched engine skips almost all construction.

Aggregates are accumulated as plain integers and flushed into a
:class:`~repro.obs.metrics.MetricsRegistry` + counts-only
:class:`~repro.obs.prof.Profile` at shard end; both merge commutatively
in the parent, so results cannot depend on shard count or completion
order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.fleet.device import STAT_FIELDS, DeviceApp, run_device
from repro.fleet.spec import FleetSpec, device_params
from repro.obs.metrics import MetricsRegistry
from repro.obs.prof import Profile
from repro.platform.meter import EnergyLedger
from repro.platform.systems import platform_from_config, system_config
from repro.runtime.embedded import EntRuntime

__all__ = ["ENGINES", "ShardTask", "ShardResult", "run_shard",
           "ENERGY_BOUNDS", "BATTERY_BOUNDS"]

ENGINES = ("batched", "embedded")

#: Per-device total-energy histogram bounds, in microjoules (1 mJ to
#: 500 J, geometric 1-2-5).  Explicit and fixed so every shard's
#: histograms are bucket-compatible for merging.
ENERGY_BOUNDS: Tuple[float, ...] = tuple(
    base * 10.0 ** exp
    for exp in range(3, 9)
    for base in (1.0, 2.0, 5.0))

#: Final-battery histogram bounds, per-mille of capacity.
BATTERY_BOUNDS: Tuple[float, ...] = tuple(
    float(level) for level in range(0, 1001, 50))


@dataclass(frozen=True)
class ShardTask:
    """One worker's slice of the population (picklable)."""

    spec: FleetSpec
    shard_index: int
    start: int
    stop: int
    engine: str = "batched"


@dataclass
class ShardResult:
    """A shard's keyed aggregates plus its wall-clock timing.

    ``registry``/``profile`` hold only integer-exact quantities
    (microjoule/microsecond counters, integer-valued histogram
    samples), so folding results in arrival order is exact.  The
    wall-clock ``seconds`` is for throughput reporting only and never
    enters the aggregates.
    """

    shard_index: int
    engine: str
    devices: int
    seconds: float
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    profile: Profile = field(default_factory=lambda: Profile("fleet"))


def _check_site(profile: Profile, sid: str, kind: str,
                executed: int) -> None:
    entry = profile.check_sites.setdefault(
        sid, {"kind": kind, "executed": 0, "elided": 0})
    entry["executed"] += executed


def run_shard(task: ShardTask) -> ShardResult:
    """Run one shard to completion (module-level: process-pool safe)."""
    if task.engine not in ENGINES:
        raise ValueError(f"unknown fleet engine {task.engine!r}; "
                         f"expected one of {', '.join(ENGINES)}")
    spec = task.spec
    batched = task.engine == "batched"
    started = time.perf_counter()

    # Shared immutable config: one per system letter, built lazily so a
    # shard whose slice never draws system C never pays for it.
    configs: Dict[str, object] = {}
    # Batched engine's long-lived objects (per system / per shard).
    platforms: Dict[str, object] = {}
    shared_rt: Optional[EntRuntime] = None
    shared_app: Optional[DeviceApp] = None
    if batched:
        shared_rt = EntRuntime.standard()
        shared_app = DeviceApp(shared_rt, spec)

    counts: Dict[str, int] = {}

    def bump(key: str, amount: int) -> None:
        counts[key] = counts.get(key, 0) + amount

    registry = MetricsRegistry()
    energy_hist = registry.histogram("fleet.device_energy_uj",
                                     ENERGY_BOUNDS)
    battery_hist = registry.histogram("fleet.final_battery_pm",
                                      BATTERY_BOUNDS)

    devices = 0
    for index in range(task.start, task.stop):
        params = device_params(spec, index)
        config = configs.get(params.system)
        if config is None:
            config = configs[params.system] = system_config(params.system)
        if batched:
            platform = platforms.get(params.system)
            if platform is None:
                platform = platforms[params.system] = \
                    platform_from_config(config)
            rt, app = shared_rt, shared_app
            rt.reset_device()
        else:
            platform = platform_from_config(config)
            rt = EntRuntime.standard()
            app = DeviceApp(rt, spec)
        # Both engines seat the device through the same reset path, so
        # the episode's float-op sequence is engine-independent.
        platform.reset(params.platform_seed, params.start_fraction,
                       spec.battery_scale)
        rt.bind_platform(platform)

        outcome = run_device(platform, rt, app, params, spec.steps)
        devices += 1

        bump("fleet.devices", 1)
        bump("fleet.steps", outcome.steps)
        bump("fleet.devices_died", outcome.died)
        bump("fleet.violations", outcome.violations)
        bump("fleet.pushes", outcome.pushes)
        bump("fleet.energy_uj.total", outcome.total_uj)
        bump(f"fleet.devices.system_{params.system}", 1)
        bump(f"fleet.devices.profile_{params.profile.name}", 1)
        bump(f"fleet.devices.archetype_{params.archetype.name}", 1)
        for component, uj in zip(EnergyLedger.COMPONENTS,
                                 outcome.energy_uj):
            bump(f"fleet.energy_uj.{component}", uj)
        for mode_name, us in outcome.dwell_us.items():
            bump(f"fleet.dwell_us.{mode_name}", us)
        for name, delta in zip(STAT_FIELDS, outcome.stats):
            bump(f"fleet.runtime.{name}", delta)
        # Histogram samples are integers (exact under float addition
        # far past any realistic fleet size).
        energy_hist.record(float(outcome.total_uj))
        battery_hist.record(float(outcome.battery_pm))

    for key, value in counts.items():
        registry.counter(key).inc(value)

    profile = Profile("fleet")
    _check_site(profile, "dfall@FleetUplink.push", "dfall",
                counts.get("fleet.runtime.dfall_checks", 0))
    _check_site(profile, "bound@FleetAgent.snapshot", "snapshot-bound",
                counts.get("fleet.runtime.bound_checks", 0))
    _check_site(profile, "mcase@FleetAgent.plan", "mcase",
                counts.get("fleet.runtime.mcase_elims", 0))

    return ShardResult(shard_index=task.shard_index, engine=task.engine,
                       devices=devices,
                       seconds=time.perf_counter() - started,
                       registry=registry, profile=profile)
