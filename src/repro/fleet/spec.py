"""Fleet population description and per-device parameter derivation.

A :class:`FleetSpec` describes a population *intensionally*: how many
devices, which systems they run on, which drain profiles and workload
archetypes occur in what proportion, and one root seed.  The concrete
parameters of device ``i`` are derived on demand by
:func:`device_params` from a splitmix64 stream keyed ``(seed, i)`` —
pure integer mixing, so any worker process can materialize any slice
of the population independently and identically.  Nothing about the
derivation depends on how devices are partitioned into shards; that is
the root of the service's bit-identical-across-shards guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.rng import SplitMix64, derive_seed

__all__ = ["DrainProfile", "WorkArchetype", "FleetSpec", "DeviceParams",
           "DRAIN_PROFILES", "WORK_ARCHETYPES", "device_params",
           "LOAD_FACTORS"]

#: Stream discriminator for device-parameter derivation (any fixed
#: constant works; this one spells "fleet" if you squint).
_DEVICE_STREAM = 0xF1EE7

#: Quantized per-device load factors in [0.75, 1.54): workload sizes
#: scale by one of 64 fixed values, so shared per-mode tables stay
#: shared while devices still differ.
LOAD_FACTORS: Tuple[float, ...] = tuple(0.75 + k / 80.0
                                        for k in range(64))


@dataclass(frozen=True)
class DrainProfile:
    """How a device's battery behaves besides the workload's own draw.

    Drains are expressed as fractions of the (scaled) battery
    capacity per step, so a profile means the same thing on a laptop
    battery and a phone battery.
    """

    name: str
    #: Initial battery fraction range [lo, hi).
    start_lo: float
    start_hi: float
    #: Constant external drain per step (fraction of capacity).
    vampire_frac: float = 0.0
    #: Per-step burst probability in per-mille, and burst magnitude.
    burst_pm: int = 0
    burst_frac: float = 0.0


@dataclass(frozen=True)
class WorkArchetype:
    """Per-mode workload knobs: what one step costs in each boot mode.

    ``plan`` maps mode name -> (cpu work units, telemetry bytes,
    sleep milliseconds).  The mode-case the device eliminates each
    step is built from exactly this table.
    """

    name: str
    plan: Tuple[Tuple[str, Tuple[float, float, float]], ...]

    def plan_dict(self) -> Dict[str, Tuple[float, float, float]]:
        return dict(self.plan)


#: The stock drain profiles, in derivation order.
DRAIN_PROFILES: Tuple[DrainProfile, ...] = (
    DrainProfile("steady", start_lo=0.92, start_hi=1.00,
                 vampire_frac=0.004),
    DrainProfile("commuter", start_lo=0.55, start_hi=0.95,
                 vampire_frac=0.012, burst_pm=150, burst_frac=0.03),
    DrainProfile("vampire", start_lo=0.45, start_hi=0.80,
                 vampire_frac=0.035),
    DrainProfile("cliff", start_lo=0.48, start_hi=0.62,
                 vampire_frac=0.010, burst_pm=400, burst_frac=0.08),
)

#: The stock workload archetypes, in derivation order.
WORK_ARCHETYPES: Tuple[WorkArchetype, ...] = (
    WorkArchetype("crawler", (
        ("energy_saver", (2.0, 0.0, 40.0)),
        ("managed", (6.0, 2.0e4, 20.0)),
        ("full_throttle", (14.0, 8.0e4, 0.0)),
    )),
    WorkArchetype("render", (
        ("energy_saver", (4.0, 0.0, 20.0)),
        ("managed", (10.0, 0.0, 10.0)),
        ("full_throttle", (22.0, 0.0, 0.0)),
    )),
    WorkArchetype("sync", (
        ("energy_saver", (1.0, 1.0e4, 60.0)),
        ("managed", (3.0, 6.0e4, 30.0)),
        ("full_throttle", (6.0, 2.0e5, 10.0)),
    )),
)


@dataclass(frozen=True)
class FleetSpec:
    """An intensional description of a simulated device population."""

    devices: int
    seed: int = 0
    #: Episode length: adaptive-loop iterations per device.
    steps: int = 16
    #: ``(system letter, weight)`` population mix.
    system_mix: Tuple[Tuple[str, int], ...] = (("A", 2), ("B", 1),
                                               ("C", 1))
    #: Battery capacity scale, so a discharge fits in ``steps``.
    battery_scale: float = 0.002
    profiles: Tuple[DrainProfile, ...] = DRAIN_PROFILES
    archetypes: Tuple[WorkArchetype, ...] = WORK_ARCHETYPES

    def __post_init__(self) -> None:
        if self.devices < 0:
            raise ValueError(f"devices must be >= 0, got {self.devices}")
        if self.steps <= 0:
            raise ValueError(f"steps must be > 0, got {self.steps}")
        if not self.system_mix or not self.profiles or not self.archetypes:
            raise ValueError("system_mix, profiles and archetypes must "
                             "be non-empty")


@dataclass
class DeviceParams:
    """The concrete derived parameters of one device (picklable)."""

    index: int
    system: str
    profile: DrainProfile
    archetype: WorkArchetype
    #: Index into :data:`LOAD_FACTORS`.
    load_k: int
    #: Seed for the device's platform RNG (jitter, meter noise).
    platform_seed: int
    #: Initial battery fraction.
    start_fraction: float
    #: The device's own draw stream (bursts) — one stream for the
    #: whole episode, never a fresh generator per step.
    stream: SplitMix64


def _pick_weighted(stream: SplitMix64,
                   mix: Tuple[Tuple[str, int], ...]) -> str:
    total = sum(weight for _, weight in mix)
    draw = stream.below(total)
    for name, weight in mix:
        draw -= weight
        if draw < 0:
            return name
    return mix[-1][0]


def device_params(spec: FleetSpec, index: int) -> DeviceParams:
    """Materialize device ``index`` of the population.

    Depends only on ``(spec, index)`` — every shard derives identical
    parameters for the same device, whatever slice it owns.
    """
    stream = SplitMix64(derive_seed(spec.seed, _DEVICE_STREAM, index))
    system = _pick_weighted(stream, spec.system_mix)
    profile = spec.profiles[stream.below(len(spec.profiles))]
    archetype = spec.archetypes[stream.below(len(spec.archetypes))]
    load_k = stream.below(len(LOAD_FACTORS))
    platform_seed = stream.below(1 << 31)
    span = profile.start_hi - profile.start_lo
    start_fraction = profile.start_lo + span * (
        stream.below(10_000) / 10_000.0)
    return DeviceParams(index=index, system=system, profile=profile,
                        archetype=archetype, load_k=load_k,
                        platform_seed=platform_seed,
                        start_fraction=start_fraction, stream=stream)
