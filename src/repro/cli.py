"""Command-line interface for the ENT language.

Usage (installed as ``python -m repro``)::

    python -m repro check  program.ent          # typecheck only
    python -m repro run    program.ent [args]   # typecheck + run
    python -m repro analyze program.ent         # residual-check report
    python -m repro analyze --embedded prog.py  # lint embedded-API code
    python -m repro disasm program.ent          # register bytecode
    python -m repro pretty program.ent          # parse + pretty-print
    python -m repro tokens program.ent          # lex only
    python -m repro obs report trace.jsonl      # analyse a trace
    python -m repro obs convert t.jsonl t.json  # JSONL -> Perfetto
    python -m repro profile program.ent         # cross-engine profiler
    python -m repro eval figure8 --jobs 0       # parallel evaluation
    python -m repro fleet run --devices 100000 --shards 8
                                                # fleet-scale simulation

``run`` options mirror the paper's build/runtime configurations:

    --silent        ignore EnergyExceptions (the E1 silent build)
    --baseline      no tagging bookkeeping (the Figure 6 baseline)
    --eager-copy    disable the lazy-copy optimization
    --system A|B|C  attach a platform simulator (battery/thermal/energy)
    --battery F     initial battery fraction for the platform
    --seed N        RNG / platform seed
    --stats         print run statistics as one JSON object (stderr)
    --no-elide      keep every dynamic check (disable repro.analysis)
    --engine E      execution engine: walk, compiled, vm or jit
                    (docs/VM.md, docs/PERFORMANCE.md)

``disasm`` lowers a program to the VM's register bytecode and
pretty-prints every body with check-instruction annotations; with the
elision planner on (the default), proven-safe checks appear as their
elided opcodes.  ``disasm --jit`` runs the program under the JIT tier
first, then prints the specialized Python source the JIT emitted for
each body (bodies that never got hot are emitted speculatively from
their cold inline caches).

``analyze`` runs the static-analysis subsystem (``repro.analysis``)
and prints one line per dynamic-check obligation — elided checks are
the ones ``run`` skips; residual ones name the reason they must stay.
``--json`` emits the machine-readable report, ``--embedded`` routes a
Python file through the embedded-API linter instead (see
``docs/ANALYSIS.md``).

``fleet run`` simulates a whole device population — each device a
platform model plus an embedded-ENT workload plus a drain profile —
sharded across worker processes (docs/FLEET.md).  Aggregates are
bit-identical for any ``--shards`` value; ``--metrics-out`` exports
them in Prometheus text format.

``run`` observability options (see ``docs/OBSERVABILITY.md``):

    --trace PATH            record a trace of the run to PATH
    --trace-format FORMAT   "jsonl" (default; for ``repro obs report``)
                            or "chrome" (opens in Perfetto /
                            ``chrome://tracing``)

``obs report`` renders the mode timeline, per-mode dwell times, the
energy-attribution table, and trace-derived counters/histograms from a
JSONL trace; ``--scope`` selects a specific timeline (``closure`` or
``object:<Class>``).

``profile`` runs a program under the cross-engine profiler
(docs/PROFILING.md): per-opcode/node time, call-site inline-cache hit
rates (vm), and per-check-site residual counts, plus the
static-vs-observed diff against the elision planner's predictions
(exit 4 if a check fired at a site the analysis marked elided).
``--energy`` joins the profile with the platform's energy meter;
``--out``/``--format`` export JSON, collapsed stacks (flamegraphs), or
a Chrome ``trace_event`` file.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.errors import EnergyException, EntError
from repro.lang.engines import ENGINES, resolve_engine
from repro.lang.interp import Interpreter, InterpOptions
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.lang.typechecker import check_program


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="The ENT energy-aware language (PLDI 2017 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="typecheck a program")
    check.add_argument("file")
    check.add_argument("--lenient-mcase", action="store_true",
                       help="do not require full mode-case coverage")

    run = sub.add_parser("run", help="typecheck and run a program")
    run.add_argument("file")
    run.add_argument("args", nargs="*", help="arguments passed to main")
    run.add_argument("--silent", action="store_true",
                     help="ignore EnergyExceptions (E1 silent build)")
    run.add_argument("--baseline", action="store_true",
                     help="disable runtime tagging (Fig 6 baseline)")
    run.add_argument("--eager-copy", action="store_true",
                     help="disable the lazy-copy optimization")
    run.add_argument("--engine", choices=list(ENGINES), default=None,
                     help="execution engine: walk (reference, default), "
                          "compiled (closure compiler), vm (register "
                          "bytecode) or jit (VM + trace-JIT tier, "
                          "fastest on hot code) — see docs/VM.md")
    run.add_argument("--compile", action="store_true",
                     help="deprecated alias for --engine compiled")
    run.add_argument("--no-inline-caches", action="store_true",
                     help="disable the run-time caches (method tables, "
                          "call-site ICs, dfall memo); semantics are "
                          "identical — see docs/PERFORMANCE.md")
    run.add_argument("--checks", choices=["full", "transient"],
                     default="full",
                     help="dynamic-check depth: full (the paper's deep "
                          "checks, default) or transient (O(1) shallow "
                          "tag probes with blame tracking; see "
                          "docs/ANALYSIS.md)")
    run.add_argument("--fuel", type=int, default=None,
                     help="maximum evaluation steps")
    run.add_argument("--system", choices=["A", "B", "C"], default=None,
                     help="attach a platform simulator")
    run.add_argument("--battery", type=float, default=1.0,
                     help="initial battery fraction (with --system)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--stats", action="store_true",
                     help="print run statistics as JSON on stderr")
    run.add_argument("--lenient-mcase", action="store_true")
    run.add_argument("--no-elide", action="store_true",
                     help="run every dynamic check (skip the "
                          "repro.analysis elision planner)")
    run.add_argument("--trace", metavar="PATH", default=None,
                     help="record an execution trace to PATH")
    run.add_argument("--trace-format", choices=["jsonl", "chrome"],
                     default="jsonl",
                     help="trace format: jsonl (repro obs report) or "
                          "chrome (Perfetto)")
    run.add_argument("--trace-capacity", type=int, default=65536,
                     help="trace ring-buffer capacity (events)")

    analyze = sub.add_parser(
        "analyze",
        help="static analysis: report and plan dynamic-check elisions")
    analyze.add_argument("file")
    analyze.add_argument("--json", action="store_true",
                         help="emit the report as one JSON object")
    analyze.add_argument("--fuel", type=int, default=None,
                         help="cap unbounded (ω) loop/recursion "
                              "factors in the residual-cost bounds at "
                              "N, marking capped sites with *")
    analyze.add_argument("--embedded", action="store_true",
                         help="treat FILE as Python using the embedded "
                              "API and run the runtime linter instead")
    analyze.add_argument("--lenient-mcase", action="store_true",
                         help="do not require full mode-case coverage")

    obs = sub.add_parser(
        "obs", help="observability: analyse and convert traces")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_sub.add_parser(
        "report", help="mode timeline + energy attribution from a trace")
    obs_report.add_argument("trace", help="a JSONL trace file")
    obs_report.add_argument("--scope", default=None,
                            help="timeline scope (closure or "
                                 "object:<Class>); default: busiest")
    obs_convert = obs_sub.add_parser(
        "convert", help="convert a JSONL trace to Chrome trace_event")
    obs_convert.add_argument("trace", help="a JSONL trace file")
    obs_convert.add_argument("output", help="Chrome trace JSON to write")

    profile = sub.add_parser(
        "profile",
        help="run under the cross-engine profiler (docs/PROFILING.md)")
    profile.add_argument("file")
    profile.add_argument("args", nargs="*",
                         help="arguments passed to main")
    profile.add_argument("--engine", choices=list(ENGINES), default=None,
                         help="execution engine to profile: walk "
                              "(default), compiled or vm")
    profile.add_argument("--top", type=int, default=15,
                         help="rows in the hot-label table (default 15)")
    profile.add_argument("--checks", action="store_true",
                         help="include the per-check-site table")
    profile.add_argument("--check-mode", choices=["full", "transient"],
                         default="full",
                         help="dynamic-check depth to profile under "
                              "(counters are mode-invariant, so the "
                              "static-vs-observed oracle applies to "
                              "both)")
    profile.add_argument("--energy", action="store_true",
                         help="attribute measured joules to labels "
                              "(implies a platform; default --system A)")
    profile.add_argument("--json", action="store_true",
                         help="emit profile + static-vs-observed diff "
                              "as one JSON object")
    profile.add_argument("--out", metavar="PATH", default=None,
                         help="also write the profile to PATH")
    profile.add_argument("--format", choices=["json", "collapsed",
                                              "chrome"],
                         default="json",
                         help="--out format: json, collapsed "
                              "(flamegraph stacks) or chrome "
                              "(Perfetto trace_event)")
    profile.add_argument("--silent", action="store_true",
                         help="ignore EnergyExceptions (E1 silent build)")
    profile.add_argument("--fuel", type=int, default=None,
                         help="maximum evaluation steps")
    profile.add_argument("--system", choices=["A", "B", "C"],
                         default=None,
                         help="attach a platform simulator")
    profile.add_argument("--battery", type=float, default=1.0,
                         help="initial battery fraction (with --system)")
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--lenient-mcase", action="store_true")
    profile.add_argument("--no-elide", action="store_true",
                         help="run every dynamic check (also skips the "
                              "static-vs-observed diff)")
    profile.add_argument("--trace-capacity", type=int, default=65536,
                         help="event capacity for the --energy tracer")

    advise = sub.add_parser(
        "advise",
        help="sweep static-vs-? mode assignments and report the "
             "energy/risk Pareto frontier (docs/ADVISE.md)")
    advise.add_argument("file")
    advise.add_argument("args", nargs="*",
                        help="arguments passed to main")
    advise.add_argument("--arch",
                        choices=["sim45nm", "skylake", "cortex-a53"],
                        default="sim45nm",
                        help="cost-model architecture table "
                             "(default sim45nm)")
    advise.add_argument("--engine", choices=list(ENGINES), default=None,
                        help="engine for the calibration runs")
    advise.add_argument("--samples", type=int, default=256,
                        help="Monte-Carlo draws per pinned class "
                             "(default 256)")
    advise.add_argument("--runs", type=int, default=4,
                        help="calibration runs per battery level "
                             "(default 4)")
    advise.add_argument("--seed", type=int, default=0)
    advise.add_argument("--system", choices=["A", "B", "C"],
                        default="A",
                        help="platform simulator for calibration "
                             "(default A)")
    advise.add_argument("--battery", type=float, action="append",
                        default=None, metavar="F",
                        help="battery level for the calibration "
                             "episodes; repeat for a grid "
                             "(default 1.0)")
    advise.add_argument("--jobs", type=int, default=1,
                        help="parallel calibration workers; 0 = one "
                             "per CPU (results are identical for any "
                             "value)")
    advise.add_argument("--top", type=int, default=None,
                        help="candidate rows to print (frontier rows "
                             "always shown)")
    advise.add_argument("--json", action="store_true",
                        help="emit the full result as one JSON object")
    advise.add_argument("--out", metavar="PATH", default=None,
                        help="also write the JSON result to PATH")
    advise.add_argument("--calibrate-from", action="append",
                        default=None, metavar="PROFILE_JSON",
                        help="fold a `repro profile --json --energy` "
                             "payload into the cost table; repeatable")
    advise.add_argument("--cost-model", metavar="PATH", default=None,
                        help="load the cost model from a JSON file "
                             "instead of the built-in --arch table")
    advise.add_argument("--fuel", type=int, default=None,
                        help="maximum evaluation steps per "
                             "calibration run")

    disasm = sub.add_parser(
        "disasm",
        help="lower to register bytecode and pretty-print it")
    disasm.add_argument("file")
    disasm.add_argument("--no-elide", action="store_true",
                        help="show the bytecode with every dynamic "
                             "check (skip the elision planner)")
    disasm.add_argument("--lenient-mcase", action="store_true",
                        help="do not require full mode-case coverage")
    disasm.add_argument("--jit", action="store_true",
                        help="run the program under --engine jit, then "
                             "print the specialized Python source the "
                             "JIT emitted per body (cold bodies are "
                             "emitted speculatively)")
    disasm.add_argument("--checks", choices=["full", "transient"],
                        default="full",
                        help="lower residual checks for this check "
                             "depth: transient selects the shallow "
                             "opcodes (CALL_SHALLOW, SNAPSHOT_SHALLOW)")

    pretty = sub.add_parser("pretty", help="parse and pretty-print")
    pretty.add_argument("file")

    tokens = sub.add_parser("tokens", help="print the token stream")
    tokens.add_argument("file")

    lint = sub.add_parser(
        "lint",
        help="statically check Python code using the embedded ENT API")
    lint.add_argument("file")

    fleet = sub.add_parser(
        "fleet",
        help="fleet-scale device simulation (docs/FLEET.md)")
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_run = fleet_sub.add_parser(
        "run", help="simulate a device population across shards")
    fleet_run.add_argument("--devices", type=int, default=10_000,
                           help="population size (default 10000)")
    fleet_run.add_argument("--shards", type=int, default=1,
                           help="worker processes; 1 runs in-process")
    fleet_run.add_argument("--engine", choices=["batched", "embedded"],
                           default="batched",
                           help="batched (shared platforms/runtime per "
                                "shard, default) or embedded (fresh "
                                "objects per device; the differential "
                                "reference)")
    fleet_run.add_argument("--seed", type=int, default=0)
    fleet_run.add_argument("--steps", type=int, default=16,
                           help="adaptive-loop iterations per device")
    fleet_run.add_argument("--json", action="store_true",
                           help="emit the full report as one JSON "
                                "object")
    fleet_run.add_argument("--digest", action="store_true",
                           help="emit only the deterministic aggregate "
                                "digest as JSON (for invariance checks)")
    fleet_run.add_argument("--metrics-out", metavar="PATH", default=None,
                           help="write aggregates in Prometheus text "
                                "exposition format to PATH")
    fleet_run.add_argument("--progress", action="store_true",
                           help="print one line per completed shard "
                                "(stderr)")

    evaluate = sub.add_parser(
        "eval", add_help=False,
        help="regenerate the paper's evaluation (repro.eval; "
             "--jobs N fans episodes out across cores)")
    evaluate.add_argument("eval_args", nargs=argparse.REMAINDER,
                          help="arguments passed to repro.eval "
                               "(e.g. figure8 --jobs 0)")

    return parser


def _read(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _cmd_check(args) -> int:
    source = _read(args.file)
    check_program(source,
                  strict_mcase_coverage=not args.lenient_mcase)
    print(f"{args.file}: OK")
    return 0


def _cmd_run(args) -> int:
    source = _read(args.file)
    checked = check_program(source,
                            strict_mcase_coverage=not args.lenient_mcase)
    platform = None
    if args.system is not None:
        from repro.platform.systems import make_platform
        platform = make_platform(args.system, seed=args.seed,
                                 battery_fraction=args.battery)
    tracer = None
    if args.trace is not None:
        from repro.obs.tracer import Tracer
        tracer = Tracer(capacity=args.trace_capacity)
    if not args.no_elide:
        from repro.analysis import plan_elisions
        plan_elisions(checked)
    engine = resolve_engine(args.engine, compile_flag=args.compile)
    options = InterpOptions(silent=args.silent, baseline=args.baseline,
                            lazy_copy=not args.eager_copy,
                            fuel=args.fuel, engine=engine,
                            inline_caches=not args.no_inline_caches,
                            elide_checks=not args.no_elide,
                            checks=args.checks)
    interp = Interpreter(checked, platform=platform, options=options,
                         seed=args.seed, tracer=tracer)
    status = 0
    try:
        interp.run(args.args)
    except EnergyException as exc:
        print(f"EnergyException: {exc}", file=sys.stderr)
        status = 3
    for line in interp.output:
        print(line)
    if tracer is not None:
        from repro.obs.export import write_trace
        count = write_trace(tracer.events(), args.trace,
                            fmt=args.trace_format)
        print(f"[trace: {count} events -> {args.trace} "
              f"({args.trace_format}, {tracer.dropped} dropped)]",
              file=sys.stderr)
    if args.stats:
        payload = interp.stats.as_dict()
        if platform is not None:
            payload.update({
                "energy_j": round(platform.energy_total_j(), 4),
                "time_s": round(platform.now(), 6),
                "temp_c": round(platform.cpu_temperature(), 2),
                "battery": round(platform.battery_fraction(), 4),
            })
        print(json.dumps(payload), file=sys.stderr)
    return status


def _cmd_analyze(args) -> int:
    if args.embedded:
        return _analyze_embedded(args)
    from repro.analysis import analyze_program

    checked = check_program(
        _read(args.file),
        strict_mcase_coverage=not args.lenient_mcase)
    report = analyze_program(checked, file=args.file,
                             fuel=args.fuel)
    if args.json:
        print(json.dumps(report.as_dict()))
    else:
        print(report.render())
    return 0


def _analyze_embedded(args) -> int:
    from repro.runtime.lint import lint_source

    findings = lint_source(_read(args.file), filename=args.file)
    errors = [f for f in findings if f.code.startswith("E")]
    if args.json:
        print(json.dumps({
            "file": args.file,
            "findings": [f.as_dict() for f in findings],
            "errors": len(errors),
        }))
    else:
        for finding in findings:
            print(f"{args.file}:{finding}")
        if not findings:
            print(f"{args.file}: OK")
    return 1 if errors else 0


def _cmd_profile(args) -> int:
    """Run a program under the cross-engine profiler.

    Prints the hot-label table (opcodes for the vm, AST node kinds for
    walk/compiled), the call-site inline-cache table, and — with
    ``--checks`` — the per-check-site residual counts.  Unless
    ``--no-elide`` is given the same run's elision plan is diffed
    against the observed check firings; a check that fired at a site
    the analysis classified elided is a soundness violation and makes
    the command exit 4.
    """
    from repro.obs.prof import Profiler, energy_by_label, \
        render_profile, write_profile

    source = _read(args.file)
    checked = check_program(source,
                            strict_mcase_coverage=not args.lenient_mcase)
    system = args.system
    if args.energy and system is None:
        system = "A"
        print("[profile: --energy needs a platform; using --system A]",
              file=sys.stderr)
    platform = None
    if system is not None:
        from repro.platform.systems import make_platform
        platform = make_platform(system, seed=args.seed,
                                 battery_fraction=args.battery)
    tracer = None
    if args.energy:
        from repro.obs.tracer import Tracer
        tracer = Tracer(capacity=args.trace_capacity)
    report = None
    if not args.no_elide:
        from repro.analysis import analyze_program
        report = analyze_program(checked, annotate=True, file=args.file)
    engine = resolve_engine(args.engine, compile_flag=False)
    profiler = Profiler(engine)
    options = InterpOptions(silent=args.silent, fuel=args.fuel,
                            engine=engine,
                            elide_checks=not args.no_elide,
                            checks=args.check_mode)
    interp = Interpreter(checked, platform=platform, options=options,
                         seed=args.seed, tracer=tracer, profiler=profiler)
    status = 0
    try:
        interp.run(args.args)
    except EnergyException as exc:
        print(f"EnergyException: {exc}", file=sys.stderr)
        status = 3
    profile = profiler.profile
    energy = None
    intervals = None
    if args.energy and tracer is not None:
        from repro.advise import builtin_model, energy_intervals
        from repro.obs.report import energy_attribution
        _scope, attribution = energy_attribution(tracer.events())
        energy = energy_by_label(profile, attribution)
        intervals = energy_intervals(profile, attribution,
                                     builtin_model())
    diff = None
    if report is not None:
        from repro.analysis import static_vs_observed
        diff = static_vs_observed(report, profile)
    if args.out is not None:
        write_profile(profile, args.out, fmt=args.format)
        print(f"[profile -> {args.out} ({args.format})]",
              file=sys.stderr)
    if args.json:
        payload = {"file": args.file, "profile": profile.as_dict()}
        if energy is not None:
            payload["energy_by_label"] = {
                label: round(joules, 9)
                for label, joules in sorted(energy.items())}
        if intervals is not None:
            payload["energy_intervals"] = {
                label: value.as_dict(digits=9)
                for label, value in sorted(intervals.items())}
        if diff is not None:
            payload["static_vs_observed"] = diff.as_dict()
        print(json.dumps(payload))
    else:
        print(render_profile(profile, top=args.top, checks=args.checks,
                             energy=intervals if intervals is not None
                             else energy))
        if diff is not None:
            print()
            print(diff.render())
    if diff is not None and not diff.clean:
        return status or 4
    return status


def _cmd_advise(args) -> int:
    """Sweep per-class mode assignments and report the Pareto frontier.

    Each dynamic class either keeps ``?`` or is pinned to one of its
    attributor's reachable modes; candidates are calibrated empirically
    on the simulated platform (paired seeds — identical behaviour means
    bit-identical energy), residual checks are priced by the
    per-architecture cost model, and mode-violation risk is estimated
    by Monte-Carlo over the observed attributor distributions.  See
    ``docs/ADVISE.md``.
    """
    from repro.advise import (AdviseConfig, CostModel, advise_source,
                              builtin_model)

    source = _read(args.file)
    if args.cost_model is not None:
        model = CostModel.load(args.cost_model)
    else:
        model = builtin_model(args.arch)
    for path in (args.calibrate_from or []):
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        absorbed = model.calibrate(payload)
        print(f"[advise: calibrated {absorbed} label(s) from {path}]",
              file=sys.stderr)
    batteries = tuple(args.battery) if args.battery else (1.0,)
    config = AdviseConfig(
        arch=model.arch,
        engine=resolve_engine(args.engine),
        system=args.system,
        seed=args.seed,
        runs=args.runs,
        samples=args.samples,
        batteries=batteries,
        jobs=args.jobs,
        program_args=tuple(args.args))
    if args.fuel is not None:
        config.fuel = args.fuel
    result = advise_source(source, file=args.file, config=config,
                           model=model)
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(result.to_json())
            handle.write("\n")
        print(f"[advise -> {args.out} (json)]", file=sys.stderr)
    if args.json:
        print(result.to_json())
    else:
        print(result.render(top=args.top))
    return 0


def _cmd_obs(args) -> int:
    from repro.obs.export import read_jsonl, write_chrome_trace

    try:
        events = read_jsonl(args.trace)
    except (json.JSONDecodeError, TypeError, ValueError) as exc:
        raise EntError(
            f"{args.trace} is not a JSONL trace "
            f"(record a trace with `repro run --trace`): {exc}") from exc
    if args.obs_command == "report":
        from repro.obs.report import render_report
        print(render_report(events, scope=args.scope))
        return 0
    if args.obs_command == "convert":
        write_chrome_trace(events, args.output)
        print(f"{args.output}: {len(events)} events")
        return 0
    raise EntError(f"unknown obs command {args.obs_command!r}")


def _cmd_disasm(args) -> int:
    """Lower every body to register bytecode and pretty-print it.

    Bodies appear in program order; check instructions carry ``;;``
    annotations, and checks the planner proved away are lowered to
    their ``*_NODFALL`` / ``*_ELIDE`` forms (compare with and without
    ``--no-elide`` to see the handoff).

    With ``--jit`` the program first *runs* under ``--engine jit`` (so
    inline caches warm up and hot bodies actually compile), then each
    body prints as the specialized Python the JIT emitted — installed
    source for bodies that got hot, a speculative cold emission for the
    rest.
    """
    from repro.lang.bytecode import disassemble

    source = _read(args.file)
    checked = check_program(source,
                            strict_mcase_coverage=not args.lenient_mcase)
    if not args.no_elide:
        from repro.analysis import plan_elisions
        plan_elisions(checked)
    engine = "jit" if args.jit else "vm"
    interp = Interpreter(
        checked,
        options=InterpOptions(engine=engine, fuel=5_000_000,
                              elide_checks=not args.no_elide,
                              checks=args.checks))
    vm = interp._vm
    if args.jit:
        from repro.core.errors import EntRuntimeError
        try:
            # Warm-up run: populates the per-site inline caches and
            # compiles whatever crosses the hotness thresholds.  The
            # program's own outcome (EnergyException, fuel, …) does not
            # matter here — only the compiled artifacts do.
            interp.run([])
        except EntRuntimeError:
            pass

    def render(code):
        if not args.jit:
            return disassemble(code)
        title = code.name or "<body>"
        if code.jit_src is not None:
            return (f";; {title} — compiled at runtime "
                    f"(version {code.jit_versions})\n{code.jit_src}")
        from repro.lang.jit import JITUnsupported, jit_source
        try:
            src = jit_source(vm, code)
        except JITUnsupported as exc:
            return f";; {title} — JIT bailout: {exc}"
        return (f";; {title} — cold at runtime; speculative emission "
                f"from the current inline caches\n{src}")

    chunks = []
    for cls in checked.program.classes:
        info = interp.table.get(cls.name)
        if cls.constructor is not None:
            ctor = cls.constructor
            chunks.append(render(vm._lower(
                ctor.body, [p.name for p in ctor.params], (),
                f"{cls.name}.<init>")))
        if cls.attributor is not None:
            chunks.append(render(vm._lower(
                cls.attributor.body, [], (),
                f"{cls.name}.<attributor>")))
        for method in cls.methods:
            minfo = interp._find_method(info, method.name)
            chunks.append(render(vm.code_for_method(minfo)))
            if method.attributor is not None:
                chunks.append(render(vm._lower(
                    method.attributor.body, minfo.param_names,
                    interp._wants_for(minfo),
                    f"{cls.name}.{method.name}.<attributor>")))
    print("\n\n".join(chunks))
    return 0


def _cmd_pretty(args) -> int:
    print(pretty_program(parse_program(_read(args.file))), end="")
    return 0


def _cmd_tokens(args) -> int:
    for token in tokenize(_read(args.file)):
        print(token)
    return 0


def _cmd_fleet(args) -> int:
    """Simulate a device population (``repro fleet run``)."""
    from repro.fleet import FleetSpec, run_fleet

    spec = FleetSpec(devices=args.devices, seed=args.seed,
                     steps=args.steps)
    progress = None
    if args.progress:
        def progress(result):
            rate = result.devices / result.seconds if result.seconds \
                else 0.0
            print(f"[fleet: shard {result.shard_index} done — "
                  f"{result.devices} devices in {result.seconds:.3f}s "
                  f"({rate:,.0f}/s)]", file=sys.stderr)
    report = run_fleet(spec, shards=args.shards, engine=args.engine,
                       progress=progress)
    if args.metrics_out is not None:
        from repro.obs.export import render_prometheus
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(render_prometheus(report.registry))
        print(f"[fleet: metrics -> {args.metrics_out} (prometheus)]",
              file=sys.stderr)
    if args.digest:
        print(json.dumps(report.aggregate_digest(), sort_keys=True))
    elif args.json:
        print(json.dumps(report.as_dict()))
    else:
        print(report.render())
    return 0


def _cmd_eval(args) -> int:
    from repro.eval.__main__ import main as eval_main

    return eval_main(args.eval_args)


def _cmd_lint(args) -> int:
    from repro.runtime.lint import lint_source

    findings = lint_source(_read(args.file), filename=args.file)
    for finding in findings:
        print(f"{args.file}:{finding}")
    errors = [f for f in findings if f.code.startswith("E")]
    if not findings:
        print(f"{args.file}: OK")
    return 1 if errors else 0


_COMMANDS = {
    "check": _cmd_check,
    "run": _cmd_run,
    "analyze": _cmd_analyze,
    "advise": _cmd_advise,
    "profile": _cmd_profile,
    "obs": _cmd_obs,
    "disasm": _cmd_disasm,
    "pretty": _cmd_pretty,
    "tokens": _cmd_tokens,
    "lint": _cmd_lint,
    "eval": _cmd_eval,
    "fleet": _cmd_fleet,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except EntError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout closed early (e.g. ``repro disasm ... | head``).
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
