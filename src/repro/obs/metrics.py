"""Counters, streaming histograms, and trace-derived metrics.

The primitives (:class:`Counter`, :class:`Histogram`) are freestanding
and cheap enough to update on hot paths; :func:`trace_metrics` derives
a full registry from a recorded event stream instead — event-kind
counters, the attributor decision distribution, dfall outcomes, span
latency histograms, and per-mode dwell-time gauges.

The mode-timeline math lives here too (:func:`mode_timeline`,
:func:`dwell_times`): a timeline is reconstructed per *scope* from
``ModeTransitionEvent`` records, and :mod:`repro.obs.report` builds its
energy attribution on top of it.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.events import ModeTransitionEvent, Span, TraceEvent

__all__ = ["Counter", "Histogram", "MetricsRegistry", "trace_metrics",
           "transition_scopes", "mode_timeline", "dwell_times"]


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"Counter.inc is monotonic: amount must be >= 0, "
                f"got {amount} (counter {self.name!r})")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        """Fold another counter's total into this one."""
        self.value += other.value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


#: Default latency buckets: 1 µs to ~100 s, geometric (powers of ten
#: with a 1-2-5 subdivision) — wide enough for both wall and sim time.
DEFAULT_BOUNDS: Tuple[float, ...] = tuple(
    base * 10.0 ** exp
    for exp in range(-6, 3)
    for base in (1.0, 2.0, 5.0))


class Histogram:
    """A streaming histogram: fixed bucket bounds, O(1) memory.

    ``record`` keeps count/sum/min/max exactly and bins the value into
    the first bucket whose upper bound admits it; ``quantile`` reads an
    upper-bound estimate back off the buckets.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total",
                 "min", "max")

    def __init__(self, name: str,
                 bounds: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(bounds) if bounds \
            else DEFAULT_BOUNDS
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted")
        # One bucket per bound plus an overflow bucket.
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def merge(self, other: "Histogram") -> None:
        """Bucket-wise merge: quantiles of the union stay exact to the
        same bucket resolution as if every sample had been recorded
        here.  Requires identical bucket bounds."""
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds "
                f"({self.name!r} has {len(self.bounds)} bounds, "
                f"{other.name!r} has {len(other.bounds)})")
        for index, bucket in enumerate(other.bucket_counts):
            self.bucket_counts[index] += bucket
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the q-quantile (0 <= q <= 1).

        Edge cases are exact: an empty histogram reports 0.0 for any
        ``q``, ``q=0.0`` reports the recorded minimum, and ``q=1.0``
        reports the recorded maximum (so single-sample histograms
        report that sample at both ends).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        rank = q * self.count
        running = 0
        for index, bucket in enumerate(self.bucket_counts):
            running += bucket
            if running >= rank and bucket:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max
        return self.max

    def as_dict(self) -> Dict[str, object]:
        return {"count": self.count, "sum": self.total,
                "min": self.min if self.count else None,
                "max": self.max if self.count else None,
                "mean": self.mean,
                "p50": self.quantile(0.5), "p99": self.quantile(0.99)}


class MetricsRegistry:
    """A namespace of counters, histograms, and gauges."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.gauges: Dict[str, float] = {}

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name, bounds)
        return histogram

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one, key-wise.

        Counters add, histograms merge bucket-wise (bounds must match),
        gauges take the other registry's value (last write wins).  The
        operation is commutative and associative up to gauge ordering,
        so parallel workers' registries can be folded back in any
        order.
        """
        for name, counter in other.counters.items():
            self.counter(name).merge(counter)
        for name, histogram in other.histograms.items():
            self.histogram(name, histogram.bounds).merge(histogram)
        for name, value in other.gauges.items():
            self.gauges[name] = value

    def as_dict(self) -> Dict[str, object]:
        return {
            "counters": {name: c.value
                         for name, c in sorted(self.counters.items())},
            "histograms": {name: h.as_dict()
                           for name, h in sorted(self.histograms.items())},
            "gauges": dict(sorted(self.gauges.items())),
        }


# ---------------------------------------------------------------------------
# Mode timelines


def transition_scopes(events: Iterable[TraceEvent]) -> List[str]:
    """Scopes with transitions, most transitions first (ties by name)."""
    counts: Dict[str, int] = {}
    for event in events:
        if isinstance(event, ModeTransitionEvent):
            counts[event.scope] = counts.get(event.scope, 0) + 1
    return sorted(counts, key=lambda s: (-counts[s], s))


def mode_timeline(events: Sequence[TraceEvent],
                  scope: Optional[str] = None
                  ) -> Tuple[Optional[str],
                             List[Tuple[float, Optional[float],
                                        Optional[str]]]]:
    """Reconstruct ``(start, end, mode)`` dwell intervals for a scope.

    With ``scope=None`` the busiest scope is used (an E1/E2 trace's
    ``closure`` timeline, an E3 trace's ``object:Sleeper`` timeline).
    The final interval is open: its end is the last event timestamp in
    the trace (or None for an empty tail).  Returns the chosen scope
    and the interval list.
    """
    events = list(events)
    if scope is None:
        scopes = transition_scopes(events)
        if not scopes:
            return None, []
        scope = scopes[0]
    transitions = [e for e in events
                   if isinstance(e, ModeTransitionEvent)
                   and e.scope == scope]
    if not transitions:
        return scope, []
    end_ts = max(e.ts for e in events)
    intervals: List[Tuple[float, Optional[float], Optional[str]]] = []
    first = transitions[0]
    if first.from_mode is not None and first.ts > min(e.ts for e in events):
        intervals.append((min(e.ts for e in events), first.ts,
                          first.from_mode))
    for current, nxt in zip(transitions, transitions[1:]):
        intervals.append((current.ts, nxt.ts, current.to_mode))
    last = transitions[-1]
    intervals.append((last.ts, end_ts if end_ts > last.ts else None,
                      last.to_mode))
    return scope, intervals


def dwell_times(events: Sequence[TraceEvent],
                scope: Optional[str] = None) -> Dict[str, float]:
    """Seconds spent in each mode, from the scope's timeline."""
    _, intervals = mode_timeline(events, scope)
    out: Dict[str, float] = {}
    for start, end, mode in intervals:
        if end is None or mode is None:
            continue
        out[mode] = out.get(mode, 0.0) + (end - start)
    return out


# ---------------------------------------------------------------------------
# Trace -> metrics


def trace_metrics(events: Sequence[TraceEvent]) -> MetricsRegistry:
    """Derive the standard metrics registry from an event stream."""
    registry = MetricsRegistry()
    for event in events:
        registry.counter(f"events.{event.kind}").inc()
        if event.kind == "attributor":
            registry.counter(
                f"attributor.{event.cls}.{event.mode}").inc()
        elif event.kind == "dfall_check":
            registry.counter(
                "dfall.ok" if event.holds else "dfall.violation").inc()
            # checks-executed vs checks-elided (repro.analysis planner).
            if getattr(event, "elided", False):
                registry.counter("dfall.elided").inc()
            else:
                registry.counter("dfall.executed").inc()
        elif event.kind == "snapshot":
            registry.counter(
                "snapshot.lazy" if event.lazy else "snapshot.copy").inc()
            if not event.ok:
                registry.counter("snapshot.bad_check").inc()
            if getattr(event, "bound_elided", False):
                registry.counter("snapshot.bound_elided").inc()
            else:
                registry.counter("snapshot.bound_executed").inc()
        elif event.kind == "platform_read":
            registry.counter(f"platform_read.{event.signal}").inc()
        elif isinstance(event, Span):
            registry.histogram(f"span.{event.category}").record(event.dur)
    for mode, seconds in dwell_times(events).items():
        registry.set_gauge(f"dwell_s.{mode}", seconds)
    return registry
