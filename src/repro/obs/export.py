"""Trace serialization: JSONL and Chrome ``trace_event`` JSON.

JSONL (one ``as_dict()`` object per line) is the native interchange
format — ``read_jsonl`` reverses ``write_jsonl`` exactly, and the
``repro obs report`` command consumes it.  ``chrome_trace`` renders the
same events in the Trace Event Format that Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing`` open directly:
spans become complete ("X") events, meter samples become counter ("C")
tracks, and everything else becomes thread-scoped instants ("i").
Timestamps are converted from seconds to the format's microseconds.
"""

from __future__ import annotations

import json
import os
from typing import Dict, IO, Iterable, List, Sequence, Union

from repro.obs.events import (MeterSampleEvent, Span, TraceEvent,
                              event_from_dict)

__all__ = ["write_jsonl", "read_jsonl", "chrome_trace",
           "write_chrome_trace", "write_trace", "render_prometheus",
           "TRACE_FORMATS"]

TRACE_FORMATS = ("jsonl", "chrome")

#: Synthetic thread ids grouping events into Perfetto tracks.
_TID_SPANS = 0
_TID_RUNTIME = 1
_TID_PLATFORM = 2

_THREAD_NAMES = {
    _TID_SPANS: "spans",
    _TID_RUNTIME: "ent-runtime",
    _TID_PLATFORM: "platform",
}

_PLATFORM_KINDS = frozenset({"platform_read", "meter_sample"})


def _open_target(target: Union[str, "os.PathLike[str]", IO[str]],
                 mode: str = "w"):
    if isinstance(target, (str, os.PathLike)):
        return open(target, mode, encoding="utf-8"), True
    return target, False


def write_jsonl(events: Iterable[TraceEvent],
                target: Union[str, IO[str]]) -> int:
    """Write events as JSON Lines; returns the number written."""
    handle, owned = _open_target(target)
    count = 0
    try:
        for event in events:
            handle.write(json.dumps(event.as_dict(),
                                    separators=(",", ":")))
            handle.write("\n")
            count += 1
    finally:
        if owned:
            handle.close()
    return count


def read_jsonl(target: Union[str, IO[str]]) -> List[TraceEvent]:
    """Read a JSONL trace back into typed event objects."""
    handle, owned = _open_target(target, "r")
    try:
        events = []
        for line in handle:
            line = line.strip()
            if line:
                events.append(event_from_dict(json.loads(line)))
        return events
    finally:
        if owned:
            handle.close()


def _instant(event: TraceEvent, tid: int) -> Dict[str, object]:
    args = {key: value for key, value in event.as_dict().items()
            if key not in ("kind", "ts")}
    return {"name": event.kind, "cat": event.kind, "ph": "i", "s": "t",
            "ts": event.ts * 1e6, "pid": 0, "tid": tid, "args": args}


def chrome_trace(events: Sequence[TraceEvent]) -> Dict[str, object]:
    """Render events in the Chrome Trace Event Format (JSON object)."""
    trace_events: List[Dict[str, object]] = [
        {"name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
         "args": {"name": name}}
        for tid, name in sorted(_THREAD_NAMES.items())]
    for event in events:
        if isinstance(event, Span):
            trace_events.append({
                "name": event.name, "cat": event.category, "ph": "X",
                "ts": event.ts * 1e6, "dur": event.dur * 1e6,
                "pid": 0, "tid": _TID_SPANS, "args": dict(event.args)})
        elif isinstance(event, MeterSampleEvent):
            trace_events.append({
                "name": "energy (J)", "cat": "meter", "ph": "C",
                "ts": event.ts * 1e6, "pid": 0, "tid": _TID_PLATFORM,
                "args": {"cpu": event.cpu_j,
                         "peripheral": event.peripheral_j,
                         "io": event.io_j, "net": event.net_j,
                         "display": event.display_j}})
            trace_events.append(_instant(event, _TID_PLATFORM))
        elif event.kind in _PLATFORM_KINDS:
            trace_events.append(_instant(event, _TID_PLATFORM))
        else:
            trace_events.append(_instant(event, _TID_RUNTIME))
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Sequence[TraceEvent],
                       target: Union[str, IO[str]]) -> int:
    """Write a Chrome/Perfetto trace file; returns events written."""
    handle, owned = _open_target(target)
    try:
        json.dump(chrome_trace(events), handle)
        handle.write("\n")
    finally:
        if owned:
            handle.close()
    return len(events)


def _prom_label(value: str) -> str:
    """Escape a Prometheus label value per the text exposition format."""
    return (value.replace("\\", "\\\\").replace("\"", "\\\"")
            .replace("\n", "\\n"))


def _prom_float(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(registry) -> str:
    """Render a :class:`MetricsRegistry` in the Prometheus text
    exposition format (version 0.0.4).

    Registry metric names are free-form (``op.LOAD``, ``check.dfall@3:4``)
    and so would be illegal Prometheus metric names; they are carried as
    a ``name`` label on three fixed families instead: ``repro_counter``,
    ``repro_gauge``, and ``repro_histogram`` (with the conventional
    ``_bucket``/``_sum``/``_count`` series, cumulative ``le`` buckets,
    and a terminal ``le="+Inf"``).
    """
    lines: List[str] = []
    if registry.counters:
        lines.append("# TYPE repro_counter counter")
        for name in sorted(registry.counters):
            counter = registry.counters[name]
            lines.append(f'repro_counter{{name="{_prom_label(name)}"}} '
                         f"{_prom_float(float(counter.value))}")
    if registry.gauges:
        lines.append("# TYPE repro_gauge gauge")
        for name in sorted(registry.gauges):
            value = registry.gauges[name]
            label = _prom_label(name)
            mean = getattr(value, "mean", None)
            if mean is None:
                lines.append(f'repro_gauge{{name="{label}"}} '
                             f"{_prom_float(float(value))}")
                continue
            # Interval-valued gauge (repro.advise.propagate.Uncertain,
            # duck-typed): the bare series carries the mean, and the
            # 99% bounds ride along under a ``ci`` label so dashboards
            # can band the estimate.
            std = getattr(value, "std", 0.0)
            half = 2.575829 * std
            lines.append(f'repro_gauge{{name="{label}"}} '
                         f"{_prom_float(float(mean))}")
            lines.append(f'repro_gauge{{name="{label}",ci="lo"}} '
                         f"{_prom_float(float(mean - half))}")
            lines.append(f'repro_gauge{{name="{label}",ci="hi"}} '
                         f"{_prom_float(float(mean + half))}")
    if registry.histograms:
        lines.append("# TYPE repro_histogram histogram")
        for name in sorted(registry.histograms):
            histogram = registry.histograms[name]
            label = _prom_label(name)
            cumulative = 0
            for bound, bucket in zip(histogram.bounds,
                                     histogram.bucket_counts):
                cumulative += bucket
                lines.append(
                    f'repro_histogram_bucket{{name="{label}",'
                    f'le="{_prom_float(bound)}"}} {cumulative}')
            lines.append(f'repro_histogram_bucket{{name="{label}",'
                         f'le="+Inf"}} {histogram.count}')
            lines.append(f'repro_histogram_sum{{name="{label}"}} '
                         f"{_prom_float(histogram.total)}")
            lines.append(f'repro_histogram_count{{name="{label}"}} '
                         f"{histogram.count}")
    return "\n".join(lines) + "\n" if lines else ""


def write_trace(events: Sequence[TraceEvent], target: Union[str, IO[str]],
                fmt: str = "jsonl") -> int:
    """Write a trace in the named format ("jsonl" or "chrome")."""
    if fmt == "jsonl":
        return write_jsonl(events, target)
    if fmt == "chrome":
        return write_chrome_trace(events, target)
    raise ValueError(f"unknown trace format {fmt!r}; "
                     f"expected one of {', '.join(TRACE_FORMATS)}")
