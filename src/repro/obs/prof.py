"""Cross-engine execution profiler for the ENT engines.

One :class:`Profiler` serves all three execution engines and the
embedded runtime; what differs is only the label vocabulary:

* the register VM bumps ``op.<OPCODE>`` per executed instruction
  (an :data:`~repro.lang.bytecode.OP_PROFILE` pre-instruction is
  woven into the stream by ``instrument`` at lowering time — the
  uninstrumented dispatch loop is untouched);
* the tree walk and the closure compiler bump ``node.<NodeClass>`` /
  ``stmt.<NodeClass>`` per evaluated AST node, so profiles are
  comparable cross-engine at the "what construct is hot" level;
* every engine routes message sends through
  ``Interpreter._invoke`` while profiling (the VM's leaf fast path is
  disabled exactly as it is under tracing), so call counts, call
  stacks (``a;b;c`` flamegraph keys) and per-call-site inline-cache
  counters are engine-invariant;
* the shared check helpers bump ``check.<site-id>`` so individual
  dfall / snapshot-bound sites get counts, time, *and* energy.

**Attribution mechanism.**  The profiler keeps one pending label; each
``bump`` stamps the monotonic clock, attributes the elapsed interval
to the *previous* label (into a per-label latency
:class:`~repro.obs.metrics.Histogram`, a per-``(label, mode)`` time
table, and a per-call-stack time table), then opens the new label.
``finish`` flushes the trailing interval, so per-label histogram
counts are exact execution counts and the attributed intervals
partition wall time.

**Site IDs.**  :func:`site_id` renders ``<kind>@<line>:<column>`` from
a node's source span — the same coordinates
:class:`repro.analysis.obligations.CheckSite` records, which is what
lets :func:`repro.analysis.report.static_vs_observed` join predicted
and observed checks exactly.  Spanless contexts (the boot invocation,
embedded-runtime checks) get symbolic ids (``dfall@?``,
``dfall@Class.method``) that the diff treats as unlocatable rather
than as violations.

**Merging.**  :class:`Profile` is picklable and
:meth:`Profile.merge` is commutative keyed aggregation
(:meth:`~repro.obs.metrics.MetricsRegistry.merge` underneath), so
parallel eval workers stream per-episode profiles back in any
completion order.

The disabled path follows the tracer idiom: hot paths guard with
``if profiler.enabled:`` (or are gated at engine *setup*, not per
instruction), and :data:`NULL_PROFILER` is the shared no-op instance.
See ``docs/PROFILING.md``.
"""

from __future__ import annotations

import json
import os
from time import perf_counter
from typing import Dict, IO, List, Optional, Tuple, Union

from repro.obs.events import mode_name
from repro.obs.metrics import MetricsRegistry

__all__ = ["site_id", "ic_class", "Profile", "Profiler", "NullProfiler",
           "NULL_PROFILER", "collapsed_stacks", "profile_chrome_trace",
           "energy_by_label", "render_profile", "write_profile",
           "PROFILE_FORMATS"]

#: The flamegraph stack key when no ENT method is on the stack.
ROOT = "(root)"

PROFILE_FORMATS = ("text", "json", "collapsed", "chrome")


def site_id(kind: str, span) -> str:
    """``<kind>@<line>:<column>`` — the analysis planner's coordinates.

    A missing span (or one with no line) yields ``<kind>@?``: the boot
    invocation of ``Main.main`` has no call site in the source.
    """
    line = getattr(span, "line", None)
    if line is None:
        return f"{kind}@?"
    return f"{kind}@{line}:{getattr(span, 'column', None)}"


def ic_class(entries: int) -> str:
    """Classify an inline cache by how many receiver classes it saw."""
    if entries <= 0:
        return "-"
    if entries == 1:
        return "mono"
    if entries <= 3:
        return "poly"
    return "mega"


class Profile:
    """The merged, picklable result of one or more profiled runs.

    * ``registry`` — one latency histogram per label (``op.*``,
      ``node.*``, ``stmt.*``, ``call.*``, ``check.*``, ``engine.*``);
      a histogram's ``count`` is the label's exact execution count.
    * ``mode_time`` — ``(label, mode name | None) -> seconds``; the
      join key for energy attribution.
    * ``stack_time`` — ``"Cls.m;Cls.n" -> seconds`` collapsed-stack
      table (semicolon-joined ENT call stacks).
    * ``call_sites`` — ``call@line:col -> {name, calls, ic_misses,
      ic_entries}``.
    * ``check_sites`` — ``kind@line:col -> {kind, executed, elided}``.
    """

    __slots__ = ("engine", "registry", "mode_time", "stack_time",
                 "call_sites", "check_sites")

    def __init__(self, engine: Optional[str] = None) -> None:
        self.engine = engine
        self.registry = MetricsRegistry()
        self.mode_time: Dict[Tuple[str, Optional[str]], float] = {}
        self.stack_time: Dict[str, float] = {}
        self.call_sites: Dict[str, Dict[str, object]] = {}
        self.check_sites: Dict[str, Dict[str, object]] = {}

    # ------------------------------------------------------------------

    @property
    def total_time(self) -> float:
        """Seconds attributed across all labels (≈ profiled wall time)."""
        return sum(h.total
                   for h in self.registry.histograms.values())

    def labels(self, prefix: Optional[str] = None
               ) -> List[Tuple[str, object]]:
        """``(label, histogram)`` pairs, most total time first."""
        items = [(name, h)
                 for name, h in self.registry.histograms.items()
                 if prefix is None or name.startswith(prefix)]
        items.sort(key=lambda kv: (-kv[1].total, kv[0]))
        return items

    def check_totals(self) -> Dict[str, Dict[str, int]]:
        """``{kind: {"executed": n, "elided": n}}`` over all sites."""
        totals: Dict[str, Dict[str, int]] = {}
        for entry in self.check_sites.values():
            bucket = totals.setdefault(entry["kind"],
                                       {"executed": 0, "elided": 0})
            bucket["executed"] += entry["executed"]
            bucket["elided"] += entry["elided"]
        return totals

    # ------------------------------------------------------------------

    def merge(self, other: "Profile") -> None:
        """Keyed aggregation; commutative, so worker profiles can be
        folded back in any completion order."""
        if self.engine is None:
            self.engine = other.engine
        self.registry.merge(other.registry)
        for key, seconds in other.mode_time.items():
            self.mode_time[key] = self.mode_time.get(key, 0.0) + seconds
        for key, seconds in other.stack_time.items():
            self.stack_time[key] = (self.stack_time.get(key, 0.0)
                                    + seconds)
        for sid, entry in other.call_sites.items():
            mine = self.call_sites.get(sid)
            if mine is None:
                self.call_sites[sid] = dict(entry)
            else:
                mine["calls"] += entry["calls"]
                mine["ic_misses"] += entry["ic_misses"]
                mine["ic_entries"] = max(mine["ic_entries"],
                                         entry["ic_entries"])
        for sid, entry in other.check_sites.items():
            mine = self.check_sites.get(sid)
            if mine is None:
                self.check_sites[sid] = dict(entry)
            else:
                mine["executed"] += entry["executed"]
                mine["elided"] += entry["elided"]

    def as_dict(self) -> Dict[str, object]:
        labels = {}
        for name, h in sorted(self.registry.histograms.items()):
            labels[name] = {"count": h.count, "total_s": h.total,
                            "mean_s": h.mean,
                            "p50_s": h.quantile(0.5),
                            "p99_s": h.quantile(0.99)}
        mode_time: Dict[str, Dict[str, float]] = {}
        for (label, mode), seconds in sorted(
                self.mode_time.items(),
                key=lambda kv: (kv[0][0], kv[0][1] or "")):
            mode_time.setdefault(label, {})[mode or "(none)"] = seconds
        return {
            "engine": self.engine,
            "total_time_s": self.total_time,
            "labels": labels,
            "mode_time": mode_time,
            "stacks": dict(sorted(self.stack_time.items())),
            "call_sites": {sid: dict(entry) for sid, entry
                           in sorted(self.call_sites.items())},
            "check_sites": {sid: dict(entry) for sid, entry
                            in sorted(self.check_sites.items())},
            "check_totals": self.check_totals(),
        }


class NullProfiler:
    """The disabled profiler: every operation is a cheap no-op.

    Engines gate instrumentation at *setup* on ``profiler.enabled``
    (bytecode instrumentation, walk-dispatch shadowing, compile-time
    wrappers), so with this instance the engines run their unmodified
    hot paths — zero per-instruction cost.
    """

    enabled = False
    profile = None

    def bump(self, label: str, mode=None) -> None:
        pass

    def push(self, name: str, mode=None) -> None:
        pass

    def pop(self, mode=None) -> None:
        pass

    def call(self, sid: str, name: str) -> None:
        pass

    def ic_miss(self, sid: str, name: str, entries: int) -> None:
        pass

    def check(self, kind: str, span, mode=None) -> None:
        pass

    def check_id(self, sid: str, kind: str, mode=None) -> None:
        pass

    def check_elided(self, kind: str, span) -> None:
        pass

    def check_elided_id(self, sid: str, kind: str) -> None:
        pass

    def finish(self) -> None:
        pass


#: The shared disabled profiler; one attribute check on guarded paths.
NULL_PROFILER = NullProfiler()


class Profiler:
    """Collects one :class:`Profile` via successive-timestamp bumps."""

    enabled = True

    def __init__(self, engine: Optional[str] = None,
                 clock=perf_counter) -> None:
        self.profile = Profile(engine)
        self._clock = clock
        self._stack: List[str] = []
        self._stack_key = ROOT
        self._prev_label: Optional[str] = None
        self._prev_mode: Optional[str] = None
        self._prev_stack = ROOT
        self._prev_ts = 0.0

    # ------------------------------------------------------------------
    # The hot path

    def _attribute(self, now: float) -> None:
        label = self._prev_label
        if label is None:
            return
        delta = now - self._prev_ts
        profile = self.profile
        profile.registry.histogram(label).record(delta)
        key = (label, self._prev_mode)
        mode_time = profile.mode_time
        mode_time[key] = mode_time.get(key, 0.0) + delta
        stack_time = profile.stack_time
        stack = self._prev_stack
        stack_time[stack] = stack_time.get(stack, 0.0) + delta

    def bump(self, label: str, mode=None) -> None:
        """Close the pending interval, open ``label``'s."""
        now = self._clock()
        self._attribute(now)
        self._prev_label = label
        self._prev_mode = mode_name(mode)
        self._prev_stack = self._stack_key
        self._prev_ts = now

    def push(self, name: str, mode=None) -> None:
        """Enter an ENT method: count the call label, grow the stack."""
        self.bump("call." + name, mode)
        self._stack.append(name)
        self._stack_key = ";".join(self._stack)
        # The callee's body time belongs to the deepened stack.
        self._prev_stack = self._stack_key

    def pop(self, mode=None) -> None:
        """Leave an ENT method; the caller resumes."""
        now = self._clock()
        self._attribute(now)
        if self._stack:
            self._stack.pop()
            self._stack_key = ";".join(self._stack) or ROOT
        self._prev_label = "engine.resume"
        self._prev_mode = mode_name(mode)
        self._prev_stack = self._stack_key
        self._prev_ts = now

    # ------------------------------------------------------------------
    # Sites

    def call(self, sid: str, name: str) -> None:
        sites = self.profile.call_sites
        entry = sites.get(sid)
        if entry is None:
            entry = sites[sid] = {"name": name, "calls": 0,
                                  "ic_misses": 0, "ic_entries": 0}
        entry["calls"] += 1

    def ic_miss(self, sid: str, name: str, entries: int) -> None:
        sites = self.profile.call_sites
        entry = sites.get(sid)
        if entry is None:
            entry = sites[sid] = {"name": name, "calls": 0,
                                  "ic_misses": 0, "ic_entries": 0}
        entry["ic_misses"] += 1
        if entries > entry["ic_entries"]:
            entry["ic_entries"] = entries

    def check_id(self, sid: str, kind: str, mode=None) -> None:
        sites = self.profile.check_sites
        entry = sites.get(sid)
        if entry is None:
            entry = sites[sid] = {"kind": kind, "executed": 0,
                                  "elided": 0}
        entry["executed"] += 1
        self.bump("check." + sid, mode)

    def check(self, kind: str, span, mode=None) -> None:
        self.check_id(site_id(kind, span), kind, mode)

    def check_elided_id(self, sid: str, kind: str) -> None:
        sites = self.profile.check_sites
        entry = sites.get(sid)
        if entry is None:
            entry = sites[sid] = {"kind": kind, "executed": 0,
                                  "elided": 0}
        entry["elided"] += 1

    def check_elided(self, kind: str, span) -> None:
        self.check_elided_id(site_id(kind, span), kind)

    def finish(self) -> None:
        """Flush the trailing interval (call when the run ends)."""
        self._attribute(self._clock())
        self._prev_label = None


# ---------------------------------------------------------------------------
# Derived views


def collapsed_stacks(profile: Profile) -> List[str]:
    """Brendan-Gregg collapsed-stack lines: ``a;b;c <microseconds>``.

    Feed to any flamegraph renderer (``flamegraph.pl``, speedscope,
    inferno).  Sample weights are integer microseconds of attributed
    time.
    """
    lines = []
    for stack, seconds in sorted(profile.stack_time.items()):
        lines.append(f"{stack} {int(round(seconds * 1e6))}")
    return lines


def profile_chrome_trace(profile: Profile) -> Dict[str, object]:
    """An *aggregate* Chrome ``trace_event`` rendering.

    The profiler stores totals, not a timeline, so labels are laid
    end-to-end as complete ("X") events in descending total-time
    order — the track reads as "where did the time go", not "when".
    """
    trace: List[Dict[str, object]] = [
        {"name": "thread_name", "ph": "M", "pid": 0, "tid": 0,
         "args": {"name": f"profile:{profile.engine or '?'} (labels, "
                          f"aggregate)"}},
        {"name": "thread_name", "ph": "M", "pid": 0, "tid": 1,
         "args": {"name": "profile: call stacks (aggregate)"}},
    ]
    cursor = 0.0
    for label, hist in profile.labels():
        trace.append({"name": label, "cat": "profile", "ph": "X",
                      "ts": cursor * 1e6, "dur": hist.total * 1e6,
                      "pid": 0, "tid": 0,
                      "args": {"count": hist.count,
                               "mean_us": hist.mean * 1e6}})
        cursor += hist.total
    cursor = 0.0
    for stack, seconds in sorted(profile.stack_time.items(),
                                 key=lambda kv: (-kv[1], kv[0])):
        trace.append({"name": stack, "cat": "stack", "ph": "X",
                      "ts": cursor * 1e6, "dur": seconds * 1e6,
                      "pid": 0, "tid": 1, "args": {}})
        cursor += seconds
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def energy_by_label(profile: Profile,
                    attribution: Dict[str, float]) -> Dict[str, float]:
    """Join the profile's per-``(label, mode)`` time with a per-mode
    energy attribution (:func:`repro.obs.report.energy_attribution`).

    Each mode's joules are distributed over labels proportionally to
    the time they spent executing under that mode, so the label totals
    sum to the attributed energy (modes with no profiled time
    excepted).  Unmoded profile time joins the ``(untracked)`` bucket.
    """
    from repro.obs.report import UNTRACKED

    mode_totals: Dict[str, float] = {}
    for (_label, mode), seconds in profile.mode_time.items():
        key = mode if mode is not None else UNTRACKED
        mode_totals[key] = mode_totals.get(key, 0.0) + seconds
    joules: Dict[str, float] = {}
    for (label, mode), seconds in profile.mode_time.items():
        key = mode if mode is not None else UNTRACKED
        bucket = attribution.get(key)
        total = mode_totals.get(key, 0.0)
        if not bucket or total <= 0.0:
            continue
        joules[label] = (joules.get(label, 0.0)
                         + bucket * (seconds / total))
    return joules


# ---------------------------------------------------------------------------
# Rendering / serialization


def _format_seconds(seconds: float) -> str:
    from repro.obs.report import _format_seconds as fmt
    return fmt(seconds)


def _format_joules(value) -> str:
    """Format one energy cell: a plain float, or anything interval-
    shaped (``mean``/``std`` attributes, e.g.
    :class:`repro.advise.propagate.Uncertain`) as ``mean ± half-width``
    at 99% confidence.  Duck-typed so the profiler has no dependency
    on the advisor."""
    mean = getattr(value, "mean", None)
    if mean is None:
        return f"{value:.6f}"
    std = getattr(value, "std", 0.0)
    if std > 0.0:
        return f"{mean:.6f} ± {2.575829 * std:.6f}"
    return f"{mean:.6f}"


def render_profile(profile: Profile, top: Optional[int] = None,
                   checks: bool = False,
                   energy: Optional[Dict[str, object]] = None) -> str:
    """The plain-text report behind ``repro profile``.

    ``energy`` maps labels to joules — plain floats or interval-valued
    ``Uncertain`` quantities; intervals render as ``mean ± half``.
    """
    from repro.eval.report import render_table

    sections: List[str] = []
    total = profile.total_time
    sections.append(
        f"Profile (engine={profile.engine or '?'}): "
        f"{_format_seconds(total)} attributed")

    labels = profile.labels()
    if top is not None:
        dropped = len(labels) - top
        labels = labels[:top]
    else:
        dropped = 0
    # energy={} still shows the column (requested but nothing metered).
    with_energy = energy is not None
    joules = energy or {}
    headers = ["label", "count", "total", "mean", "share"]
    if with_energy:
        headers.append("joules")
    rows = []
    for name, hist in labels:
        row = [name, hist.count, _format_seconds(hist.total),
               _format_seconds(hist.mean),
               f"{hist.total / total:6.1%}" if total else "-"]
        if with_energy:
            row.append(_format_joules(joules.get(name, 0.0)))
        rows.append(row)
    table = render_table(headers, rows)
    if dropped > 0:
        table += f"\n  ... ({dropped} more labels; raise --top)"
    sections.append("Hot labels:\n" + table)

    if profile.call_sites:
        rows = []
        for sid, entry in sorted(profile.call_sites.items(),
                                 key=lambda kv: (-kv[1]["calls"],
                                                 kv[0])):
            calls = entry["calls"]
            misses = entry["ic_misses"]
            hits = max(calls - misses, 0)
            rows.append([sid, entry["name"], calls, misses,
                         f"{hits / calls:6.1%}" if calls else "-",
                         ic_class(entry["ic_entries"])])
        sections.append("Call sites:\n" + render_table(
            ["site", "method", "calls", "ic miss", "ic hit rate",
             "ic"], rows))

    if checks:
        rows = []
        for sid, entry in sorted(profile.check_sites.items()):
            row = [sid, entry["kind"], entry["executed"],
                   entry["elided"]]
            if with_energy:
                row.append(_format_joules(
                    joules.get("check." + sid, 0.0)))
            rows.append(row)
        headers = ["site", "kind", "executed", "elided"]
        if with_energy:
            headers.append("joules")
        sections.append(
            "Check sites:\n"
            + (render_table(headers, rows) if rows
               else "  (no dynamic checks ran)"))
        totals = profile.check_totals()
        if totals:
            rows = [[kind, bucket["executed"], bucket["elided"]]
                    for kind, bucket in sorted(totals.items())]
            sections.append("Check totals:\n" + render_table(
                ["kind", "executed", "elided"], rows))
    return "\n\n".join(sections)


def _open_target(target: Union[str, "os.PathLike[str]", IO[str]],
                 mode: str = "w"):
    if isinstance(target, (str, os.PathLike)):
        return open(target, mode, encoding="utf-8"), True
    return target, False


def write_profile(profile: Profile, target: Union[str, IO[str]],
                  fmt: str = "json") -> None:
    """Serialize a profile ("json", "collapsed", or "chrome")."""
    if fmt not in ("json", "collapsed", "chrome"):
        raise ValueError(f"unknown profile format {fmt!r}; expected "
                         f"one of json, collapsed, chrome")
    handle, owned = _open_target(target)
    try:
        if fmt == "json":
            json.dump(profile.as_dict(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        elif fmt == "collapsed":
            for line in collapsed_stacks(profile):
                handle.write(line)
                handle.write("\n")
        else:
            json.dump(profile_chrome_trace(profile), handle)
            handle.write("\n")
    finally:
        if owned:
            handle.close()
