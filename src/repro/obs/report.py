"""Mode-timeline reconstruction and energy-attribution reporting.

The report answers the questions the paper's evaluation narrates:
*when* did the program dwell in each mode, and *where did the joules
go*?  Energy attribution integrates the platform energy ledger between
consecutive energy samples (mode transitions and meter-window
boundaries all carry the ledger total) and buckets each increment by
the mode active when it was spent.  Because the samples partition the
run, the buckets sum to the ledger total by construction — the report
prints the residual so drift would be visible immediately.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.events import (MeterSampleEvent, ModeTransitionEvent, Span,
                              TraceEvent)
from repro.obs.metrics import (dwell_times, mode_timeline, trace_metrics,
                               transition_scopes)

__all__ = ["energy_points", "energy_attribution",
           "energy_attribution_by_scope", "render_timeline",
           "render_report"]

#: Bucket for energy spent outside any recorded dwell interval.
UNTRACKED = "(untracked)"


def energy_points(events: Sequence[TraceEvent]
                  ) -> List[Tuple[float, float]]:
    """Chronological ``(ts, ledger_total_j)`` samples from the trace."""
    points = []
    for index, event in enumerate(events):
        if isinstance(event, ModeTransitionEvent):
            if event.energy_j is not None:
                points.append((event.ts, index, event.energy_j))
        elif isinstance(event, MeterSampleEvent):
            points.append((event.ts, index, event.total_j))
    points.sort()
    return [(ts, energy) for ts, _, energy in points]


def _mode_at(intervals, ts: float) -> Optional[str]:
    for start, end, mode in intervals:
        if start <= ts and (end is None or ts < end):
            return mode
    if intervals and ts >= intervals[-1][0]:
        return intervals[-1][2]
    return None


def energy_attribution(events: Sequence[TraceEvent],
                       scope: Optional[str] = None
                       ) -> Tuple[Optional[str], Dict[str, float]]:
    """Joules bucketed by the mode active when they were spent.

    Returns ``(scope, {mode: joules})``.  The buckets sum to
    ``last_sample - first_sample`` — for a trace covering a whole run
    on a fresh platform, the ledger's ``total_j``.
    """
    scope, intervals = mode_timeline(events, scope)
    points = energy_points(events)
    attribution: Dict[str, float] = {}
    for (t1, e1), (_t2, e2) in zip(points, points[1:]):
        delta = e2 - e1
        if delta == 0.0:
            continue
        mode = _mode_at(intervals, t1)
        key = mode if mode is not None else UNTRACKED
        attribution[key] = attribution.get(key, 0.0) + delta
    return scope, attribution


def energy_attribution_by_scope(events: Sequence[TraceEvent]
                                ) -> Dict[str, Dict[str, float]]:
    """The attribution table for every scope (closure + object class)."""
    return {scope: energy_attribution(events, scope)[1]
            for scope in transition_scopes(events)}


# ---------------------------------------------------------------------------
# Rendering


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f}ms"
    return f"{seconds * 1e6:.1f}us"


def render_timeline(events: Sequence[TraceEvent],
                    scope: Optional[str] = None,
                    width: int = 40) -> str:
    """ASCII mode timeline: one proportional bar per dwell interval."""
    scope, intervals = mode_timeline(events, scope)
    if not intervals:
        return "(no mode transitions recorded)"
    t0 = intervals[0][0]
    t_end = max(end for _, end, _ in intervals if end is not None) \
        if any(end is not None for _, end, _ in intervals) else t0
    total = max(t_end - t0, 1e-12)
    lines = [f"Mode timeline (scope={scope}):"]
    for start, end, mode in intervals:
        if end is None:
            lines.append(f"  [{start - t0:10.4f}s .. end      ]  "
                         f"{mode or '?'}")
            continue
        bar = max(1, round((end - start) / total * width))
        lines.append(f"  [{start - t0:10.4f}s .. {end - t0:8.4f}s]  "
                     f"{'#' * bar:<{width}}  {mode or '?'} "
                     f"({_format_seconds(end - start)})")
    return "\n".join(lines)


def _table(headers, rows) -> str:
    from repro.eval.report import render_table
    return render_table(headers, rows)


def render_report(events: Sequence[TraceEvent],
                  scope: Optional[str] = None) -> str:
    """The full plain-text report behind ``repro obs report``."""
    events = list(events)
    if not events:
        return "(empty trace)"
    sections: List[str] = []
    t0 = min(e.ts for e in events)
    t1 = max(e.ts for e in events)
    sections.append(
        f"ENT trace report: {len(events)} events, "
        f"{_format_seconds(t1 - t0)} ({t0:.6f}s .. {t1:.6f}s)")

    spans = [e for e in events if isinstance(e, Span)]
    if spans:
        by_cat: Dict[str, List[Span]] = {}
        for span in spans:
            by_cat.setdefault(span.category, []).append(span)
        rows = [[cat, len(group),
                 _format_seconds(sum(s.dur for s in group)),
                 _format_seconds(sum(s.dur for s in group) / len(group))]
                for cat, group in sorted(by_cat.items())]
        sections.append("Spans:\n" + _table(
            ["category", "count", "total", "mean"], rows))

    sections.append(render_timeline(events, scope))

    dwell = dwell_times(events, scope)
    if dwell:
        total_dwell = sum(dwell.values())
        rows = [[mode, _format_seconds(seconds),
                 f"{seconds / total_dwell:6.1%}" if total_dwell else "-"]
                for mode, seconds in
                sorted(dwell.items(), key=lambda kv: -kv[1])]
        sections.append("Dwell times:\n" + _table(
            ["mode", "time", "share"], rows))

    used_scope, attribution = energy_attribution(events, scope)
    if attribution:
        total = sum(attribution.values())
        rows = [[mode, f"{joules:.4f}",
                 f"{joules / total:6.1%}" if total else "-"]
                for mode, joules in
                sorted(attribution.items(), key=lambda kv: -kv[1])]
        rows.append(["total", f"{total:.4f}", "100.0%"])
        sections.append(
            f"Energy attribution (scope={used_scope}):\n"
            + _table(["mode", "joules", "share"], rows))
        for other_scope, table in energy_attribution_by_scope(
                events).items():
            if other_scope == used_scope or not table:
                continue
            rows = [[mode, f"{joules:.4f}"] for mode, joules in
                    sorted(table.items(), key=lambda kv: -kv[1])]
            sections.append(
                f"Energy attribution (scope={other_scope}):\n"
                + _table(["mode", "joules"], rows))

    registry = trace_metrics(events)
    counter_rows = [[name, value] for name, value in
                    sorted(registry.as_dict()["counters"].items())]
    if counter_rows:
        sections.append("Counters:\n" + _table(["counter", "value"],
                                               counter_rows))
    hist_rows = [[name, h["count"], _format_seconds(h["mean"]),
                  _format_seconds(h["p50"]), _format_seconds(h["p99"])]
                 for name, h in
                 sorted(registry.as_dict()["histograms"].items())]
    if hist_rows:
        sections.append("Latency histograms:\n" + _table(
            ["histogram", "count", "mean", "p50", "p99"], hist_rows))
    return "\n\n".join(sections)
