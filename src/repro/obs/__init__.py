"""Observability for the ENT runtime: tracing, metrics, and reports.

The subsystem has four layers, each usable on its own:

* :mod:`repro.obs.events` — the typed event taxonomy;
* :mod:`repro.obs.tracer` — the bounded ring-buffer :class:`Tracer`
  and the zero-cost :data:`NULL_TRACER`;
* :mod:`repro.obs.metrics` — counters, streaming histograms, and the
  mode-timeline/dwell math;
* :mod:`repro.obs.prof` — the cross-engine :class:`Profiler`
  (per-opcode/node time, call-site inline-cache stats, check-site
  residual counts) behind ``repro profile``;
* :mod:`repro.obs.export` / :mod:`repro.obs.report` — JSONL, Chrome
  ``trace_event``, and Prometheus serialization, and the mode-timeline
  + energy-attribution report (``repro obs report``).

See ``docs/OBSERVABILITY.md`` for the taxonomy and workflows.
"""

from repro.obs.events import (AttributorEvent, DfallCheckEvent,
                              EnergyExceptionEvent, MCaseElimEvent,
                              MeterSampleEvent, ModeTransitionEvent,
                              PlatformReadEvent, SnapshotEvent, Span,
                              TraceEvent, event_from_dict)
from repro.obs.export import (chrome_trace, read_jsonl, render_prometheus,
                              write_chrome_trace, write_jsonl, write_trace)
from repro.obs.metrics import (Counter, Histogram, MetricsRegistry,
                               dwell_times, mode_timeline, trace_metrics)
from repro.obs.prof import (NULL_PROFILER, PROFILE_FORMATS, NullProfiler,
                            Profile, Profiler, collapsed_stacks,
                            energy_by_label, profile_chrome_trace,
                            render_profile, site_id, write_profile)
from repro.obs.report import (energy_attribution,
                              energy_attribution_by_scope, render_report,
                              render_timeline)
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer, attach_platform

__all__ = [
    "AttributorEvent",
    "Counter",
    "DfallCheckEvent",
    "EnergyExceptionEvent",
    "Histogram",
    "MCaseElimEvent",
    "MeterSampleEvent",
    "MetricsRegistry",
    "ModeTransitionEvent",
    "NULL_PROFILER",
    "NULL_TRACER",
    "NullProfiler",
    "NullTracer",
    "PROFILE_FORMATS",
    "PlatformReadEvent",
    "Profile",
    "Profiler",
    "SnapshotEvent",
    "Span",
    "TraceEvent",
    "Tracer",
    "attach_platform",
    "chrome_trace",
    "collapsed_stacks",
    "dwell_times",
    "energy_attribution",
    "energy_attribution_by_scope",
    "energy_by_label",
    "event_from_dict",
    "mode_timeline",
    "profile_chrome_trace",
    "read_jsonl",
    "render_profile",
    "render_prometheus",
    "render_report",
    "render_timeline",
    "site_id",
    "trace_metrics",
    "write_chrome_trace",
    "write_jsonl",
    "write_profile",
    "write_trace",
]
