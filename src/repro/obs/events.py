"""Typed event records for the ENT observability layer.

Every interesting moment in an ENT execution is captured as one of the
dataclasses below — the *event taxonomy* (see ``docs/OBSERVABILITY.md``):

=====================  ====================================================
event                  emitted when
=====================  ====================================================
SnapshotEvent          a ``snapshot`` expression completes (or bad-checks)
AttributorEvent        an attributor body returns a mode
DfallCheckEvent        the dynamic waterfall invariant is asserted
MCaseElimEvent         a mode case is eliminated (implicitly or explicitly)
EnergyExceptionEvent   an ``EnergyException`` is raised
ModeTransitionEvent    a mode context changes (closure push/pop, or an
                       object acquires a mode via snapshot)
PlatformReadEvent      ``Ext.battery()`` / ``Ext.temperature()`` is read
MeterSampleEvent       a meter window opens or closes (raw ledger values)
Span                   a timed region closes (episode, phase, run)
=====================  ====================================================

Events carry only JSON-serializable fields (modes as their names), so
the JSONL and Chrome ``trace_event`` exporters in
:mod:`repro.obs.export` need no special cases.  ``ModeTransitionEvent``
additionally records the platform energy-ledger total at the instant of
the transition; :mod:`repro.obs.report` turns those samples into the
per-mode energy-attribution table.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import ClassVar, Dict, Optional

__all__ = ["TraceEvent", "SnapshotEvent", "AttributorEvent",
           "DfallCheckEvent", "MCaseElimEvent", "EnergyExceptionEvent",
           "ModeTransitionEvent", "PlatformReadEvent", "MeterSampleEvent",
           "Span", "EVENT_KINDS", "event_from_dict", "mode_name"]


def mode_name(mode) -> Optional[str]:
    """Render a mode-ish value (Mode, str, or None) as a plain name."""
    if mode is None:
        return None
    name = getattr(mode, "name", None)
    return name if name is not None else str(mode)


@dataclass
class TraceEvent:
    """Base record: a timestamp in seconds on the tracer's clock."""

    kind: ClassVar[str] = "event"

    ts: float

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"kind": self.kind}
        for f in fields(self):
            out[f.name] = getattr(self, f.name)
        return out


@dataclass
class SnapshotEvent(TraceEvent):
    """A ``snapshot e [lo, hi]`` expression ran its bound check."""

    kind: ClassVar[str] = "snapshot"

    cls: str
    mode: Optional[str]
    lower: Optional[str]
    upper: Optional[str]
    ok: bool
    #: True when the lazy-copy optimization tagged in place.
    lazy: bool
    #: "embedded" (Python API) or "interp" (ENT language).
    source: str = "embedded"
    #: True when repro.analysis proved the bound check safe and the
    #: runtime skipped it (``ok`` is then vacuously True).
    bound_elided: bool = False


@dataclass
class AttributorEvent(TraceEvent):
    """An attributor body was evaluated and returned a mode."""

    kind: ClassVar[str] = "attributor"

    cls: str
    mode: Optional[str]
    source: str = "embedded"


@dataclass
class DfallCheckEvent(TraceEvent):
    """The dynamic waterfall invariant ``dfall(o, m)`` was asserted."""

    kind: ClassVar[str] = "dfall_check"

    cls: str
    method: str
    receiver_mode: Optional[str]
    sender_mode: Optional[str]
    holds: bool
    source: str = "embedded"
    #: True when repro.analysis proved the check safe and the runtime
    #: skipped it (``holds`` is then vacuously True).
    elided: bool = False


@dataclass
class MCaseElimEvent(TraceEvent):
    """A mode case was eliminated against a concrete mode."""

    kind: ClassVar[str] = "mcase_elim"

    mode: Optional[str]
    source: str = "embedded"


@dataclass
class EnergyExceptionEvent(TraceEvent):
    """An ``EnergyException`` was raised (bad check or dfall violation)."""

    kind: ClassVar[str] = "energy_exception"

    message: str
    mode: Optional[str] = None
    lower: Optional[str] = None
    upper: Optional[str] = None
    source: str = "embedded"


@dataclass
class ModeTransitionEvent(TraceEvent):
    """A mode context changed.

    ``scope`` distinguishes timelines: ``"closure"`` tracks the current
    execution mode (boot blocks, message sends), while
    ``"object:<Class>"`` tracks an object's own mode as snapshots
    re-attribute it.  ``energy_j`` is the platform energy-ledger total
    at the instant of the transition (None without a platform); the
    attribution report integrates energy between consecutive samples.
    """

    kind: ClassVar[str] = "mode_transition"

    scope: str
    from_mode: Optional[str]
    to_mode: Optional[str]
    energy_j: Optional[float] = None


@dataclass
class PlatformReadEvent(TraceEvent):
    """An external-context signal was read (battery, temperature)."""

    kind: ClassVar[str] = "platform_read"

    signal: str
    value: float


@dataclass
class MeterSampleEvent(TraceEvent):
    """Raw energy-ledger components at a meter-window boundary."""

    kind: ClassVar[str] = "meter_sample"

    meter: str
    phase: str  # "begin" or "end"
    cpu_j: float = 0.0
    peripheral_j: float = 0.0
    io_j: float = 0.0
    net_j: float = 0.0
    display_j: float = 0.0
    total_j: float = 0.0


@dataclass
class Span(TraceEvent):
    """A closed timed region; ``ts`` is the start, ``dur`` the length."""

    kind: ClassVar[str] = "span"

    name: str
    dur: float
    category: str = "phase"
    args: Dict[str, object] = field(default_factory=dict)


#: kind-string -> event class, for deserialization.
EVENT_KINDS: Dict[str, type] = {
    cls.kind: cls
    for cls in (SnapshotEvent, AttributorEvent, DfallCheckEvent,
                MCaseElimEvent, EnergyExceptionEvent, ModeTransitionEvent,
                PlatformReadEvent, MeterSampleEvent, Span)
}


def event_from_dict(data: Dict[str, object]) -> TraceEvent:
    """Rebuild an event from its ``as_dict()`` form (JSONL line)."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    cls = EVENT_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown trace event kind: {kind!r}")
    return cls(**payload)
