"""The trace collector: a bounded ring buffer of typed events.

Two implementations share one interface:

* :class:`Tracer` — records events with monotonic timestamps (via
  :func:`repro.platform.clock.monotonic_time`) into a bounded ring
  buffer; once a platform simulator is attached, timestamps come from
  the simulation clock instead so runtime events and platform activity
  share a timeline, and mode transitions capture the energy ledger.
* :class:`NullTracer` — every operation is a no-op and ``enabled`` is
  False.  Instrumented hot paths guard with ``if tracer.enabled:`` so
  the disabled cost is a single attribute check (the Figure-6 overhead
  budget).

The module-level :data:`NULL_TRACER` is the shared disabled instance;
code should never construct ``NullTracer`` per call site.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional

from repro.obs.events import (EnergyExceptionEvent, ModeTransitionEvent,
                              Span, TraceEvent, mode_name)

__all__ = ["Tracer", "NullTracer", "NULL_TRACER", "attach_platform"]


def _monotonic_clock() -> Callable[[], float]:
    # Imported lazily: repro.platform's package __init__ pulls in
    # modules that themselves import repro.obs.
    from repro.platform.clock import monotonic_time
    return monotonic_time


class NullTracer:
    """The disabled tracer: every operation is a cheap no-op."""

    enabled = False
    dropped = 0

    def now(self) -> float:
        return 0.0

    def energy_j(self) -> Optional[float]:
        return None

    def emit(self, event: TraceEvent) -> None:
        pass

    def events(self) -> List[TraceEvent]:
        return []

    def clear(self) -> None:
        pass

    def bind_platform(self, platform) -> None:
        pass

    @contextmanager
    def span(self, name: str, category: str = "phase",
             **args) -> Iterator[None]:
        yield

    def mode_transition(self, scope: str, from_mode, to_mode) -> None:
        pass

    def energy_exception(self, message: str, mode=None, lower=None,
                         upper=None, source: str = "embedded") -> None:
        pass

    def __len__(self) -> int:
        return 0


#: The shared disabled tracer; one attribute check on every hot path.
NULL_TRACER = NullTracer()


class Tracer:
    """Collects trace events into a bounded ring buffer.

    When the buffer is full the *oldest* event is evicted (``dropped``
    counts evictions), so a long run keeps its most recent window — the
    part a crash report or an attached report command wants.
    """

    enabled = True

    def __init__(self, capacity: int = 65536,
                 now: Optional[Callable[[], float]] = None) -> None:
        if capacity <= 0:
            raise ValueError(f"tracer capacity must be positive, "
                             f"got {capacity}")
        self.capacity = capacity
        self._buffer: List[TraceEvent] = []
        self._head = 0
        self.dropped = 0
        self._platform = None
        self._now = now if now is not None else _monotonic_clock()

    # ------------------------------------------------------------------
    # Clock and platform binding

    def bind_platform(self, platform) -> None:
        """Use the platform's simulation clock and energy ledger."""
        self._platform = platform
        self._now = platform.now

    def now(self) -> float:
        return float(self._now())

    def energy_j(self) -> Optional[float]:
        """The bound platform's energy-ledger total, if any."""
        ledger = getattr(self._platform, "ledger", None)
        return ledger.total_j if ledger is not None else None

    # ------------------------------------------------------------------
    # Recording

    def emit(self, event: TraceEvent) -> None:
        buffer = self._buffer
        if len(buffer) < self.capacity:
            buffer.append(event)
        else:
            buffer[self._head] = event
            self._head = (self._head + 1) % self.capacity
            self.dropped += 1

    def events(self) -> List[TraceEvent]:
        """Buffered events, oldest first."""
        return self._buffer[self._head:] + self._buffer[:self._head]

    def clear(self) -> None:
        self._buffer = []
        self._head = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._buffer)

    # ------------------------------------------------------------------
    # Convenience emitters (the runtime's hot-path vocabulary)

    @contextmanager
    def span(self, name: str, category: str = "phase",
             **args) -> Iterator[None]:
        """Time a region; the Span is emitted when the block closes."""
        start = self.now()
        try:
            yield
        finally:
            self.emit(Span(ts=start, name=name, dur=self.now() - start,
                           category=category, args=dict(args)))

    def mode_transition(self, scope: str, from_mode, to_mode) -> None:
        self.emit(ModeTransitionEvent(
            ts=self.now(), scope=scope, from_mode=mode_name(from_mode),
            to_mode=mode_name(to_mode), energy_j=self.energy_j()))

    def energy_exception(self, message: str, mode=None, lower=None,
                         upper=None, source: str = "embedded") -> None:
        self.emit(EnergyExceptionEvent(
            ts=self.now(), message=message, mode=mode_name(mode),
            lower=mode_name(lower), upper=mode_name(upper), source=source))


def attach_platform(tracer, platform) -> None:
    """Wire a tracer to a platform (clock, ledger, and signal reads).

    Platform simulators expose ``set_tracer`` so their own events
    (signal reads, meter samples) flow into the same buffer; bare
    platform stubs (e.g. the interpreter's ``NullPlatform``) only
    contribute their clock.
    """
    if platform is None or not tracer.enabled:
        return
    setter = getattr(platform, "set_tracer", None)
    if setter is not None:
        setter(tracer)
    else:
        tracer.bind_platform(platform)
