"""Shared foundation: mode lattices, constraints, and the error hierarchy."""

from repro.core.constraints import Atom, Constraint, ConstraintSet
from repro.core.errors import (
    BadCastError,
    EnergyException,
    EntError,
    EntRuntimeError,
    EntSyntaxError,
    EntTypeError,
    FuelExhausted,
    ModeLatticeError,
    SourceSpan,
    StuckError,
    UnknownModeError,
    WaterfallError,
)
from repro.core.modes import BOTTOM, TOP, Mode, ModeLattice

__all__ = [
    "Atom",
    "BOTTOM",
    "BadCastError",
    "Constraint",
    "ConstraintSet",
    "EnergyException",
    "EntError",
    "EntRuntimeError",
    "EntSyntaxError",
    "EntTypeError",
    "FuelExhausted",
    "Mode",
    "ModeLattice",
    "ModeLatticeError",
    "SourceSpan",
    "StuckError",
    "TOP",
    "UnknownModeError",
    "WaterfallError",
]
