"""Splitmix64 seed derivation and a tiny derived-stream PRNG.

Fleet-scale simulation needs one independent, reproducible random
stream *per simulated device* without paying for a fresh
:class:`random.Random` (a ~2.5 KB Mersenne state) per device — let
alone one per episode step.  The standard answer (numpy's
``SeedSequence``) is unavailable here, so this module provides the
same shape with zero dependencies:

* :func:`splitmix64` — the SplitMix64 finalizer (Steele et al.,
  "Fast splittable pseudorandom number generators", OOPSLA 2014), the
  mixer numpy's ``SeedSequence`` and Java's ``SplittableRandom`` are
  built on;
* :func:`derive_seed` — fold a path of integers (stream id, device
  index, …) into a root seed, giving a deterministic per-device seed
  that is independent of how devices are partitioned into shards or
  batches;
* :class:`SplitMix64` — a counter-based generator over the mixer:
  9 machine words of state, picklable, with just the draw kinds the
  fleet needs (uniform floats, bounded ints, gaussians).

Derivation is pure integer arithmetic, so ``derive_seed(root, k, i)``
is the same on every platform and in every worker process — the
property the fleet's bit-identical-across-shards guarantee rests on.
"""

from __future__ import annotations

from math import cos, log, pi, sqrt
from typing import Tuple

__all__ = ["splitmix64", "derive_seed", "SplitMix64"]

_MASK64 = (1 << 64) - 1

#: 2^64 / phi, the Weyl-sequence increment SplitMix64 advances by.
_GOLDEN_GAMMA = 0x9E3779B97F4A7C15


def splitmix64(value: int) -> int:
    """The SplitMix64 finalizer: avalanche one 64-bit word."""
    z = (value + _GOLDEN_GAMMA) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def derive_seed(root: int, *path: int) -> int:
    """A 64-bit seed for the stream addressed by ``path`` under ``root``.

    Equal paths give equal seeds; sibling paths give independent ones
    (each component is avalanched before the next folds in).  Negative
    components are permitted and hashed by their 64-bit two's
    complement.
    """
    state = splitmix64(root & _MASK64)
    for component in path:
        state = splitmix64((state ^ (component & _MASK64)) & _MASK64)
    return state


class SplitMix64:
    """A minimal counter-based PRNG over the SplitMix64 mixer.

    Unlike :class:`random.Random`, the whole state is two integers, so
    allocating one per device is nearly free and the instance pickles
    into a few bytes.  Draw methods mirror the subset of
    :class:`random.Random` the fleet uses.
    """

    __slots__ = ("_state",)

    def __init__(self, seed: int = 0) -> None:
        self._state = seed & _MASK64

    # -- state ---------------------------------------------------------

    def getstate(self) -> Tuple[int]:
        return (self._state,)

    def setstate(self, state: Tuple[int]) -> None:
        self._state = state[0] & _MASK64

    def __getstate__(self) -> Tuple[int]:
        return self.getstate()

    def __setstate__(self, state: Tuple[int]) -> None:
        self.setstate(state)

    def split(self, index: int) -> "SplitMix64":
        """An independent child stream (does not advance this one)."""
        return SplitMix64(derive_seed(self._state, index))

    # -- draws ---------------------------------------------------------

    def next_u64(self) -> int:
        """The next raw 64-bit word."""
        self._state = (self._state + _GOLDEN_GAMMA) & _MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return z ^ (z >> 31)

    def random(self) -> float:
        """A uniform float in [0, 1) with 53 bits of precision."""
        return (self.next_u64() >> 11) * (2.0 ** -53)

    def below(self, bound: int) -> int:
        """A uniform int in [0, bound).

        Uses the fixed-point multiply reduction; the modulo bias is
        2^-64-scale — irrelevant for simulation draws — and unlike
        rejection sampling every draw consumes exactly one word, which
        keeps device streams aligned no matter the bound.
        """
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        return (self.next_u64() * bound) >> 64

    def gauss(self, mu: float = 0.0, sigma: float = 1.0) -> float:
        """A gaussian draw via Box-Muller (always two words)."""
        u1 = (self.next_u64() >> 11) * (2.0 ** -53)
        u2 = (self.next_u64() >> 11) * (2.0 ** -53)
        # Guard the log: u1 == 0.0 happens once in 2^53 draws.
        if u1 <= 0.0:
            u1 = 2.0 ** -53
        return mu + sigma * sqrt(-2.0 * log(u1)) * cos(2.0 * pi * u2)

    def __repr__(self) -> str:
        return f"SplitMix64(state=0x{self._state:016x})"
