"""Error hierarchy for the ENT reproduction.

The paper distinguishes compile-time errors (static waterfall violations,
mode-case coverage problems, ill-formed lattices) from run-time errors
(``EnergyException`` for bad checks at snapshot time, ``BadCastError`` for
failed casts).  All exceptions raised by this package derive from
:class:`EntError` so callers can catch everything with one clause.
"""

from __future__ import annotations

from typing import Optional


class EntError(Exception):
    """Base class for every error raised by the ENT reproduction."""


class SourceSpan:
    """A half-open region of source text, for error reporting.

    A plain ``__slots__`` class rather than a dataclass: the lexer mints
    one span per token, so construction cost is on the pipeline hot path.
    """

    __slots__ = ("line", "column", "end_line", "end_column", "filename")

    def __init__(self, line: int, column: int,
                 end_line: Optional[int] = None,
                 end_column: Optional[int] = None,
                 filename: str = "<ent>") -> None:
        self.line = line
        self.column = column
        self.end_line = end_line
        self.end_column = end_column
        self.filename = filename

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SourceSpan):
            return NotImplemented
        return (self.line == other.line
                and self.column == other.column
                and self.end_line == other.end_line
                and self.end_column == other.end_column
                and self.filename == other.filename)

    def __repr__(self) -> str:
        return (f"SourceSpan(line={self.line!r}, column={self.column!r}, "
                f"end_line={self.end_line!r}, "
                f"end_column={self.end_column!r}, "
                f"filename={self.filename!r})")

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class EntSyntaxError(EntError):
    """Raised by the lexer or parser on malformed ENT source."""

    def __init__(self, message: str, span: Optional[SourceSpan] = None) -> None:
        self.span = span
        prefix = f"{span}: " if span is not None else ""
        super().__init__(f"{prefix}{message}")


class ModeLatticeError(EntError):
    """Raised when the ``modes { ... }`` declaration does not form a lattice.

    Program typing in the paper (section 4.1) requires the declared mode
    order to form a lattice; cycles or contradictory declarations are
    rejected at compile time.
    """


class UnknownModeError(ModeLatticeError):
    """Raised when a mode name is referenced but never declared."""

    def __init__(self, name: str) -> None:
        self.mode_name = name
        super().__init__(f"unknown mode: {name!r}")


class EntTypeError(EntError):
    """A compile-time type error (e.g. a static waterfall violation)."""

    def __init__(self, message: str, span: Optional[SourceSpan] = None) -> None:
        self.span = span
        prefix = f"{span}: " if span is not None else ""
        super().__init__(f"{prefix}{message}")


class WaterfallError(EntTypeError):
    """Static waterfall invariant violation: receiver mode > sender mode."""


class EntRuntimeError(EntError):
    """Base class for errors raised during ENT program execution."""


class EnergyException(EntRuntimeError):
    """The paper's ``EnergyException``: a *bad check* at snapshot time.

    Raised when an attributor returns a mode outside the bounds of the
    enclosing ``snapshot e [lo, hi]`` expression, or when the dynamic
    waterfall invariant would be violated.  Programs are expected to catch
    this and adapt (scale down quality of service, retry, etc.).
    """

    def __init__(self, message: str, mode: object = None,
                 lower: object = None, upper: object = None) -> None:
        self.mode = mode
        self.lower = lower
        self.upper = upper
        super().__init__(message)


class BadCastError(EntRuntimeError):
    """The paper's *bad cast*: ``(T)o`` where o's type is not a subtype of T."""


class StuckError(EntRuntimeError):
    """The interpreter reached a configuration with no applicable rule.

    A well-typed program never raises this (type soundness, Theorem 1); it
    exists so soundness violations in the implementation surface loudly
    instead of as arbitrary Python errors.
    """


class FuelExhausted(EntRuntimeError):
    """Evaluation exceeded its step budget (used to bound divergence)."""
