"""Mode constraint sets and constraint entailment.

The paper's type system carries a constraint set ``K`` of elements
``eta <= eta'`` where each side is either a declared mode constant or a
mode type variable (written ``mt``).  Entailment ``K |= K'`` holds iff the
reflexive-transitive closure of ``K' ∪ D`` is a subset of the closure of
``K ∪ D``, where ``D`` is the program's mode declaration (section 4.1).

We represent a variable by its name (a plain string) and a constant by a
:class:`~repro.core.modes.Mode`; a constraint is an ordered pair.  The
lattice supplies the ground facts between constants.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Set, Tuple, Union

from repro.core.modes import BOTTOM, TOP, Mode, ModeLattice

__all__ = ["Atom", "Constraint", "ConstraintSet"]

#: Either a concrete mode or the name of a mode type variable.
Atom = Union[Mode, str]

#: ``lhs <= rhs``.
Constraint = Tuple[Atom, Atom]


def _is_var(atom: Atom) -> bool:
    return isinstance(atom, str)


class ConstraintSet:
    """An immutable set of ``lhs <= rhs`` constraints with entailment.

    Instances are cheap to extend (:meth:`extend` returns a new set) and
    support the two queries the typechecker needs:

    * :meth:`entails_one` — does ``K ∪ D`` derive a single constraint?
    * :meth:`entails` — does it derive every constraint of another set?
    """

    __slots__ = ("_constraints", "lattice")

    def __init__(self, lattice: ModeLattice,
                 constraints: Iterable[Constraint] = ()) -> None:
        self.lattice = lattice
        normalized: Set[Constraint] = set()
        for lhs, rhs in constraints:
            self._check_atom(lhs)
            self._check_atom(rhs)
            normalized.add((lhs, rhs))
        self._constraints: FrozenSet[Constraint] = frozenset(normalized)

    def _check_atom(self, atom: Atom) -> None:
        if isinstance(atom, Mode):
            self.lattice.require(atom)
        elif not isinstance(atom, str) or not atom:
            raise TypeError(f"constraint atom must be Mode or variable "
                            f"name, got {atom!r}")

    # ------------------------------------------------------------------

    @property
    def constraints(self) -> FrozenSet[Constraint]:
        return self._constraints

    def extend(self, extra: Iterable[Constraint]) -> "ConstraintSet":
        """A new constraint set with ``extra`` added."""
        return ConstraintSet(self.lattice,
                             list(self._constraints) + list(extra))

    def variables(self) -> FrozenSet[str]:
        """All mode type variables mentioned by the constraints."""
        out: Set[str] = set()
        for lhs, rhs in self._constraints:
            if _is_var(lhs):
                out.add(lhs)
            if _is_var(rhs):
                out.add(rhs)
        return frozenset(out)

    def substitute(self, mapping: Dict[str, Atom]) -> "ConstraintSet":
        """Point-wise substitution of variables (the paper's ``{iota/iota'}``)."""
        def subst(atom: Atom) -> Atom:
            if _is_var(atom) and atom in mapping:
                return mapping[atom]
            return atom

        return ConstraintSet(
            self.lattice,
            [(subst(lhs), subst(rhs)) for lhs, rhs in self._constraints])

    # ------------------------------------------------------------------
    # Entailment

    def _successors(self, atom: Atom) -> Set[Atom]:
        """Atoms one step above ``atom`` under K ∪ D."""
        out: Set[Atom] = set()
        for lhs, rhs in self._constraints:
            if lhs == atom:
                out.add(rhs)
        if isinstance(atom, Mode):
            # Ground lattice facts (the full up-set keeps the search
            # shallow), plus the implicit BOTTOM <= var axioms so that
            # collapsed (inconsistent) sets stay transitively closed.
            out.update(self.lattice.up_set(atom))
            if atom == BOTTOM:
                out.update(self.variables())
        else:
            # Implicit var <= TOP axiom.
            out.add(TOP)
        return out

    def _reachable(self, start: Atom) -> Set[Atom]:
        seen: Set[Atom] = {start}
        frontier = [start]
        while frontier:
            atom = frontier.pop()
            for nxt in self._successors(atom):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    def entails_one(self, lhs: Atom, rhs: Atom) -> bool:
        """Does ``K ∪ D`` derive ``lhs <= rhs``?"""
        self._check_atom(lhs)
        self._check_atom(rhs)
        if lhs == rhs:
            return True
        if lhs == BOTTOM or rhs == TOP:
            return True
        if isinstance(lhs, Mode) and isinstance(rhs, Mode):
            if self.lattice.leq(lhs, rhs):
                return True
        reach = self._reachable(lhs)
        if rhs in reach:
            return True
        # lhs <= BOTTOM squeezes lhs to the bottom: below everything.
        if BOTTOM in reach:
            return True
        # TOP <= rhs squeezes rhs to the top: above everything.
        return rhs in self._reachable(TOP)

    def entails(self, other: "ConstraintSet") -> bool:
        """``K |= K'``: every constraint of ``other`` is derivable here."""
        return all(self.entails_one(lhs, rhs)
                   for lhs, rhs in other.constraints)

    def consistent(self) -> bool:
        """No two distinct constants are forced into a cycle.

        A constraint set like ``{full <= X, X <= saver}`` (with
        ``saver < full``) is unsatisfiable: it would require
        ``full <= saver``.  We detect this by checking that the closure
        never derives ``a <= b`` for constants with ``not a <= b``.
        """
        constants = {a for c in self._constraints for a in c
                     if isinstance(a, Mode)}
        for a in constants:
            reach = self._reachable(a)
            for b in reach:
                if isinstance(b, Mode) and not self.lattice.leq(a, b):
                    return False
        return True

    def solve_range(self, var: str) -> Tuple[Mode, Mode]:
        """The tightest constant interval ``[lo, hi]`` containing ``var``.

        Used to check bounded snapshots statically and to report helpful
        error messages.  Conservative: joins all constant lower bounds and
        meets all constant upper bounds reachable through the constraint
        graph.
        """
        lo, hi = BOTTOM, TOP
        for atom in self._reachable(var):
            if isinstance(atom, Mode):
                hi = self.lattice.meet(hi, atom)
        # Lower bounds: constants that reach the variable.
        constants = {a for c in self._constraints for a in c
                     if isinstance(a, Mode)}
        for const in constants:
            if var in self._reachable(const):
                lo = self.lattice.join(lo, const)
        return lo, hi

    # ------------------------------------------------------------------

    def __contains__(self, constraint: Constraint) -> bool:
        return constraint in self._constraints

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConstraintSet):
            return NotImplemented
        return (self._constraints == other._constraints
                and self.lattice == other.lattice)

    def __hash__(self) -> int:
        return hash(self._constraints)

    def __repr__(self) -> str:
        parts = sorted(f"{lhs} <= {rhs}" for lhs, rhs in self._constraints)
        return f"ConstraintSet({{{', '.join(parts)}}})"
