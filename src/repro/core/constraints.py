"""Mode constraint sets and constraint entailment.

The paper's type system carries a constraint set ``K`` of elements
``eta <= eta'`` where each side is either a declared mode constant or a
mode type variable (written ``mt``).  Entailment ``K |= K'`` holds iff the
reflexive-transitive closure of ``K' ∪ D`` is a subset of the closure of
``K ∪ D``, where ``D`` is the program's mode declaration (section 4.1).

We represent a variable by its name (a plain string) and a constant by a
:class:`~repro.core.modes.Mode`; a constraint is an ordered pair.  The
lattice supplies the ground facts between constants.

Sets are immutable, which makes them ideal cache subjects: the adjacency
index, reachability closures, and entailment answers are memoized per
instance, and :meth:`extend`/:meth:`substitute` route through an interning
constructor so equal sets share one instance (and therefore one warm
cache) per lattice.  ``ConstraintSet.MEMOIZE`` switches every cache off
for the cache-transparency test suite; see docs/PERFORMANCE.md.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple, Union

from repro.core.modes import BOTTOM, TOP, Mode, ModeLattice

__all__ = ["Atom", "Constraint", "ConstraintSet"]

#: Either a concrete mode or the name of a mode type variable.
Atom = Union[Mode, str]

#: ``lhs <= rhs``.
Constraint = Tuple[Atom, Atom]


def _is_var(atom: Atom) -> bool:
    return isinstance(atom, str)


class ConstraintSet:
    """An immutable set of ``lhs <= rhs`` constraints with entailment.

    Instances are cheap to extend (:meth:`extend` returns a new set) and
    support the two queries the typechecker needs:

    * :meth:`entails_one` — does ``K ∪ D`` derive a single constraint?
    * :meth:`entails` — does it derive every constraint of another set?
    """

    __slots__ = ("_constraints", "lattice", "_fwd", "_rev", "_vars",
                 "_reach", "_back", "_entailed")

    #: Class-wide switch for every derived-result cache (reachability,
    #: entailment memos, interning).  The adjacency index itself is pure
    #: representation and stays on either way.  Flip to ``False`` only in
    #: cache-transparency tests; answers must not change.
    MEMOIZE = True

    def __init__(self, lattice: ModeLattice,
                 constraints: Iterable[Constraint] = (),
                 *, _validated: Optional[FrozenSet[Constraint]] = None) -> None:
        self.lattice = lattice
        if _validated is not None:
            # Internal fast path: atoms were validated by the instance
            # the set was derived from (extend/substitute/interning).
            self._constraints = _validated
        else:
            normalized: Set[Constraint] = set()
            for lhs, rhs in constraints:
                self._check_atom(lhs)
                self._check_atom(rhs)
                normalized.add((lhs, rhs))
            self._constraints = frozenset(normalized)
        self._fwd: Optional[Dict[Atom, Tuple[Atom, ...]]] = None
        self._rev: Optional[Dict[Atom, Tuple[Atom, ...]]] = None
        self._vars: Optional[FrozenSet[str]] = None
        self._reach: Dict[Atom, FrozenSet[Atom]] = {}
        self._back: Dict[Atom, FrozenSet[Atom]] = {}
        self._entailed: Dict[Constraint, bool] = {}

    def _check_atom(self, atom: Atom) -> None:
        if isinstance(atom, Mode):
            self.lattice.require(atom)
        elif not isinstance(atom, str) or not atom:
            raise TypeError(f"constraint atom must be Mode or variable "
                            f"name, got {atom!r}")

    # ------------------------------------------------------------------
    # Derivation (interned fast constructor)

    @classmethod
    def _make(cls, lattice: ModeLattice,
              validated: FrozenSet[Constraint]) -> "ConstraintSet":
        """Build from already-validated constraints, interning per lattice.

        Interning means repeatedly deriving the same set (each method body
        re-extends its class's base constraints, every generic call site
        re-substitutes the same mode arguments) lands on one instance whose
        reachability/entailment caches are already warm.
        """
        if not ConstraintSet.MEMOIZE:
            return cls(lattice, _validated=validated)
        try:
            table = lattice._constraint_set_intern  # type: ignore[attr-defined]
        except AttributeError:
            table = {}
            lattice._constraint_set_intern = table  # type: ignore[attr-defined]
        existing = table.get(validated)
        if existing is None:
            existing = cls(lattice, _validated=validated)
            table[validated] = existing
        return existing

    # ------------------------------------------------------------------

    @property
    def constraints(self) -> FrozenSet[Constraint]:
        return self._constraints

    def extend(self, extra: Iterable[Constraint]) -> "ConstraintSet":
        """A new constraint set with ``extra`` added.

        Only the *new* constraints are validated; the atoms already in
        this set were checked when it was built.
        """
        extra_list: List[Constraint] = []
        for lhs, rhs in extra:
            self._check_atom(lhs)
            self._check_atom(rhs)
            extra_list.append((lhs, rhs))
        combined = self._constraints.union(extra_list)
        if ConstraintSet.MEMOIZE and combined == self._constraints:
            return self
        return self._make(self.lattice, combined)

    def variables(self) -> FrozenSet[str]:
        """All mode type variables mentioned by the constraints."""
        if self._vars is None:
            out: Set[str] = set()
            for lhs, rhs in self._constraints:
                if _is_var(lhs):
                    out.add(lhs)
                if _is_var(rhs):
                    out.add(rhs)
            self._vars = frozenset(out)
        return self._vars

    def substitute(self, mapping: Dict[str, Atom]) -> "ConstraintSet":
        """Point-wise substitution of variables (the paper's ``{iota/iota'}``).

        Validates only the atoms the mapping actually introduces; the
        untouched atoms were validated when this set was built.
        """
        get = mapping.get

        def subst(atom: Atom) -> Atom:
            if type(atom) is str:
                new = get(atom)
                if new is not None:
                    self._check_atom(new)
                    return new
            return atom

        pairs = frozenset((subst(lhs), subst(rhs))
                          for lhs, rhs in self._constraints)
        return self._make(self.lattice, pairs)

    # ------------------------------------------------------------------
    # Entailment

    def _index(self) -> Dict[Atom, Tuple[Atom, ...]]:
        """Forward adjacency of the explicit constraints (lazy, cached)."""
        if self._fwd is None:
            fwd: Dict[Atom, List[Atom]] = {}
            rev: Dict[Atom, List[Atom]] = {}
            for lhs, rhs in self._constraints:
                fwd.setdefault(lhs, []).append(rhs)
                rev.setdefault(rhs, []).append(lhs)
            self._fwd = {a: tuple(s) for a, s in fwd.items()}
            self._rev = {a: tuple(s) for a, s in rev.items()}
        return self._fwd

    def _successors(self, atom: Atom) -> Set[Atom]:
        """Atoms one step above ``atom`` under K ∪ D."""
        out: Set[Atom] = set(self._index().get(atom, ()))
        if isinstance(atom, Mode):
            # Ground lattice facts (the full up-set keeps the search
            # shallow), plus the implicit BOTTOM <= var axioms so that
            # collapsed (inconsistent) sets stay transitively closed.
            out.update(self.lattice.up_set(atom))
            if atom == BOTTOM:
                out.update(self.variables())
        else:
            # Implicit var <= TOP axiom.
            out.add(TOP)
        return out

    def _predecessors(self, atom: Atom) -> Set[Atom]:
        """Atoms one step below ``atom`` — the transpose of _successors."""
        self._index()
        assert self._rev is not None
        out: Set[Atom] = set(self._rev.get(atom, ()))
        if isinstance(atom, Mode):
            out.update(self.lattice.down_set(atom))
            if atom == TOP:
                out.update(self.variables())
        else:
            out.add(BOTTOM)
        return out

    def _reachable(self, start: Atom) -> FrozenSet[Atom]:
        cached = self._reach.get(start)
        if cached is not None:
            return cached
        seen: Set[Atom] = {start}
        frontier = [start]
        while frontier:
            atom = frontier.pop()
            for nxt in self._successors(atom):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        result = frozenset(seen)
        if ConstraintSet.MEMOIZE:
            self._reach[start] = result
        return result

    def _reachable_back(self, start: Atom) -> FrozenSet[Atom]:
        """Everything that reaches ``start`` under K ∪ D."""
        cached = self._back.get(start)
        if cached is not None:
            return cached
        seen: Set[Atom] = {start}
        frontier = [start]
        while frontier:
            atom = frontier.pop()
            for prev in self._predecessors(atom):
                if prev not in seen:
                    seen.add(prev)
                    frontier.append(prev)
        result = frozenset(seen)
        if ConstraintSet.MEMOIZE:
            self._back[start] = result
        return result

    def entails_one(self, lhs: Atom, rhs: Atom) -> bool:
        """Does ``K ∪ D`` derive ``lhs <= rhs``?"""
        self._check_atom(lhs)
        self._check_atom(rhs)
        if lhs == rhs:
            return True
        if lhs == BOTTOM or rhs == TOP:
            return True
        if isinstance(lhs, Mode) and isinstance(rhs, Mode):
            if self.lattice.leq(lhs, rhs):
                return True
        key = (lhs, rhs)
        cached = self._entailed.get(key)
        if cached is not None:
            return cached
        reach = self._reachable(lhs)
        if rhs in reach:
            answer = True
        elif BOTTOM in reach:
            # lhs <= BOTTOM squeezes lhs to the bottom: below everything.
            answer = True
        else:
            # TOP <= rhs squeezes rhs to the top: above everything.
            answer = rhs in self._reachable(TOP)
        if ConstraintSet.MEMOIZE:
            self._entailed[key] = answer
        return answer

    def entails(self, other: "ConstraintSet") -> bool:
        """``K |= K'``: every constraint of ``other`` is derivable here."""
        return all(self.entails_one(lhs, rhs)
                   for lhs, rhs in other.constraints)

    def consistent(self) -> bool:
        """No two distinct constants are forced into a cycle.

        A constraint set like ``{full <= X, X <= saver}`` (with
        ``saver < full``) is unsatisfiable: it would require
        ``full <= saver``.  We detect this by checking that the closure
        never derives ``a <= b`` for constants with ``not a <= b``.
        """
        constants = {a for c in self._constraints for a in c
                     if isinstance(a, Mode)}
        for a in constants:
            reach = self._reachable(a)
            for b in reach:
                if isinstance(b, Mode) and not self.lattice.leq(a, b):
                    return False
        return True

    def solve_range(self, var: str) -> Tuple[Mode, Mode]:
        """The tightest constant interval ``[lo, hi]`` containing ``var``.

        Used to check bounded snapshots statically and to report helpful
        error messages.  Conservative: joins all constant lower bounds and
        meets all constant upper bounds reachable through the constraint
        graph.  Lower bounds come from one backward reachability pass —
        the constants that reach ``var`` — rather than a forward search
        from every constant in the set.
        """
        lo, hi = BOTTOM, TOP
        meet = self.lattice.meet
        join = self.lattice.join
        for atom in self._reachable(var):
            if isinstance(atom, Mode):
                hi = meet(hi, atom)
        for atom in self._reachable_back(var):
            if isinstance(atom, Mode):
                lo = join(lo, atom)
        return lo, hi

    # ------------------------------------------------------------------

    def __contains__(self, constraint: Constraint) -> bool:
        return constraint in self._constraints

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConstraintSet):
            return NotImplemented
        return (self._constraints == other._constraints
                and self.lattice == other.lattice)

    def __hash__(self) -> int:
        return hash(self._constraints)

    def __repr__(self) -> str:
        parts = sorted(f"{lhs} <= {rhs}" for lhs, rhs in self._constraints)
        return f"ConstraintSet({{{', '.join(parts)}}})"
