"""Mode lattices: the foundation of ENT's type system.

A ``modes { a <= b; b <= c; }`` declaration induces a partial order over
mode constants.  The paper requires the declared order to form a lattice
(program typing, section 4.1), augmented with distinguished top and bottom
elements written ⊤ and ⊥ in the formal system.  This module provides:

* :class:`Mode` — an interned mode constant (including ``TOP`` / ``BOTTOM``);
* :class:`ModeLattice` — the declared partial order with reflexive-
  transitive closure, lattice validation, and join/meet operations.

Mode *variables* (the ``mt`` of the formal syntax) and the dynamic mode
``?`` live in :mod:`repro.lang.types`; this module only knows about
concrete mode constants, which is all the runtime ever manipulates.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import ModeLatticeError, UnknownModeError

__all__ = ["Mode", "TOP", "BOTTOM", "ModeLattice"]


class Mode:
    """An interned mode constant.

    Two modes are identical iff their names are equal; instances are
    interned so ``is`` comparisons are safe.  The distinguished modes
    ``TOP`` and ``BOTTOM`` are members of every lattice.
    """

    _interned: Dict[str, "Mode"] = {}

    __slots__ = ("name", "_hash")

    def __new__(cls, name: str) -> "Mode":
        existing = cls._interned.get(name)
        if existing is not None:
            return existing
        if not name or not all(ch.isalnum() or ch in "_$" for ch in name):
            raise ModeLatticeError(f"invalid mode name: {name!r}")
        mode = super().__new__(cls)
        mode.name = name
        mode._hash = hash(name)
        cls._interned[name] = mode
        return mode

    def __repr__(self) -> str:
        return f"Mode({self.name!r})"

    def __str__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Mode):
            return self.name == other.name
        return NotImplemented

    def __reduce__(self):
        return (Mode, (self.name,))


#: The greatest mode, written ⊤ in the paper.  The boot configuration of a
#: program runs in ``TOP`` (reduction starts as ``cl(⊤, e)``).
TOP = Mode("$top")

#: The least mode, written ⊥ in the paper.
BOTTOM = Mode("$bottom")


class ModeLattice:
    """The declared partial order over mode constants, closed and validated.

    Parameters
    ----------
    declarations:
        ``(lesser, greater)`` pairs, one per ``m1 <= m2`` clause of a
        ``modes`` declaration.
    extra_modes:
        Mode names that participate in the lattice without appearing in any
        ordering clause (they are still bounded by ``BOTTOM``/``TOP``).

    Raises
    ------
    ModeLatticeError
        If the declared order contains a nontrivial cycle (two distinct
        modes each ≤ the other) or if any pair of modes lacks a unique
        least upper bound / greatest lower bound, i.e. the order is not a
        lattice.
    """

    def __init__(self,
                 declarations: Iterable[Tuple[Mode, Mode]] = (),
                 extra_modes: Iterable[Mode] = ()) -> None:
        self._pairs: List[Tuple[Mode, Mode]] = list(declarations)
        modes = {TOP, BOTTOM}
        modes.update(extra_modes)
        for lesser, greater in self._pairs:
            modes.add(lesser)
            modes.add(greater)
        self._modes: FrozenSet[Mode] = frozenset(modes)
        self._leq: Dict[Mode, FrozenSet[Mode]] = self._close()
        # Down-sets are the transpose of the up-set closure; precomputing
        # them here makes down_set/meet O(1) lookups instead of per-query
        # scans over the whole lattice.
        self._geq: Dict[Mode, FrozenSet[Mode]] = {
            m: frozenset(o for o in self._modes if m in self._leq[o])
            for m in self._modes}
        self._validate_antisymmetry()
        # Validation visits every pair anyway, so it doubles as the pass
        # that fills the join/meet tables consulted by join()/meet().
        self._joins: Dict[Tuple[Mode, Mode], Mode] = {}
        self._meets: Dict[Tuple[Mode, Mode], Mode] = {}
        self._validate_lattice()

    @classmethod
    def from_names(cls, declarations: Iterable[Tuple[str, str]],
                   extra_modes: Iterable[str] = ()) -> "ModeLattice":
        """Build a lattice from ``(lesser_name, greater_name)`` pairs."""
        pairs = [(Mode(a), Mode(b)) for a, b in declarations]
        extras = [Mode(name) for name in extra_modes]
        return cls(pairs, extras)

    @classmethod
    def linear(cls, names: Sequence[str]) -> "ModeLattice":
        """Build a total order ``names[0] <= names[1] <= ...``.

        This is the common case in the paper's benchmarks (e.g.
        ``energy_saver <= managed <= full_throttle``).
        """
        if not names:
            return cls()
        pairs = list(zip(names, names[1:]))
        return cls.from_names(pairs, extra_modes=[names[0]])

    # ------------------------------------------------------------------
    # Construction helpers

    def _close(self) -> Dict[Mode, FrozenSet[Mode]]:
        """Reflexive-transitive closure of the declared order.

        Returns a map from each mode to the frozenset of modes ≥ it.
        ``BOTTOM`` is below everything and ``TOP`` above everything.
        """
        up: Dict[Mode, set] = {m: {m, TOP} for m in self._modes}
        up[BOTTOM] = set(self._modes)
        for lesser, greater in self._pairs:
            up[lesser].add(greater)
        # Warshall-style saturation; lattices here are tiny (a handful of
        # modes), so the cubic closure is perfectly fine.
        changed = True
        while changed:
            changed = False
            for m in self._modes:
                above = up[m]
                for g in list(above):
                    extra = up[g] - above
                    if extra:
                        above.update(extra)
                        changed = True
        return {m: frozenset(s) for m, s in up.items()}

    def _validate_antisymmetry(self) -> None:
        for a, b in itertools.combinations(self._modes, 2):
            if b in self._leq[a] and a in self._leq[b]:
                raise ModeLatticeError(
                    f"mode declaration cycle: {a} <= {b} and {b} <= {a}")

    def _validate_lattice(self) -> None:
        for m in self._modes:
            self._joins[(m, m)] = m
            self._meets[(m, m)] = m
        for a, b in itertools.combinations(self._modes, 2):
            lub = self._lub(a, b)
            if lub is None:
                raise ModeLatticeError(
                    f"modes {a} and {b} have no unique least upper bound; "
                    f"the declared order is not a lattice")
            glb = self._glb(a, b)
            if glb is None:
                raise ModeLatticeError(
                    f"modes {a} and {b} have no unique greatest lower "
                    f"bound; the declared order is not a lattice")
            self._joins[(a, b)] = self._joins[(b, a)] = lub
            self._meets[(a, b)] = self._meets[(b, a)] = glb

    # ------------------------------------------------------------------
    # Queries

    @property
    def modes(self) -> FrozenSet[Mode]:
        """All modes in the lattice, including ``TOP`` and ``BOTTOM``."""
        return self._modes

    @property
    def declared_modes(self) -> FrozenSet[Mode]:
        """Program-declared modes, i.e. everything but ``TOP``/``BOTTOM``."""
        return self._modes - {TOP, BOTTOM}

    def __contains__(self, mode: Mode) -> bool:
        return mode in self._modes

    def __iter__(self) -> Iterator[Mode]:
        return iter(self._modes)

    def require(self, mode: Mode) -> Mode:
        """Return ``mode`` if declared, else raise :class:`UnknownModeError`."""
        if mode not in self._modes:
            raise UnknownModeError(mode.name)
        return mode

    def leq(self, lesser: Mode, greater: Mode) -> bool:
        """The declared order: ``lesser <= greater``?"""
        try:
            up = self._leq[lesser]
        except KeyError:
            raise UnknownModeError(lesser.name) from None
        if greater in up:
            return True
        if greater not in self._modes:
            raise UnknownModeError(greater.name)
        return False

    def lt(self, lesser: Mode, greater: Mode) -> bool:
        """Strict order: ``lesser <= greater`` and the two are distinct."""
        return lesser != greater and self.leq(lesser, greater)

    def comparable(self, a: Mode, b: Mode) -> bool:
        return self.leq(a, b) or self.leq(b, a)

    def up_set(self, mode: Mode) -> FrozenSet[Mode]:
        """All modes ≥ ``mode`` (including itself)."""
        if mode not in self._modes:
            raise UnknownModeError(mode.name)
        return self._leq[mode]

    def down_set(self, mode: Mode) -> FrozenSet[Mode]:
        """All modes ≤ ``mode`` (including itself)."""
        try:
            return self._geq[mode]
        except KeyError:
            raise UnknownModeError(mode.name) from None

    def _lub(self, a: Mode, b: Mode) -> Optional[Mode]:
        uppers = self._leq[a] & self._leq[b]
        minimal = [u for u in uppers
                   if not any(v != u and u in self._leq[v] for v in uppers)]
        return minimal[0] if len(minimal) == 1 else None

    def _glb(self, a: Mode, b: Mode) -> Optional[Mode]:
        lowers = self.down_set(a) & self.down_set(b)
        maximal = [l for l in lowers
                   if not any(v != l and v in self._leq[l] for v in lowers)]
        return maximal[0] if len(maximal) == 1 else None

    def join(self, a: Mode, b: Mode) -> Mode:
        """Least upper bound.  Always defined for a validated lattice."""
        try:
            return self._joins[(a, b)]
        except KeyError:
            self.require(a)
            self.require(b)
            raise AssertionError("validated lattice lost its join")

    def meet(self, a: Mode, b: Mode) -> Mode:
        """Greatest lower bound.  Always defined for a validated lattice."""
        try:
            return self._meets[(a, b)]
        except KeyError:
            self.require(a)
            self.require(b)
            raise AssertionError("validated lattice lost its meet")

    def clamp(self, mode: Mode, lower: Mode, upper: Mode) -> bool:
        """Is ``lower <= mode <= upper``?  (Snapshot bound check.)"""
        return self.leq(lower, mode) and self.leq(mode, upper)

    def chain(self) -> List[Mode]:
        """Declared modes in some order consistent with ≤ (topological)."""
        remaining = set(self.declared_modes)
        ordered: List[Mode] = []
        while remaining:
            layer = sorted(
                (m for m in remaining
                 if not any(self.lt(o, m) for o in remaining)),
                key=lambda m: m.name)
            assert layer, "cycle survived validation"
            ordered.extend(layer)
            remaining.difference_update(layer)
        return ordered

    def __repr__(self) -> str:
        decls = ", ".join(f"{a} <= {b}" for a, b in self._pairs)
        return f"ModeLattice({{{decls}}})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ModeLattice):
            return NotImplemented
        return self._leq == other._leq

    def __hash__(self) -> int:
        return hash(frozenset((m, s) for m, s in self._leq.items()))
