"""E2 — the battery-casing experiment (Figure 10).

Each benchmark processes its *large* workload under each boot mode;
the boot mode eliminates a mode case that selects the Figure 7 QoS
level.  Energies are normalized against the full_throttle boot.  The
(system, benchmark, boot) grid fans out through
:mod:`repro.eval.parallel` when ``jobs`` > 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.eval.config import e2_benchmarks
from repro.eval.parallel import EpisodeTask, run_episodes
from repro.workloads.base import BATTERY_MODES, ES, FT, MG

__all__ = ["Figure10Row", "figure10"]


@dataclass
class Figure10Row:
    benchmark: str
    system: str
    #: boot mode -> measured energy (J), large workload.
    energy_j: Dict[str, float]

    def normalized(self, boot_mode: str) -> float:
        return self.energy_j[boot_mode] / self.energy_j[FT]

    def percent_saved(self, boot_mode: str) -> float:
        """The number printed on the Figure 10 bars."""
        return 100.0 * (1.0 - self.normalized(boot_mode))

    @property
    def energy_proportional(self) -> bool:
        """es <= mg <= ft — the 'good news for energy-proportional
        computing' observation of section 6.2."""
        return (self.energy_j[ES] <= self.energy_j[MG]
                <= self.energy_j[FT])


def figure10(systems: Tuple[str, ...] = ("A", "B", "C"),
             seed: int = 0,
             jobs: Optional[int] = None,
             tracer=None) -> List[Figure10Row]:
    tasks = [EpisodeTask(
        kind="e2", key=(system, name, boot), benchmark=name,
        params=dict(system=system, boot_mode=boot, workload_mode=FT,
                    seed=seed))
        for system in systems
        for name in e2_benchmarks(system)
        for boot in BATTERY_MODES]
    results = run_episodes(tasks, jobs=jobs, tracer=tracer)
    rows: List[Figure10Row] = []
    for system in systems:
        for name in e2_benchmarks(system):
            energies = {boot: results[(system, name, boot)].energy_j
                        for boot in BATTERY_MODES}
            rows.append(Figure10Row(benchmark=name, system=system,
                                    energy_j=energies))
    return rows
