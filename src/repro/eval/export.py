"""Machine-readable export of every figure's data.

`results/figure*.txt` are the human-readable tables; this module emits
the same data as JSON so downstream users can plot or post-process it
(the paper ships raw data as supplemental material — this is our
equivalent).
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional

from repro.eval.config import figure7_rows
from repro.eval.e1 import Figure9Bar, figure8, figure9
from repro.eval.e2 import figure10
from repro.eval.e3 import figure11, trace_stats
from repro.eval.overhead import figure6
from repro.workloads.base import BATTERY_MODES

__all__ = ["export_all", "figure_data"]


def figure_data(name: str, seed: int = 0,
                overhead_repeats: int = 5,
                jobs: Optional[int] = None) -> object:
    """The JSON-serializable data behind one figure.

    ``jobs`` fans episode grids out over a process pool (figures
    8-11); the emitted data is bit-identical to a serial export.
    """
    if name == "figure6":
        return [{
            "benchmark": row.benchmark,
            "description": row.description,
            "systems": row.systems,
            "cloc": row.cloc,
            "ent_changes": row.ent_changes,
            "overhead_percent": round(row.overhead_percent, 4),
            "mechanism_counts": row.counts,
        } for row in figure6(repeats=overhead_repeats, seed=seed)]
    if name == "figure7":
        return figure7_rows()
    if name == "figure8":
        out = []
        for row in figure8("A", seed=seed, jobs=jobs):
            for (boot, workload, silent), episode in row.cells.items():
                out.append({
                    "benchmark": row.benchmark,
                    "boot_mode": boot,
                    "workload_mode": workload,
                    "silent": silent,
                    "energy_j": round(episode.energy_j, 3),
                    "duration_s": round(episode.duration_s, 3),
                    "exception": episode.exception_raised,
                    "qos_mode": episode.qos_mode,
                })
        return out
    if name == "figure9":
        return [{
            "system": bar.system,
            "benchmark": bar.benchmark,
            "boot_mode": bar.boot_mode,
            "workload_mode": bar.workload_mode,
            "ent_energy_j": round(bar.ent_energy_j, 3),
            "silent_energy_j": round(bar.silent_energy_j, 3),
            "ent_normalized": round(bar.ent_normalized, 4),
            "silent_normalized": round(bar.silent_normalized, 4),
            "percent_saved": round(bar.percent_saved, 3),
        } for bar in figure9(seed=seed, jobs=jobs)]
    if name == "figure10":
        return [{
            "system": row.system,
            "benchmark": row.benchmark,
            "energy_j": {mode: round(row.energy_j[mode], 3)
                         for mode in BATTERY_MODES},
            "percent_saved": {
                mode: round(row.percent_saved(mode), 3)
                for mode in BATTERY_MODES},
            "energy_proportional": row.energy_proportional,
        } for row in figure10(seed=seed, jobs=jobs)]
    if name == "figure11":
        out = []
        for pair in figure11(seed=seed, jobs=jobs):
            for variant, trace in (("ent", pair.ent),
                                   ("java", pair.java)):
                stats = trace_stats(trace)
                out.append({
                    "benchmark": pair.benchmark,
                    "variant": variant,
                    "duration_s": round(trace.duration_s, 3),
                    "energy_j": round(trace.energy_j, 3),
                    "sleeps": trace.sleeps,
                    "tail_mean_c": round(stats["tail_mean_c"], 3),
                    "peak_c": round(stats["peak_c"], 3),
                    # Trace decimated to ~200 points for plotting.
                    "trace": _decimate(trace.trace, 200),
                })
        return out
    raise KeyError(f"unknown figure {name!r}")


def _decimate(points, target: int) -> List[List[float]]:
    if len(points) <= target:
        return [[round(t, 5), round(v, 3)] for t, v in points]
    step = len(points) / target
    out = []
    for index in range(target):
        t, v = points[int(index * step)]
        out.append([round(t, 5), round(v, 3)])
    out.append([round(points[-1][0], 5), round(points[-1][1], 3)])
    return out


FIGURES = ("figure6", "figure7", "figure8", "figure9", "figure10",
           "figure11")


def export_all(directory: str = "results", seed: int = 0,
               figures: Optional[List[str]] = None,
               overhead_repeats: int = 5,
               jobs: Optional[int] = None) -> Dict[str, str]:
    """Write ``<figure>.json`` files; returns name -> path."""
    out_dir = pathlib.Path(directory)
    out_dir.mkdir(exist_ok=True)
    written: Dict[str, str] = {}
    for name in figures if figures is not None else FIGURES:
        data = figure_data(name, seed=seed,
                           overhead_repeats=overhead_repeats,
                           jobs=jobs)
        path = out_dir / f"{name}.json"
        path.write_text(json.dumps(data, indent=2) + "\n")
        written[name] = str(path)
    return written
