"""Plain-text renderers for every table and figure of the evaluation.

The benchmark harness prints the same rows/series the paper reports;
these functions turn the experiment data structures into aligned text
tables (and an ASCII rendition of the Figure 11 traces).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.eval.config import (VIOLATING_COMBOS, figure6_static_rows,
                               figure7_rows)
from repro.eval.e1 import Figure8Row, Figure9Bar
from repro.eval.e2 import Figure10Row
from repro.eval.e3 import Figure11Pair, trace_stats
from repro.eval.overhead import OverheadRow
from repro.workloads.base import BATTERY_MODES, ES, FT, MG

__all__ = ["render_table", "format_figure6", "format_figure7",
           "format_figure8", "format_figure9", "format_figure10",
           "format_figure11"]


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[str]]) -> str:
    """Align columns; the universal table printer."""
    materialized = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells):
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()
    out = [line(headers), line("-" * w for w in widths)]
    out.extend(line(row) for row in materialized)
    return "\n".join(out)


def format_figure7() -> str:
    headers = ["name", "workload attribution", "energy_saver", "managed",
               "full_throttle", "QoS adjustment", "energy_saver",
               "default (managed)", "full_throttle"]
    rows = [[r["name"], r["workload"], r["workload_es"], r["workload_mg"],
             r["workload_ft"], r["qos"], r["qos_es"], r["qos_mg"],
             r["qos_ft"]] for r in figure7_rows()]
    return "Figure 7: ENT Benchmark Settings\n" + render_table(headers,
                                                               rows)


def format_figure6(rows: List[OverheadRow]) -> str:
    headers = ["name", "description", "System", "CLOC", "ENT Changes",
               "% Energy Overhead"]
    body = [[r.benchmark, r.description, r.systems, r.cloc, r.ent_changes,
             f"{r.overhead_percent:+.2f}%"] for r in rows]
    return ("Figure 6: ENT benchmark descriptions and statistics\n"
            + render_table(headers, body))


def format_figure8(rows: List[Figure8Row]) -> str:
    headers = ["benchmark", "workload", "boot", "ENT (J)", "silent (J)",
               "exception"]
    body = []
    for row in rows:
        for workload_mode in BATTERY_MODES:
            for boot in (FT, MG, ES):
                ent = row.energy(boot, workload_mode, False)
                silent = row.energy(boot, workload_mode, True)
                thrown = row.exception_thrown(boot, workload_mode)
                body.append([row.benchmark, workload_mode, boot,
                             f"{ent:.1f}", f"{silent:.1f}",
                             "EnergyException" if thrown else ""])
    return ("Figure 8: System A Battery-Exception (E1) runs\n"
            + render_table(headers, body))


def format_figure9(bars: List[Figure9Bar]) -> str:
    headers = ["system", "benchmark", "boot/workload", "ENT (norm)",
               "silent (norm)", "% saved"]
    body = [[bar.system, bar.benchmark,
             f"{bar.boot_mode}/{bar.workload_mode}",
             f"{bar.ent_normalized:.3f}", f"{bar.silent_normalized:.3f}",
             f"{bar.percent_saved:.2f}"] for bar in bars]
    return ("Figure 9: E1 normalized energy over boot/workload "
            "combinations that throw EnergyException\n"
            + render_table(headers, body))


def format_figure10(rows: List[Figure10Row]) -> str:
    headers = ["system", "benchmark", "E(es) J", "E(mg) J", "E(ft) J",
               "es % saved", "mg % saved"]
    body = [[row.system, row.benchmark,
             f"{row.energy_j[ES]:.1f}", f"{row.energy_j[MG]:.1f}",
             f"{row.energy_j[FT]:.1f}",
             f"{row.percent_saved(ES):.2f}",
             f"{row.percent_saved(MG):.2f}"] for row in rows]
    return ("Figure 10: Battery-Casing (E2) runs, normalized against "
            "the full_throttle boot\n" + render_table(headers, body))


def _ascii_trace(pair: Figure11Pair, width: int = 64,
                 lo: float = 35.0, hi: float = 75.0) -> List[str]:
    """Two sparkline rows of temperatures resampled over the run."""
    def resample(trace):
        if not trace:
            return [lo] * width
        samples = []
        for i in range(width):
            target = i / (width - 1)
            best = min(trace, key=lambda p: abs(p[0] - target))
            samples.append(best[1])
        return samples

    glyphs = " .:-=+*#%@"

    def row(samples):
        out = []
        for temp in samples:
            frac = max(0.0, min(1.0, (temp - lo) / (hi - lo)))
            out.append(glyphs[int(frac * (len(glyphs) - 1))])
        return "".join(out)

    return [f"  ent  |{row(resample(pair.ent.trace))}|",
            f"  java |{row(resample(pair.java.trace))}|"]


def format_figure11(pairs: List[Figure11Pair]) -> str:
    lines = ["Figure 11: System A Temperature-Casing (E3) runs "
             "(temperature vs normalized time; scale 35-75C)"]
    for pair in pairs:
        ent_stats = trace_stats(pair.ent)
        java_stats = trace_stats(pair.java)
        lines.append(
            f"{pair.benchmark}: ent tail {ent_stats['tail_mean_c']:.1f}C "
            f"(peak {ent_stats['peak_c']:.1f}), java tail "
            f"{java_stats['tail_mean_c']:.1f}C "
            f"(peak {java_stats['peak_c']:.1f}), "
            f"{pair.ent.sleeps} sleeps")
        lines.extend(_ascii_trace(pair))
    return "\n".join(lines)
